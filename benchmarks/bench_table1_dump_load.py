"""Table 1 — Export / Import / DBMS Loader dump-and-load techniques."""

from repro.bench.experiments import table1


def test_table1_dump_load(run_experiment):
    result = run_experiment(table1.run)
    # Export is the fast proprietary path; Import the slow one.
    assert result.series["export"][-1] < result.series["import"][-1]

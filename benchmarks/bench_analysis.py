"""Extension — static Op-Delta analysis: pruning, pinning, conflict-aware apply."""

from repro.bench.experiments import analysis


def test_analysis(run_experiment):
    result = run_experiment(analysis.run)
    # The reordered (conflict-aware) application reproduced the serial
    # state, some statements were pruned, and the schedule actually
    # shortened the apply window.
    assert result.series["statements_pruned"][0] > 0
    serial, parallel = result.series["apply_span_ms"]
    assert parallel < serial

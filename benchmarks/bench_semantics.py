"""Extension — semantic checking at capture + plan-driven view maintenance."""

from repro.bench.experiments import semantics


def test_semantics(run_experiment):
    result = run_experiment(semantics.run)
    # Static rules drove the apply, and executing them beat rebuilding the
    # views from the mirror after every transaction group.
    assert result.series["plan_rules_applied"][0] > 0
    plan_driven, recompute = result.series["apply_span_ms"]
    assert plan_driven < recompute

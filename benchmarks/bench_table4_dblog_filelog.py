"""Table 4 — source-transaction response time, DB log vs file log."""

from repro.bench.experiments import table4


def test_table4_dblog_vs_filelog(run_experiment):
    result = run_experiment(table4.run)
    assert result.series["insert_dblog"][-1] > result.series["insert_filelog"][-1]

"""Extension — delta-rule verifier: small-scope proofs, pay-once cache."""

from repro.bench.experiments import verify_plans


def test_verify_plans(run_experiment):
    result = run_experiment(verify_plans.run)
    # The in-experiment shape checks assert every seed plan VERIFIED,
    # byte-identical repeats, integration parity, and the full drill
    # cycle (RULE001 + replay + integrator refusal); on top of that the
    # cache economics must hold: the first pass pays, the second is free.
    first_ms, cached_ms = result.series["certify_virtual_ms"]
    assert first_ms > 0.0
    assert cached_ms == 0.0
    misses, hits = result.series["certificate_fetches"]
    assert misses == hits == result.parameters["plans"]
    assert result.series["preflight_virtual_ms"] == [0.0, 0.0]

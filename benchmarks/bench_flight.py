"""Extension — flight recorder: spike SLO alerting, cost attribution."""

from repro.bench.experiments import flight


def test_flight(run_experiment):
    result = run_experiment(flight.run)
    # The in-experiment shape checks assert the alert cycle (fires during
    # the seeded spike, clears after the drain), ledger conservation,
    # byte-identical repeats, and zero virtual-time sampling cost; on top
    # of that, the sampled and unsampled runs must agree exactly.
    sampled, unsampled = result.series["final_virtual_ms"]
    assert sampled == unsampled
    assert result.series["slo_findings"][0] >= 4  # fire+clear, both SLOs
    assert result.series["slo_findings"][1] == 0
    assert result.series["traced_ms"][0] > 0

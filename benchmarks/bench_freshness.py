"""§1 — end-to-end freshness: polling vs streaming Op-Delta."""

from repro.bench.experiments import freshness


def test_freshness(run_experiment):
    result = run_experiment(freshness.run)
    stream = result.series["stream_mean_staleness_ms"][0]
    assert all(stream < p for p in result.series["poll_mean_staleness_ms"])

"""Robustness — the headline conclusions under cost-model perturbations."""

from repro.bench.experiments import sensitivity


def test_sensitivity(run_experiment):
    result = run_experiment(sensitivity.run)
    assert min(result.series["update_window_reduction"]) > 0.3

"""Shared helpers for the benchmark suite.

Each bench runs one paper experiment exactly once (``pedantic`` with one
round — the experiments are deterministic virtual-time runs, so repeated
rounds would only re-measure Python overhead), prints the paper-style
comparison table, and fails if any reproduction shape check fails.
"""

from __future__ import annotations

import pytest

from repro.bench.report import ExperimentResult, render


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment once under pytest-benchmark and verify its checks."""

    def runner(function, *args, **kwargs) -> ExperimentResult:
        result = benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(render(result))
        failed = [name for name, ok in result.checks.items() if not ok]
        assert not failed, f"shape checks failed: {failed}"
        return result

    return runner

"""Microbenchmarks of the engine primitives (real wall-clock time).

Unlike the experiment benches (which report deterministic *virtual* time),
these measure the Python implementation itself: row codec, page ops, SQL
parsing, DML statements, scans.  Useful for catching performance
regressions in the substrate that the experiments run on.
"""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.engine.rows import decode_row, encode_row
from repro.sql.parser import parse
from repro.workloads import OltpWorkload, PartsGenerator, parts_schema


@pytest.fixture(scope="module")
def populated():
    database = Database("micro")
    workload = OltpWorkload(database)
    workload.create_table()
    workload.populate(10_000)
    return database, workload


def test_row_codec_roundtrip(benchmark):
    schema = parts_schema()
    row = PartsGenerator().row(42, timestamp=123.0)

    def roundtrip():
        return decode_row(schema, encode_row(schema, row))

    assert benchmark(roundtrip)[0] == 42


def test_sql_parse_update(benchmark):
    sql = (
        "UPDATE parts SET status = 'revised', price = price * 1.05 "
        "WHERE quantity > 10 AND supplier_id IN (1, 2, 3)"
    )
    statement = benchmark(parse, sql)
    assert statement.table == "parts"


def test_insert_statement(benchmark, populated):
    database, workload = populated
    session = database.internal_session()
    counter = iter(range(10_000_000, 99_000_000))

    def insert():
        part_id = next(counter)
        session.execute(
            f"INSERT INTO parts VALUES ({part_id}, {part_id}, 'PN-X', 'd', "
            f"'new', 1, 1.0, NULL, 1)"
        )

    benchmark(insert)


def test_indexed_point_query(benchmark, populated):
    database, _workload = populated
    session = database.internal_session()
    rows = benchmark(session.query, "SELECT * FROM parts WHERE part_id = 5000")
    assert len(rows) == 1


def test_full_scan_aggregate(benchmark, populated):
    database, _workload = populated
    session = database.internal_session()
    count = benchmark(session.scalar, "SELECT COUNT(*) FROM parts")
    assert count >= 10_000


def test_sized_update_transaction(benchmark, populated):
    database, workload = populated

    def update():
        return workload.run_update(100).response_ms

    assert benchmark(update) > 0

"""Microbenchmarks of the engine primitives (real wall-clock time).

Unlike the experiment benches (which report deterministic *virtual* time),
these measure the Python implementation itself: row codec, page ops, SQL
parsing, DML statements, scans.  Useful for catching performance
regressions in the substrate that the experiments run on.
"""

from __future__ import annotations

import pytest

from repro.columnar import ColumnBatch, ColumnarApplier, compile_predicate
from repro.engine import Database
from repro.engine.rows import decode_row, encode_row
from repro.sql.expressions import evaluate, is_true
from repro.sql.parser import parse
from repro.workloads import OltpWorkload, PartsGenerator, parts_schema


@pytest.fixture(scope="module")
def populated():
    database = Database("micro")
    workload = OltpWorkload(database)
    workload.create_table()
    workload.populate(10_000)
    return database, workload


def test_row_codec_roundtrip(benchmark):
    schema = parts_schema()
    row = PartsGenerator().row(42, timestamp=123.0)

    def roundtrip():
        return decode_row(schema, encode_row(schema, row))

    assert benchmark(roundtrip)[0] == 42


def test_sql_parse_update(benchmark):
    sql = (
        "UPDATE parts SET status = 'revised', price = price * 1.05 "
        "WHERE quantity > 10 AND supplier_id IN (1, 2, 3)"
    )
    statement = benchmark(parse, sql)
    assert statement.table == "parts"


def test_insert_statement(benchmark, populated):
    database, workload = populated
    session = database.internal_session()
    counter = iter(range(10_000_000, 99_000_000))

    def insert():
        part_id = next(counter)
        session.execute(
            f"INSERT INTO parts VALUES ({part_id}, {part_id}, 'PN-X', 'd', "
            f"'new', 1, 1.0, NULL, 1)"
        )

    benchmark(insert)


def test_indexed_point_query(benchmark, populated):
    database, _workload = populated
    session = database.internal_session()
    rows = benchmark(session.query, "SELECT * FROM parts WHERE part_id = 5000")
    assert len(rows) == 1


def test_full_scan_aggregate(benchmark, populated):
    database, _workload = populated
    session = database.internal_session()
    count = benchmark(session.scalar, "SELECT COUNT(*) FROM parts")
    assert count >= 10_000


def test_sized_update_transaction(benchmark, populated):
    database, workload = populated

    def update():
        return workload.run_update(100).response_ms

    assert benchmark(update) > 0


# --------------------------------------------------------- row vs columnar
# The columnar experiment gates the *end-to-end* speedup in virtual time;
# these pin down where the real-wall-clock win comes from, stage by stage:
# predicate evaluation (dict env + interpreter per row vs compiled kernel
# per position) and statement apply (executor row loop vs batch DML).

_PREDICATE_SQL = "quantity > 500 AND status != 'retired'"


@pytest.fixture(scope="module")
def parts_image(populated):
    database, _workload = populated
    return ColumnBatch.from_table(database.table("parts"))


def test_predicate_eval_row_at_a_time(benchmark, populated):
    database, _workload = populated
    where = parse(f"DELETE FROM parts WHERE {_PREDICATE_SQL}").where
    names = parts_schema().column_names
    rows = [values for _rid, values in database.table("parts").scan()]

    def row_filter():
        return sum(
            1
            for values in rows
            if is_true(evaluate(where, dict(zip(names, values))))
        )

    assert benchmark(row_filter) > 0


def test_predicate_eval_columnar_kernel(benchmark, populated, parts_image):
    where = parse(f"DELETE FROM parts WHERE {_PREDICATE_SQL}").where
    kernel = compile_predicate(
        where, parts_image.layout, frozenset({"parts"})
    )
    cols = parts_image.columns

    def kernel_filter():
        return sum(
            1 for pos in range(parts_image.num_rows) if kernel(cols, pos)
        )

    assert benchmark(kernel_filter) > 0


_UPDATE_SQL = "UPDATE parts SET status = 'benched' WHERE quantity > 500"


def test_update_apply_row_path(benchmark, populated):
    database, _workload = populated
    session = database.internal_session()

    def row_apply():
        return session.execute(_UPDATE_SQL).rows_affected

    assert benchmark(row_apply) > 0


def test_update_apply_columnar(benchmark, populated):
    database, _workload = populated
    session = database.internal_session()
    applier = ColumnarApplier(session)
    statement = parse(_UPDATE_SQL)

    def columnar_apply():
        applier.begin_component()  # fresh image: same work as the row scan
        session.begin()
        txn = session.current_transaction
        affected = applier.apply_mirror(statement, txn, _UPDATE_SQL)
        session.commit()
        return affected

    assert benchmark(columnar_apply) > 0

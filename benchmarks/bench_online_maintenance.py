"""§4.1 — warehouse availability during maintenance (DES experiment)."""

from repro.bench.experiments import online_maintenance


def test_online_maintenance(run_experiment):
    result = run_experiment(online_maintenance.run)
    batch_sla, online_sla = result.series["queries_within_sla"]
    assert online_sla > batch_sla

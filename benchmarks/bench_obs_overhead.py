"""Observability overhead: instrumentation must not distort the science.

Two claims, each checked against a representative hot path (an OLTP-style
insert/select workload on a small buffer pool):

* **virtual time is identical** whether the engine runs with a real
  registry + tracer or the no-op pair — the instruments record virtual
  quantities but never advance the clock, so every published number is
  unchanged by observation;
* **host wall time** with a real registry stays within a modest factor of
  the no-op run (the instruments are attribute bumps), so leaving metrics
  on for every experiment is affordable.

The same claims extend to the *pipeline* observability path: the full
flight-recorder spike scenario (pipeline event log, per-window
``TimeSeriesStore`` sampling, SLO evaluation, cost attribution) must
leave the run's virtual time bit-identical to the recorder-off run.
"""

from __future__ import annotations

import time

from repro.bench.flight import WINDOW_TXNS, run_flight
from repro.engine import Column, Database, TableSchema
from repro.engine.types import INTEGER, char
from repro.obs import NULL_REGISTRY, NULL_TRACER, MetricsRegistry, Tracer

ROWS = 300
REPEATS = 5
#: Host wall-time budget for the instrumented run (ISSUE: < 10%; the
#: bound is looser here to keep the check robust on noisy CI hosts).
MAX_WALL_RATIO = 1.10


def _schema() -> TableSchema:
    return TableSchema(
        "hot",
        [Column("k", INTEGER, nullable=False), Column("pad", char(120))],
        primary_key="k",
    )


def _run_workload(metrics, tracer) -> float:
    """One deterministic workload; returns the final virtual time."""
    database = Database(
        "obs-bench", buffer_pages=8, metrics=metrics, tracer=tracer
    )
    database.create_table(_schema())
    session = database.internal_session()
    for i in range(ROWS):
        session.execute(f"INSERT INTO hot VALUES ({i}, 'p{i}')")
    for _ in range(3):
        session.execute("SELECT COUNT(*) FROM hot")
    database.checkpoint()
    return database.clock.now


def _timed(metrics_factory, tracer_factory) -> tuple[float, float]:
    """(virtual ms, best-of-N host seconds) for one configuration."""
    best = float("inf")
    virtual = None
    for _ in range(REPEATS):
        metrics, tracer = metrics_factory(), tracer_factory()
        started = time.perf_counter()
        now = _run_workload(metrics, tracer)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        if virtual is None:
            virtual = now
        else:
            assert now == virtual, "workload itself is nondeterministic"
    assert virtual is not None
    return virtual, best


def test_virtual_time_unchanged_by_instrumentation():
    """The determinism claim: 0% virtual-time regression, exactly."""
    virtual_null, _ = _timed(lambda: NULL_REGISTRY, lambda: NULL_TRACER)
    virtual_real, _ = _timed(MetricsRegistry, Tracer)
    assert virtual_real == virtual_null


def test_wall_time_overhead_is_bounded(capsys):
    virtual_null, wall_null = _timed(lambda: NULL_REGISTRY, lambda: NULL_TRACER)
    virtual_real, wall_real = _timed(MetricsRegistry, Tracer)
    ratio = wall_real / wall_null
    with capsys.disabled():
        print(
            f"\nobs overhead: virtual {virtual_real:.3f}ms (null "
            f"{virtual_null:.3f}ms), wall {wall_real * 1e3:.1f}ms vs "
            f"{wall_null * 1e3:.1f}ms (ratio {ratio:.3f})"
        )
    assert virtual_real == virtual_null
    assert ratio < MAX_WALL_RATIO, (
        f"instrumented hot path is {ratio:.2f}x the no-op run "
        f"(budget {MAX_WALL_RATIO}x)"
    )


def test_pipeline_sampling_leaves_virtual_time_identical(capsys):
    """The flight path: event log + TimeSeriesStore sampling is free.

    ``run_flight`` drives the full capture -> queue -> apply spike
    scenario twice — once with the flight recorder sampling every shipped
    window (plus SLO evaluation and cost attribution), once with the
    recorder absent — and both runs must land on the *same* virtual
    instant, bit for bit.
    """
    sampled = run_flight(sample=True)
    unsampled = run_flight(sample=False)
    with capsys.disabled():
        print(
            f"\nflight sampling: virtual {sampled.final_virtual_ms:.3f}ms "
            f"with {sampled.store['windows_sampled']} windows sampled "
            f"across {len(sampled.store['series'])} series (recorder off: "
            f"{unsampled.final_virtual_ms:.3f}ms)"
        )
    assert sampled.final_virtual_ms == unsampled.final_virtual_ms
    # The sampled run actually recorded something (the claim is not
    # vacuous), and the recorder-off run recorded nothing.
    # Every shipped window was sampled (drain/quiet rounds are extra
    # out-of-band samples and do not count as windows).
    assert sampled.store["windows_sampled"] == len(WINDOW_TXNS)
    assert sampled.ledger["conservative"]
    assert unsampled.store == {}

"""[19] connection — aggregate-view refresh: incremental vs recompute."""

from repro.bench.experiments import aggregate_views


def test_aggregate_views(run_experiment):
    result = run_experiment(aggregate_views.run)
    assert result.series["incremental_ms"][0] < result.series["recompute_ms"][0]

"""Table 3 — end-to-end extract+load pipelines."""

from repro.bench.experiments import table3


def test_table3_total_extract_and_load(run_experiment):
    result = run_experiment(table3.run)
    a = result.series["ts_file_plus_loader"]
    b = result.series["ts_table_export_import"]
    assert b[-1] / a[-1] >= 2.0

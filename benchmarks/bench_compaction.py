"""Extension — Op-Delta compaction: coalesced shipping, batched group-apply."""

from repro.bench.experiments import compaction


def test_compaction(run_experiment):
    result = run_experiment(compaction.run)
    # The compacted + batched pipeline reproduced the serial warehouse
    # state (asserted by the shape checks) while shipping at least 30%
    # fewer bytes and shortening the virtual-time apply span.
    ops_in, ops_out = result.series["ops_shipped"]
    assert ops_out < ops_in
    bytes_in, bytes_out = result.series["bytes_shipped"]
    assert bytes_out <= 0.7 * bytes_in
    serial, batched = result.series["apply_span_ms"]
    assert batched * 1.5 <= serial


def test_compaction_tiny_scale(run_experiment):
    # The CI bench-smoke scale: a few hundred rows is enough for every
    # rewrite rule to fire and for state divergence to be detectable.
    result = run_experiment(
        compaction.run, table_rows=400, fold_txns=3, churn_txns=2,
        scratch_txns=2, inserts_per_txn=4,
    )
    assert result.series["ops_shipped"][1] < result.series["ops_shipped"][0]

"""§2.4 — capture-level comparison across the reference architecture."""

from repro.bench.experiments import capture_levels


def test_capture_levels(run_experiment):
    result = run_experiment(capture_levels.run)
    trig, opd, mid = result.series["transport_bytes"]
    assert trig > opd > mid

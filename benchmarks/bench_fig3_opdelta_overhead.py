"""Figure 3 — Op-Delta capture overhead vs transaction size."""

from repro.bench.experiments import fig3


def test_fig3_opdelta_overhead(run_experiment):
    result = run_experiment(fig3.run)
    # delete/update capture is effectively constant cost → tiny overhead.
    assert result.series["delete_overhead"][-2] < 0.01

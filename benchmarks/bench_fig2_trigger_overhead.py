"""Figure 2 — insert/delete/update trigger overhead vs transaction size."""

from repro.bench.experiments import fig2


def test_fig2_trigger_overhead(run_experiment):
    result = run_experiment(fig2.run)
    assert result.series["update_overhead"][-1] > result.series["insert_overhead"][-1]

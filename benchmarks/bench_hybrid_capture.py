"""Ablation — hybrid Op-Delta capture (operation + before image)."""

from repro.bench.experiments import hybrid_capture


def test_hybrid_capture(run_experiment):
    result = run_experiment(hybrid_capture.run)
    assert result.series["hybrid_overhead"][0] < result.series["trigger_overhead"][0]

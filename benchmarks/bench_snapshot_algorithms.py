"""§3.1.2 ablation — LGM snapshot-differential algorithms."""

from repro.bench.experiments import snapshot_algorithms


def test_snapshot_algorithms(run_experiment):
    result = run_experiment(snapshot_algorithms.run)
    costs = result.series["diff_cost_ms"]
    assert costs[1] < costs[0]  # sort-merge beats naive

"""Extension — schedule certification: proofs, widening, race drill."""

from repro.bench.experiments import certify


def test_certify(run_experiment):
    result = run_experiment(certify.run)
    # The widened commutativity prover must buy parallelism (fewer
    # conflict edges, more components) without losing soundness, and the
    # sanitizer must be free in virtual time (asserted by shape checks).
    edges_conservative, edges_widened = result.series["conflict_edges"]
    assert edges_widened < edges_conservative
    components_conservative, components_widened = result.series["components"]
    assert components_widened > components_conservative
    off_ms, on_ms = result.series["sanitizer_elapsed_ms"]
    assert off_ms == on_ms

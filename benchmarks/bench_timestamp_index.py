"""Ablation — timestamp-column index and the optimizer's selectivity cutoff."""

from repro.bench.experiments import timestamp_index


def test_timestamp_index(run_experiment):
    result = run_experiment(timestamp_index.run)
    assert result.series["with_index_ms"][0] < result.series["no_index_ms"][0]

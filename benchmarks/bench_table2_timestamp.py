"""Table 2 — timestamp-based delta extraction (file/table/table+Export)."""

from repro.bench.experiments import table2


def test_table2_timestamp_extraction(run_experiment):
    result = run_experiment(table2.run)
    assert result.series["file_output"][0] < result.series["table_output"][0]

"""§4.1 — warehouse maintenance window, Op-Delta vs value delta."""

from repro.bench.experiments import maintenance_window


def test_maintenance_window(run_experiment):
    result = run_experiment(maintenance_window.run)
    assert result.series["update_window_reduction"][-1] > 0.5

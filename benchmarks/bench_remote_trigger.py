"""§3.1.3 — triggers capturing into an external database."""

from repro.bench.experiments import remote_trigger


def test_remote_trigger_capture(run_experiment):
    result = run_experiment(remote_trigger.run)
    assert min(result.series["capture_factor_lan"]) >= 10.0

"""Database dump and load utilities (paper §3, Table 1).

Four utilities, with the cost structure the paper measures:

* **Export** — proprietary page-image dump of a table.  Fast: sequential
  reads, sequential writes of the dump, tiny per-row CPU.  The dump is
  tagged with the producing DBMS product and version; only the matching
  Import can read it ("a very restrictive constraint").
* **Import** — the only reader of Export dumps.  Slow and super-linear: it
  fills internal staging pages and, on every staging overflow, reorganises
  what it has already loaded — "the Import utility fills its own internal
  pages and when the pages overflow they write the data into the database.
  The extra I/O is evident."
* **AsciiDumper** — renders a table (or query result) as a delimited flat
  file, the portable alternative to Export.
* **AsciiLoader** — "loads ASCII data directly into database blocks":
  direct block formatting, no logging, far cheaper per row than Import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..errors import UtilityError
from .database import Database
from .page import Page, slots_per_page
from .rows import decode_row, encode_row, format_ascii, parse_ascii
from .schema import TableSchema, diff_schemas
from .table import InsertMode, Table

#: Export dump format version (proprietary, product-specific).
EXPORT_FORMAT_VERSION = "2.1"


@dataclass
class ExportDump:
    """A proprietary export of one table: raw record images + provenance."""

    product: str
    product_version: str
    format_version: str
    schema: TableSchema
    records: list[bytes] = field(default_factory=list)

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def size_bytes(self) -> int:
        return len(self.records) * self.schema.record_size


@dataclass
class AsciiFile:
    """A delimited flat file: header-free, one row per line."""

    schema: TableSchema
    lines: list[str] = field(default_factory=list)

    @property
    def num_records(self) -> int:
        return len(self.lines)

    @property
    def size_bytes(self) -> int:
        return sum(len(line) + 1 for line in self.lines)


def export_table(database: Database, table_name: str) -> ExportDump:
    """Dump a table with the Export utility (sequential page traffic)."""
    table = database.table(table_name)
    clock, costs = database.clock, database.costs
    clock.advance(costs.file_open)
    dump = ExportDump(
        product=database.product,
        product_version=database.product_version,
        format_version=EXPORT_FORMAT_VERSION,
        schema=table.schema,
    )
    per_page = slots_per_page(table.schema.record_size)
    rows_in_output_page = 0
    for page_no in table._heap.page_numbers:
        database.buffer_pool.flush_page(page_no)
        data = database.disk.read_page(page_no, sequential=True)
        page = Page.from_bytes(data)
        for _slot, record in page.occupied_slots():
            clock.advance(costs.export_row_cpu)
            dump.records.append(record)
            rows_in_output_page += 1
            if rows_in_output_page >= per_page:
                clock.advance(costs.seq_page_write)
                rows_in_output_page = 0
    if rows_in_output_page:
        clock.advance(costs.seq_page_write)
    return dump


def import_dump(
    database: Database, dump: ExportDump, table_name: str | None = None
) -> int:
    """Load an Export dump with the Import utility.

    Validates product identity (Export/Import only interoperate within one
    DBMS product and version) and schema compatibility, then re-inserts
    through internal staging pages with the overflow-reorganisation cost
    that makes Import the slow path of Table 1.
    """
    if dump.product != database.product:
        raise UtilityError(
            f"dump was produced by {dump.product!r}; this Import belongs to "
            f"{database.product!r} (Export dumps are proprietary)"
        )
    if dump.product_version != database.product_version:
        raise UtilityError(
            f"dump version {dump.product_version!r} does not match Import "
            f"version {database.product_version!r}"
        )
    if dump.format_version != EXPORT_FORMAT_VERSION:
        raise UtilityError(
            f"dump format {dump.format_version!r} is not readable by this "
            f"Import ({EXPORT_FORMAT_VERSION!r})"
        )
    target_name = table_name if table_name is not None else dump.schema.name
    if not database.has_table(target_name):
        database.create_table(dump.schema.renamed(target_name))
    table = database.table(target_name)
    _require_matching_schema(dump.schema, table.schema, "Import")

    clock, costs = database.clock, database.costs
    clock.advance(costs.file_open)
    txn = database.begin()
    loaded = 0
    record_size = dump.schema.record_size
    for record in dump.records:
        clock.advance(costs.file_read(record_size) + costs.import_row_cpu)
        values = decode_row(dump.schema, record)
        table.insert(txn, values, mode=InsertMode.BULK_INTERNAL, fire_triggers=False)
        loaded += 1
        if loaded % costs.import_staging_rows == 0:
            # Staging overflow: Import reorganises everything loaded so far.
            clock.advance(costs.import_reorg_per_loaded_row * loaded)
    database.commit(txn)
    return loaded


def ascii_dump_rows(
    database: Database, schema: TableSchema, rows: Iterable[Sequence[Any]]
) -> AsciiFile:
    """Write rows to a flat file, charging format CPU and file I/O."""
    clock, costs = database.clock, database.costs
    clock.advance(costs.file_open)
    output = AsciiFile(schema=schema)
    for row in rows:
        line = format_ascii(schema, row)
        clock.advance(costs.ascii_format_row + costs.file_write(len(line) + 1))
        output.lines.append(line)
    clock.advance(costs.file_sync)
    return output


def ascii_dump_table(database: Database, table_name: str) -> AsciiFile:
    """Dump an entire table to a flat file (scan + format + write)."""
    table = database.table(table_name)
    return ascii_dump_rows(
        database, table.schema, (values for _rid, values in table.scan())
    )


def ascii_load(
    database: Database, table_name: str, ascii_file: AsciiFile
) -> int:
    """Load a flat file with the DBMS Loader: direct block writes, no WAL.

    "The DBMS Loader technique loads ASCII data directly into database
    blocks" — rows are formatted straight into pages, bypassing the
    transaction log; indexes (if any) are maintained as the blocks fill.
    """
    table = database.table(table_name)
    _require_matching_schema(ascii_file.schema, table.schema, "Loader")
    clock, costs = database.clock, database.costs
    clock.advance(costs.file_open)
    per_page = slots_per_page(table.schema.record_size)
    rows_in_block = 0
    loaded = 0
    for line in ascii_file.lines:
        clock.advance(costs.file_read(len(line) + 1))
        values = parse_ascii(table.schema, line)
        clock.advance(costs.ascii_parse_row + costs.loader_row_cpu)
        record = encode_row(table.schema, values)
        row_id = table._heap.insert(record)
        for index in table._indexes.values():
            key = values[table.schema.column_index(index.column)]
            index.insert(key, row_id)
        loaded += 1
        rows_in_block += 1
        if rows_in_block >= per_page:
            clock.advance(costs.seq_page_write)
            rows_in_block = 0
    if rows_in_block:
        clock.advance(costs.seq_page_write)
    return loaded


def _require_matching_schema(
    source: TableSchema, target: TableSchema, utility: str
) -> None:
    diff = diff_schemas(source, target)
    if not diff.identical:
        raise UtilityError(
            f"{utility} schema mismatch: missing={diff.missing_columns} "
            f"extra={diff.extra_columns} type_mismatches={diff.type_mismatches}"
        )

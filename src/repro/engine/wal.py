"""Write-ahead log with checkpoints and archive segments.

The engine logs physiologically (paper §3.1.4, citing Gray & Reuter): each
record carries the physical address (:class:`RowId`) plus the encoded before
and/or after images.  Committed work is made "durable" by forcing the log
(a group-commit fsync charge).

When **archive mode** is on, segments are retained at checkpoint time instead
of being recycled — this is exactly the hook the log-based extraction method
(§3.1.4) depends on.  Segments are tagged with the producing product name,
version and log-format version so that :mod:`repro.extraction.logscan` can
reproduce the paper's compatibility hazards: proprietary formats, version
skew across releases, and cross-product incompatibility.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..clock import VirtualClock
from ..errors import LogError
from ..obs.metrics import MetricsLike, MetricsRegistry
from .costs import CostModel
from .rows import RowId

#: Simulated proprietary log-format version; bump-on-release semantics.
LOG_FORMAT_VERSION = "7.3"


class LogRecordKind(enum.Enum):
    BEGIN = "BEGIN"
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"
    CHECKPOINT = "CHECKPOINT"


@dataclass(frozen=True)
class LogRecord:
    """One physiological log record."""

    lsn: int
    kind: LogRecordKind
    txn_id: int
    table: str | None = None
    row_id: RowId | None = None
    before: bytes | None = None
    after: bytes | None = None

    @property
    def payload_bytes(self) -> int:
        """Approximate on-disk size, used for cost accounting."""
        size = 32  # header: lsn, kind, txn, table ref, row id
        if self.before is not None:
            size += len(self.before)
        if self.after is not None:
            size += len(self.after)
        return size

    def is_data_change(self) -> bool:
        return self.kind in (
            LogRecordKind.INSERT,
            LogRecordKind.UPDATE,
            LogRecordKind.DELETE,
        )


@dataclass
class LogSegment:
    """A closed run of log records plus provenance metadata.

    ``product`` / ``product_version`` / ``format_version`` model the
    proprietary-format hazards of §3.1.4: a reader must match all three.
    """

    segment_id: int
    product: str
    product_version: str
    format_version: str
    records: list[LogRecord] = field(default_factory=list)

    @property
    def first_lsn(self) -> int | None:
        return self.records[0].lsn if self.records else None

    @property
    def last_lsn(self) -> int | None:
        return self.records[-1].lsn if self.records else None

    def __len__(self) -> int:
        return len(self.records)


class LogManager:
    """Appends, forces, checkpoints and archives the WAL."""

    def __init__(
        self,
        clock: VirtualClock,
        costs: CostModel,
        product: str = "ReproDB",
        product_version: str = "1.0",
        archive_mode: bool = False,
        metrics: MetricsLike | None = None,
    ) -> None:
        self._clock = clock
        self._costs = costs
        self.product = product
        self.product_version = product_version
        self.archive_mode = archive_mode
        self._next_lsn = 1
        self._next_segment_id = 1
        self._active: list[LogRecord] = []
        self._archived: list[LogSegment] = []
        self._flushed_lsn = 0
        if metrics is None:
            metrics = MetricsRegistry()
        self._m_records = metrics.counter("engine.wal.record")
        self._m_bytes = metrics.counter("engine.wal.bytes")
        self._m_forces = metrics.counter("engine.wal.force")

    # ------------------------------------------------------------------ stats
    @property
    def records_appended(self) -> int:
        return int(self._m_records.value)

    @property
    def bytes_appended(self) -> int:
        return int(self._m_bytes.value)

    @property
    def forces(self) -> int:
        return int(self._m_forces.value)

    # ------------------------------------------------------------------ write
    def append(
        self,
        kind: LogRecordKind,
        txn_id: int,
        table: str | None = None,
        row_id: RowId | None = None,
        before: bytes | None = None,
        after: bytes | None = None,
    ) -> LogRecord:
        record = LogRecord(self._next_lsn, kind, txn_id, table, row_id, before, after)
        self._next_lsn += 1
        self._active.append(record)
        self._m_records.inc()
        self._m_bytes.inc(record.payload_bytes)
        self._clock.advance(self._costs.log_append(record.payload_bytes))
        return record

    def append_batch(
        self,
        entries: Iterable[
            tuple[
                LogRecordKind,
                int,
                str | None,
                RowId | None,
                bytes | None,
                bytes | None,
            ]
        ],
    ) -> list[LogRecord]:
        """Group-append many records with one fixed-cost charge.

        Emits exactly the records :meth:`append` would (same LSN order,
        same payloads — recovery and log-scan extraction see no
        difference); only the *fixed* per-record append cost is paid
        once for the batch, while bytes are charged in full.
        """
        records: list[LogRecord] = []
        total_bytes = 0
        for kind, txn_id, table, row_id, before, after in entries:
            record = LogRecord(
                self._next_lsn, kind, txn_id, table, row_id, before, after
            )
            self._next_lsn += 1
            self._active.append(record)
            records.append(record)
            total_bytes += record.payload_bytes
        if records:
            self._m_records.inc(len(records))
            self._m_bytes.inc(total_bytes)
            self._clock.advance(
                self._costs.log_append_batch(total_bytes, len(records))
            )
        return records

    def force(self) -> int:
        """Flush the log up to the last appended record (commit durability)."""
        if self._active and self._active[-1].lsn > self._flushed_lsn:
            self._m_forces.inc()
            self._clock.advance(self._costs.log_force)
            self._flushed_lsn = self._active[-1].lsn
        return self._flushed_lsn

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    @property
    def current_lsn(self) -> int:
        """LSN that the *next* record will receive."""
        return self._next_lsn

    # ------------------------------------------------------------- checkpoint
    def checkpoint(self) -> LogSegment | None:
        """Close the active segment.

        With archiving on, the closed segment is retained and returned;
        otherwise it is recycled (discarded) and ``None`` is returned —
        exactly the behaviour §3.1.4 describes for redo logs.
        """
        self.append(LogRecordKind.CHECKPOINT, txn_id=0)
        self.force()
        segment = LogSegment(
            segment_id=self._next_segment_id,
            product=self.product,
            product_version=self.product_version,
            format_version=LOG_FORMAT_VERSION,
            records=self._active,
        )
        self._next_segment_id += 1
        self._active = []
        if self.archive_mode:
            self._archived.append(segment)
            return segment
        return None

    # ------------------------------------------------------------------- read
    @property
    def archived_segments(self) -> tuple[LogSegment, ...]:
        return tuple(self._archived)

    def archived_records(self) -> Iterator[LogRecord]:
        """All records across archived segments, in LSN order."""
        for segment in self._archived:
            yield from segment.records

    def active_records(self) -> tuple[LogRecord, ...]:
        """Records not yet closed into a segment (for tests/inspection)."""
        return tuple(self._active)

    def drain_archive(self, up_to_segment: int | None = None) -> list[LogSegment]:
        """Remove and return archived segments (they have been 'shipped')."""
        if up_to_segment is None:
            shipped, self._archived = self._archived, []
            return shipped
        shipped = [s for s in self._archived if s.segment_id <= up_to_segment]
        self._archived = [s for s in self._archived if s.segment_id > up_to_segment]
        return shipped


def records_for_tables(
    records: Iterable[LogRecord], tables: set[str]
) -> Iterator[LogRecord]:
    """Filter a record stream down to data changes on the given tables."""
    for record in records:
        if record.is_data_change() and record.table in tables:
            yield record


def committed_txn_ids(records: Iterable[LogRecord]) -> set[int]:
    """The transaction ids with a COMMIT record in the stream."""
    return {r.txn_id for r in records if r.kind is LogRecordKind.COMMIT}


def require_compatible(segment: LogSegment, product: str, product_version: str) -> None:
    """Raise :class:`LogError` unless the segment matches the reader exactly.

    This models §3.1.4: log formats are proprietary, change across releases,
    and are never compatible across DBMS products.
    """
    if segment.product != product:
        raise LogError(
            f"log segment {segment.segment_id} was written by {segment.product!r}; "
            f"reader is {product!r} (cross-product log reading is not supported)"
        )
    if segment.product_version != product_version:
        raise LogError(
            f"log segment {segment.segment_id} has product version "
            f"{segment.product_version!r}; reader expects {product_version!r} "
            "(log formats change across releases)"
        )
    if segment.format_version != LOG_FORMAT_VERSION:
        raise LogError(
            f"log segment {segment.segment_id} has format version "
            f"{segment.format_version!r}; reader expects {LOG_FORMAT_VERSION!r}"
        )

"""Row-level triggers.

Triggers are the third extraction method the paper analyses (§3.1.3): they
fire inside the user's transaction, see the old and/or new row images, and
their failures abort the user transaction.  The engine implements exactly
that contract:

* ``BEFORE``/``AFTER`` timing on ``INSERT``/``UPDATE``/``DELETE``;
* the action runs in the same transaction (its own data changes register
  undo actions on the triggering transaction);
* an exception in the action is wrapped in :class:`TriggerError` and
  propagates, aborting the user statement.

The standard delta-capture trigger used by
:class:`repro.extraction.trigger.TriggerExtractor` lives there; this module
is the generic machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..errors import CatalogError, TriggerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .table import Table
    from .transactions import Transaction


class TriggerEvent(enum.Enum):
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"


class TriggerTiming(enum.Enum):
    BEFORE = "BEFORE"
    AFTER = "AFTER"


@dataclass(frozen=True)
class TriggerContext:
    """What a firing trigger sees: the txn and the old/new row images.

    ``old_values`` is ``None`` for inserts; ``new_values`` is ``None`` for
    deletes; updates carry both — this is how the paper's capture trigger
    records before and after images.
    """

    transaction: "Transaction"
    table: "Table"
    event: TriggerEvent
    old_values: tuple[Any, ...] | None
    new_values: tuple[Any, ...] | None


TriggerAction = Callable[[TriggerContext], None]


@dataclass(frozen=True)
class Trigger:
    """A named row-level trigger definition."""

    name: str
    event: TriggerEvent
    timing: TriggerTiming
    action: TriggerAction


class TriggerSet:
    """The triggers attached to one table, fired by the DML paths."""

    def __init__(self, clock, costs) -> None:
        self._clock = clock
        self._costs = costs
        self._triggers: dict[str, Trigger] = {}
        self.firings = 0

    def add(self, trigger: Trigger) -> None:
        if trigger.name in self._triggers:
            raise CatalogError(f"trigger {trigger.name!r} already exists")
        self._triggers[trigger.name] = trigger

    def drop(self, name: str) -> None:
        if name not in self._triggers:
            raise CatalogError(f"trigger {name!r} does not exist")
        del self._triggers[name]

    def names(self) -> tuple[str, ...]:
        return tuple(self._triggers)

    def __len__(self) -> int:
        return len(self._triggers)

    def fire(self, timing: TriggerTiming, context: TriggerContext) -> None:
        """Fire every matching trigger; failures abort the user statement."""
        for trigger in self._triggers.values():
            if trigger.event is not context.event or trigger.timing is not timing:
                continue
            self.firings += 1
            self._clock.advance(self._costs.trigger_invoke)
            try:
                trigger.action(context)
            except TriggerError:
                raise
            except Exception as exc:
                raise TriggerError(
                    f"trigger {trigger.name!r} failed on "
                    f"{context.event.value} of {context.table.name!r}: {exc}"
                ) from exc

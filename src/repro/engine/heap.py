"""Heap files: unordered record storage over slotted pages.

A :class:`HeapFile` owns an ordered list of page numbers and a free-space
list.  All access goes through the buffer pool so the cost of every
operation emerges from hit/miss/write-back accounting.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import StorageError
from .buffer import BufferPool
from .rows import RowId


class HeapFile:
    """Fixed-width record heap with free-slot reuse."""

    def __init__(self, buffer_pool: BufferPool, record_size: int) -> None:
        self._pool = buffer_pool
        self.record_size = record_size
        self._page_nos: list[int] = []
        self._pages_with_space: list[int] = []
        self._num_records = 0

    # ----------------------------------------------------------------- status
    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def num_pages(self) -> int:
        return len(self._page_nos)

    @property
    def page_numbers(self) -> tuple[int, ...]:
        return tuple(self._page_nos)

    # -------------------------------------------------------------------- DML
    def insert(self, record: bytes) -> RowId:
        """Append a record, reusing freed slots before growing the file."""
        while self._pages_with_space:
            page_no = self._pages_with_space[-1]
            page = self._pool.fetch(page_no)
            if page.has_space:
                slot_no = page.insert(record)
                self._pool.mark_dirty(page_no)
                if not page.has_space:
                    self._pages_with_space.pop()
                self._num_records += 1
                return RowId(page_no, slot_no)
            self._pages_with_space.pop()
        page_no, page = self._pool.create(self.record_size)
        self._page_nos.append(page_no)
        slot_no = page.insert(record)
        if page.has_space:
            self._pages_with_space.append(page_no)
        self._num_records += 1
        return RowId(page_no, slot_no)

    def read(self, row_id: RowId) -> bytes:
        page = self._pool.fetch(row_id.page_no)
        return page.read(row_id.slot_no)

    def overwrite(self, row_id: RowId, record: bytes) -> bytes:
        """Replace a record in place; returns the before image."""
        page = self._pool.fetch(row_id.page_no)
        before = page.read(row_id.slot_no)
        page.overwrite(row_id.slot_no, record)
        self._pool.mark_dirty(row_id.page_no)
        return before

    def delete(self, row_id: RowId) -> bytes:
        """Free a record's slot; returns the before image."""
        page = self._pool.fetch(row_id.page_no)
        had_space = page.has_space
        before = page.delete(row_id.slot_no)
        self._pool.mark_dirty(row_id.page_no)
        if not had_space:
            self._pages_with_space.append(row_id.page_no)
        self._num_records -= 1
        return before

    def place(self, row_id: RowId, record: bytes) -> None:
        """Place a record at an exact address, growing the file as needed.

        Recovery replays log records physiologically: each record carries the
        page/slot it originally occupied, and redo must land it there.  The
        target database must replay allocations in the original order (i.e.
        start empty and apply the full committed history); otherwise the
        freshly allocated page number will not match and redo fails.
        """
        page_no = row_id.page_no
        last_page_no = self._page_nos[-1] if self._page_nos else -1
        if page_no > last_page_no:
            allocated_no, _page = self._pool.create(self.record_size)
            if allocated_no != page_no:
                raise StorageError(
                    f"allocated page {allocated_no} does not match logged page "
                    f"{page_no}; redo requires replaying the full history into "
                    "an empty database"
                )
            self._page_nos.append(allocated_no)
            self._pages_with_space.append(allocated_no)
        page = self._pool.fetch(page_no)
        page.insert_at(row_id.slot_no, record)
        self._pool.mark_dirty(page_no)
        if not page.has_space and page_no in self._pages_with_space:
            self._pages_with_space.remove(page_no)
        self._num_records += 1

    def scan(self) -> Iterator[tuple[RowId, bytes]]:
        """Yield every live record in page/slot order.

        The page list is snapshotted up front so a concurrent append (e.g. a
        statement inserting into the table it reads, as INSERT..SELECT does)
        does not revisit its own output.
        """
        for page_no in list(self._page_nos):
            page = self._pool.fetch(page_no)
            for slot_no, record in list(page.occupied_slots()):
                yield RowId(page_no, slot_no), record

    def truncate(self) -> int:
        """Drop every page; returns the number of records removed."""
        removed = self._num_records
        for page_no in self._page_nos:
            self._pool.drop(page_no)
        self._page_nos.clear()
        self._pages_with_space.clear()
        self._num_records = 0
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HeapFile(records={self._num_records}, pages={len(self._page_nos)}, "
            f"record_size={self.record_size})"
        )

"""Table schemas: named, typed, fixed-width record layouts.

A :class:`TableSchema` is an ordered list of :class:`Column` definitions plus
an optional primary key.  It owns the binary record layout used by
:mod:`repro.engine.rows`: a null bitmap followed by the fixed-width encoded
columns, giving every table a constant record size — the paper's experiments
are all phrased in terms of "100-byte records".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError
from .types import DataType, TimestampType


@dataclass(frozen=True)
class Column:
    """One column: a name, a datatype and nullability."""

    name: str
    datatype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")

    def __repr__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.datatype!r}{null}"


class TableSchema:
    """An ordered set of columns with an optional primary key.

    Parameters
    ----------
    name:
        Table name (catalog key).
    columns:
        Ordered column definitions.
    primary_key:
        Name of the primary-key column, if any.  Primary-key columns are
        implicitly NOT NULL and get a unique index when the table is created.
    timestamp_column:
        Name of the column that carries last-modified semantics, used by the
        timestamp extraction method.  Defaults to the first TIMESTAMP column.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: str | None = None,
        timestamp_column: str | None = None,
    ) -> None:
        if not name:
            raise SchemaError("table name cannot be empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        names = [column.name for column in columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names in {name!r}: {sorted(duplicates)}")

        self.name = name
        self.columns: tuple[Column, ...] = tuple(
            column
            if column.name != primary_key or not column.nullable
            else Column(column.name, column.datatype, nullable=False)
            for column in columns
        )
        self._index_of: dict[str, int] = {c.name: i for i, c in enumerate(self.columns)}

        if primary_key is not None and primary_key not in self._index_of:
            raise SchemaError(f"primary key {primary_key!r} is not a column of {name!r}")
        self.primary_key = primary_key

        if timestamp_column is None:
            timestamp_column = next(
                (c.name for c in self.columns if isinstance(c.datatype, TimestampType)),
                None,
            )
        elif timestamp_column not in self._index_of:
            raise SchemaError(
                f"timestamp column {timestamp_column!r} is not a column of {name!r}"
            )
        self.timestamp_column = timestamp_column

        self._null_bitmap_bytes = (len(self.columns) + 7) // 8
        self.record_size = self._null_bitmap_bytes + sum(
            c.datatype.width for c in self.columns
        )

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def null_bitmap_bytes(self) -> int:
        return self._null_bitmap_bytes

    def has_column(self, name: str) -> bool:
        return name in self._index_of

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._index_of[name]]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def column_index(self, name: str) -> int:
        try:
            return self._index_of[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def primary_key_index(self) -> int | None:
        if self.primary_key is None:
            return None
        return self._index_of[self.primary_key]

    # --------------------------------------------------------------- validation
    def validate_values(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Validate a positional value tuple against the schema.

        Returns the canonicalised tuple (e.g. ints coerced to float for FLOAT
        columns).  Raises :class:`SchemaError` on arity mismatch, type
        mismatch, or NULL in a NOT NULL column.
        """
        if len(values) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        canonical = []
        for column, value in zip(self.columns, values):
            if value is None:
                if not column.nullable:
                    raise SchemaError(
                        f"column {self.name}.{column.name} is NOT NULL"
                    )
                canonical.append(None)
            else:
                canonical.append(column.datatype.validate(value))
        return tuple(canonical)

    def values_from_mapping(self, mapping: Mapping[str, Any]) -> tuple[Any, ...]:
        """Build a positional tuple from a column->value mapping.

        Missing columns become NULL; unknown columns raise.
        """
        unknown = set(mapping) - set(self._index_of)
        if unknown:
            raise SchemaError(f"unknown columns for {self.name!r}: {sorted(unknown)}")
        return tuple(mapping.get(c.name) for c in self.columns)

    # ------------------------------------------------------------------ derive
    def renamed(self, new_name: str) -> "TableSchema":
        """A copy of this schema under a different table name."""
        return TableSchema(
            new_name,
            self.columns,
            primary_key=self.primary_key,
            timestamp_column=self.timestamp_column,
        )

    def project(self, new_name: str, column_names: Iterable[str]) -> "TableSchema":
        """A schema holding only ``column_names`` (order preserved as given)."""
        columns = [self.column(name) for name in column_names]
        pk = self.primary_key if self.primary_key in {c.name for c in columns} else None
        ts = (
            self.timestamp_column
            if self.timestamp_column in {c.name for c in columns}
            else None
        )
        return TableSchema(new_name, columns, primary_key=pk, timestamp_column=ts)

    def signature(self) -> tuple:
        """A hashable structural signature (used for schema-match checks)."""
        return tuple((c.name, c.datatype.name, c.nullable) for c in self.columns)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TableSchema)
            and self.name == other.name
            and self.signature() == other.signature()
            and self.primary_key == other.primary_key
        )

    def __repr__(self) -> str:
        cols = ", ".join(repr(c) for c in self.columns)
        pk = f", PRIMARY KEY ({self.primary_key})" if self.primary_key else ""
        return f"TableSchema({self.name!r}: {cols}{pk})"


@dataclass
class SchemaDiff:
    """Structural differences between two schemas (for heterogeneity checks)."""

    missing_columns: list[str] = field(default_factory=list)
    extra_columns: list[str] = field(default_factory=list)
    type_mismatches: list[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not (self.missing_columns or self.extra_columns or self.type_mismatches)


def diff_schemas(source: TableSchema, target: TableSchema) -> SchemaDiff:
    """Compare two schemas structurally (names and types, order-insensitive).

    Log-based value-delta extraction (paper §3.1.4) requires the source and
    destination schemas to match exactly; this is the check it uses.
    """
    diff = SchemaDiff()
    source_cols = {c.name: c for c in source.columns}
    target_cols = {c.name: c for c in target.columns}
    for name, column in source_cols.items():
        if name not in target_cols:
            diff.missing_columns.append(name)
        elif target_cols[name].datatype != column.datatype:
            diff.type_mismatches.append(name)
    diff.extra_columns.extend(sorted(set(target_cols) - set(source_cols)))
    diff.missing_columns.sort()
    diff.type_mismatches.sort()
    return diff

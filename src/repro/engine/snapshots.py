"""Full-table snapshots (paper §3.1.2 substrate).

Some source systems only allow periodic dumps; the differential-snapshot
extraction method then compares consecutive snapshots.  A snapshot here is
a materialised copy of the table's rows tagged with the virtual time it was
taken; producing one costs a full sequential dump, which is exactly why the
paper calls the method "prohibitively resource intensive".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import SnapshotError
from .database import Database
from .page import slots_per_page
from .schema import TableSchema


@dataclass
class Snapshot:
    """A point-in-time copy of one table's rows."""

    table_name: str
    schema: TableSchema
    taken_at: float
    rows: list[tuple[Any, ...]] = field(default_factory=list)

    @property
    def num_records(self) -> int:
        return len(self.rows)

    @property
    def size_bytes(self) -> int:
        return len(self.rows) * self.schema.record_size

    def key_of(self, row: tuple[Any, ...]) -> Any:
        """The primary-key value of a row (snapshot diffing is key-based)."""
        position = self.schema.primary_key_index()
        if position is None:
            raise SnapshotError(
                f"snapshot of {self.table_name!r} has no primary key; "
                "differential snapshots need one to match rows"
            )
        return row[position]


def take_snapshot(database: Database, table_name: str) -> Snapshot:
    """Dump a table into a snapshot, paying full sequential-dump costs."""
    table = database.table(table_name)
    clock, costs = database.clock, database.costs
    clock.advance(costs.file_open)
    snapshot = Snapshot(
        table_name=table_name,
        schema=table.schema,
        taken_at=clock.now,
    )
    record_size = table.schema.record_size
    per_page = slots_per_page(record_size)
    rows_in_output_page = 0
    for _row_id, values in table.scan():
        snapshot.rows.append(values)
        clock.advance(costs.file_write(record_size))
        rows_in_output_page += 1
        if rows_in_output_page >= per_page:
            clock.advance(costs.seq_page_write)
            rows_in_output_page = 0
    if rows_in_output_page:
        clock.advance(costs.seq_page_write)
    clock.advance(costs.file_sync)
    return snapshot

"""Row codec: fixed-width binary records and record identifiers.

Rows travel through the engine as plain tuples (cheap, hashable); this module
turns them into the fixed-width byte records stored on pages and back.  The
layout is::

    [ null bitmap : ceil(ncols/8) bytes ][ col0 ][ col1 ] ... [ colN ]

Null columns still occupy their full width (zero filled) so the record size
is constant per table — matching the paper's "100-byte records".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import StorageError
from .schema import TableSchema


@dataclass(frozen=True, order=True)
class RowId:
    """Physical address of a record: (page number, slot number)."""

    page_no: int
    slot_no: int

    def __repr__(self) -> str:
        return f"RowId({self.page_no}:{self.slot_no})"


def encode_row(schema: TableSchema, values: Sequence[Any]) -> bytes:
    """Encode a validated value tuple into the schema's fixed-width record."""
    if len(values) != len(schema.columns):
        raise StorageError(
            f"cannot encode {len(values)} values into {len(schema.columns)}-column "
            f"record for {schema.name!r}"
        )
    bitmap = bytearray(schema.null_bitmap_bytes)
    parts = [bytes(schema.null_bitmap_bytes)]  # placeholder, replaced below
    body = []
    for i, (column, value) in enumerate(zip(schema.columns, values)):
        if value is None:
            bitmap[i // 8] |= 1 << (i % 8)
            body.append(bytes(column.datatype.width))
        else:
            body.append(column.datatype.encode(value))
    parts[0] = bytes(bitmap)
    record = b"".join(parts + body)
    assert len(record) == schema.record_size
    return record


def decode_row(schema: TableSchema, record: bytes) -> tuple[Any, ...]:
    """Decode a fixed-width record back into a value tuple."""
    if len(record) != schema.record_size:
        raise StorageError(
            f"record size {len(record)} does not match schema "
            f"{schema.name!r} ({schema.record_size} bytes)"
        )
    bitmap = record[: schema.null_bitmap_bytes]
    offset = schema.null_bitmap_bytes
    values = []
    for i, column in enumerate(schema.columns):
        width = column.datatype.width
        if bitmap[i // 8] & (1 << (i % 8)):
            values.append(None)
        else:
            values.append(column.datatype.decode(record[offset : offset + width]))
        offset += width
    return tuple(values)


def row_as_dict(schema: TableSchema, values: Sequence[Any]) -> dict[str, Any]:
    """Zip a value tuple with the schema's column names."""
    return dict(zip(schema.column_names, values))


#: NULL marker in dump files (the convention real loaders use); it cannot
#: collide with data because literal backslashes are escaped to ``\\``.
ASCII_NULL = "\\N"


def format_ascii(schema: TableSchema, values: Sequence[Any]) -> str:
    """Render a row as one pipe-delimited ASCII line (dump-file format).

    This is the format the DBMS ASCII Loader of Table 1 consumes.  NULL is
    rendered as ``\\N`` (distinguishing it from an empty string); pipes and
    backslashes in CHAR data are escaped.
    """
    fields = []
    for value in values:
        if value is None:
            fields.append(ASCII_NULL)
        elif isinstance(value, float):
            fields.append(repr(value))
        else:
            fields.append(str(value).replace("\\", "\\\\").replace("|", "\\|"))
    return "|".join(fields)


def parse_ascii(schema: TableSchema, line: str) -> tuple[Any, ...]:
    """Parse one pipe-delimited line back into a validated value tuple."""
    raw_fields: list[str] = []
    current: list[str] = []
    escaping = False
    for ch in line:
        if escaping:
            current.append(ch)
            escaping = False
        elif ch == "\\":
            current.append(ch)  # keep the escape; resolved per field below
            escaping = True
        elif ch == "|":
            raw_fields.append("".join(current))
            current = []
        else:
            current.append(ch)
    raw_fields.append("".join(current))
    if len(raw_fields) != len(schema.columns):
        raise StorageError(
            f"ASCII line has {len(raw_fields)} fields, schema {schema.name!r} "
            f"expects {len(schema.columns)}: {line!r}"
        )
    values: list[Any] = []
    for column, raw in zip(schema.columns, raw_fields):
        if raw == ASCII_NULL:
            values.append(None)
            continue
        text = _unescape(raw)
        type_name = column.datatype.name
        if type_name == "INTEGER":
            values.append(int(text))
        elif type_name in ("FLOAT", "TIMESTAMP"):
            values.append(float(text))
        else:
            values.append(text)
    return schema.validate_values(values)


def _unescape(raw: str) -> str:
    out: list[str] = []
    escaping = False
    for ch in raw:
        if escaping:
            out.append(ch)
            escaping = False
        elif ch == "\\":
            escaping = True
        else:
            out.append(ch)
    return "".join(out)

"""Simulated disk: a page store that charges I/O to the virtual clock.

Pages are held in memory (this is a simulation substrate, not a durability
layer) but every read/write charges the calibrated random or sequential I/O
cost, which is where the experiments' timing behaviour comes from.
"""

from __future__ import annotations

from ..clock import VirtualClock
from ..errors import StorageError
from ..obs.metrics import MetricsLike, MetricsRegistry
from .costs import CostModel

#: Page size in bytes; matches the common commercial default of the era.
PAGE_SIZE = 8192


class DiskManager:
    """Allocates and stores pages, charging virtual I/O costs.

    ``read_page``/``write_page`` default to *random* I/O costs (buffer-pool
    misses and write-backs); the utilities (Export, snapshot dumps) pass
    ``sequential=True`` to model their streaming access pattern.
    """

    def __init__(
        self,
        clock: VirtualClock,
        costs: CostModel,
        metrics: MetricsLike | None = None,
    ) -> None:
        self._clock = clock
        self._costs = costs
        self._pages: dict[int, bytes] = {}
        self._next_page_no = 0
        if metrics is None:
            metrics = MetricsRegistry()
        self._m_reads = metrics.counter("engine.disk.read")
        self._m_writes = metrics.counter("engine.disk.write")

    @property
    def reads(self) -> int:
        return int(self._m_reads.value)

    @property
    def writes(self) -> int:
        return int(self._m_writes.value)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def allocate_page(self) -> int:
        """Reserve a fresh page number (zero filled until first write)."""
        page_no = self._next_page_no
        self._next_page_no += 1
        self._pages[page_no] = bytes(PAGE_SIZE)
        return page_no

    def read_page(self, page_no: int, sequential: bool = False) -> bytes:
        """Read a page, charging random-miss or sequential cost."""
        try:
            data = self._pages[page_no]
        except KeyError:
            raise StorageError(f"read of unallocated page {page_no}") from None
        self._m_reads.inc()
        cost = self._costs.seq_page_read if sequential else self._costs.page_read_miss
        self._clock.advance(cost)
        return data

    def write_page(self, page_no: int, data: bytes, sequential: bool = False) -> None:
        """Write a page, charging random write-back or sequential cost."""
        if page_no not in self._pages:
            raise StorageError(f"write to unallocated page {page_no}")
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"page write must be exactly {PAGE_SIZE} bytes, got {len(data)}"
            )
        self._pages[page_no] = bytes(data)
        self._m_writes.inc()
        cost = self._costs.seq_page_write if sequential else self._costs.page_write
        self._clock.advance(cost)

    def deallocate_page(self, page_no: int) -> None:
        """Return a page to the free pool (used by TRUNCATE/DROP)."""
        self._pages.pop(page_no, None)

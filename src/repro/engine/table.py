"""Tables: DML with index maintenance, triggers, WAL and undo.

This module is where the paper's measured effects are produced:

* every insert pays row CPU + index maintenance + a WAL append — the base
  cost that Figure 2's trigger overhead is measured against;
* row triggers fire in the same transaction as the statement and their own
  changes are logged and undoable;
* bulk insert paths (client array insert, fully-internal INSERT..SELECT)
  pay reduced per-row CPU, which is why writing a delta *table* during
  timestamp extraction is cheaper per row than OLTP inserts but still far
  more expensive than writing a flat file (Table 2).
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..clock import VirtualClock
from ..errors import CatalogError, ConstraintError, SchemaError
from ..obs.metrics import MetricsLike, MetricsRegistry
from .buffer import BufferPool
from .costs import CostModel
from .heap import HeapFile
from .index import BTreeIndex, HashIndex, Index
from .rows import RowId, decode_row, encode_row
from .schema import TableSchema
from .transactions import Transaction
from .triggers import TriggerContext, TriggerEvent, TriggerSet, TriggerTiming
from .wal import LogManager, LogRecordKind


class InsertMode(enum.Enum):
    """How rows arrive, with the per-row CPU factor each path pays.

    STATEMENT      one client statement per row (OLTP inserts; factor 1.0)
    BULK_CLIENT    client-side array insert (Op-Delta log store; factor ~0.83)
    BULK_INTERNAL  fully internal INSERT..SELECT / utility fill (factor ~0.3)
    """

    STATEMENT = "statement"
    BULK_CLIENT = "bulk_client"
    BULK_INTERNAL = "bulk_internal"


class Table:
    """A heap table with optional indexes, triggers and auto timestamps."""

    def __init__(
        self,
        schema: TableSchema,
        buffer_pool: BufferPool,
        log: LogManager,
        clock: VirtualClock,
        costs: CostModel,
        auto_timestamp: bool = False,
        metrics: MetricsLike | None = None,
    ) -> None:
        self.schema = schema
        self.name = schema.name
        self._pool = buffer_pool
        self._log = log
        self._clock = clock
        self._costs = costs
        if metrics is None:
            metrics = MetricsRegistry()
        self._metrics = metrics
        self._m_rows_scanned = metrics.counter("engine.table.rows_scanned")
        self._heap = HeapFile(buffer_pool, schema.record_size)
        self._indexes: dict[str, Index] = {}
        self.triggers = TriggerSet(clock, costs)
        self.auto_timestamp = auto_timestamp and schema.timestamp_column is not None
        self._ts_index = (
            schema.column_index(schema.timestamp_column)
            if schema.timestamp_column is not None
            else None
        )

    # ----------------------------------------------------------------- status
    @property
    def num_rows(self) -> int:
        return self._heap.num_records

    @property
    def num_pages(self) -> int:
        return self._heap.num_pages

    @property
    def size_bytes(self) -> int:
        return self._heap.num_records * self.schema.record_size

    # ----------------------------------------------------------------- indexes
    def create_index(
        self, name: str, column: str, unique: bool = False, kind: str = "btree"
    ) -> Index:
        """Create an index and build it from the existing rows."""
        if name in self._indexes:
            raise CatalogError(f"index {name!r} already exists on {self.name!r}")
        self.schema.column(column)  # raises on unknown column
        if kind == "btree":
            index: Index = BTreeIndex(
                name, column, self._clock, self._costs, unique, self._metrics
            )
        elif kind == "hash":
            index = HashIndex(
                name, column, self._clock, self._costs, unique, self._metrics
            )
        else:
            raise CatalogError(f"unknown index kind {kind!r}")
        position = self.schema.column_index(column)
        for row_id, record in self._heap.scan():
            values = decode_row(self.schema, record)
            index.insert(values[position], row_id)
        self._indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise CatalogError(f"index {name!r} does not exist on {self.name!r}")
        del self._indexes[name]

    def index(self, name: str) -> Index:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"index {name!r} does not exist on {self.name!r}") from None

    def index_on(self, column: str) -> Index | None:
        """The first index over ``column``, if any (planner hook)."""
        for index in self._indexes.values():
            if index.column == column:
                return index
        return None

    @property
    def index_names(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    # --------------------------------------------------------------------- DML
    def insert(
        self,
        txn: Transaction,
        values: Sequence[Any],
        mode: InsertMode = InsertMode.STATEMENT,
        fire_triggers: bool = True,
    ) -> RowId:
        """Insert one row; returns its RowId."""
        values = self.schema.validate_values(tuple(values))
        values = self._stamp(values)
        self._check_unique(values)

        factor = self._mode_factor(mode)
        self._clock.advance(self._costs.row_insert_cpu * factor)

        if fire_triggers:
            self._fire(txn, TriggerEvent.INSERT, TriggerTiming.BEFORE, None, values)

        record = encode_row(self.schema, values)
        row_id = self._heap.insert(record)
        for index in self._indexes.values():
            key = values[self.schema.column_index(index.column)]
            index.insert(key, row_id)
        self._log.append(
            LogRecordKind.INSERT, txn.txn_id, self.name, row_id, after=record
        )
        txn.rows_inserted += 1
        txn.register_undo(lambda: self._physical_delete(row_id, values))

        if fire_triggers:
            self._fire(txn, TriggerEvent.INSERT, TriggerTiming.AFTER, None, values)
        return row_id

    def insert_many(
        self,
        txn: Transaction,
        rows: Iterable[Sequence[Any]],
        mode: InsertMode = InsertMode.BULK_CLIENT,
        fire_triggers: bool = True,
    ) -> int:
        """Insert many rows through a bulk path; returns the count."""
        count = 0
        for values in rows:
            self.insert(txn, values, mode=mode, fire_triggers=fire_triggers)
            count += 1
        return count

    def update(
        self,
        txn: Transaction,
        row_id: RowId,
        assignments: Mapping[str, Any],
        fire_triggers: bool = True,
    ) -> tuple[tuple[Any, ...], tuple[Any, ...]]:
        """Apply column assignments to one row; returns (old, new) values."""
        if not assignments:
            raise SchemaError("update requires at least one assignment")
        old_record = self._heap.read(row_id)
        old_values = decode_row(self.schema, old_record)
        new_list = list(old_values)
        for column_name, value in assignments.items():
            new_list[self.schema.column_index(column_name)] = value
        new_values = self.schema.validate_values(new_list)
        if self.auto_timestamp and self.schema.timestamp_column not in assignments:
            new_values = self._stamp(new_values, force=True)
        self._check_unique(new_values, exclude=row_id, changed_from=old_values)

        self._clock.advance(self._costs.row_update_cpu)

        if fire_triggers:
            self._fire(txn, TriggerEvent.UPDATE, TriggerTiming.BEFORE, old_values, new_values)

        new_record = encode_row(self.schema, new_values)
        self._heap.overwrite(row_id, new_record)
        self._maintain_indexes(row_id, old_values, new_values)
        self._log.append(
            LogRecordKind.UPDATE, txn.txn_id, self.name, row_id,
            before=old_record, after=new_record,
        )
        txn.rows_updated += 1
        txn.register_undo(lambda: self._physical_restore(row_id, new_values, old_values))

        if fire_triggers:
            self._fire(txn, TriggerEvent.UPDATE, TriggerTiming.AFTER, old_values, new_values)
        return old_values, new_values

    def delete(
        self,
        txn: Transaction,
        row_id: RowId,
        fire_triggers: bool = True,
    ) -> tuple[Any, ...]:
        """Delete one row; returns its old values."""
        old_record = self._heap.read(row_id)
        old_values = decode_row(self.schema, old_record)

        self._clock.advance(self._costs.row_delete_cpu)

        if fire_triggers:
            self._fire(txn, TriggerEvent.DELETE, TriggerTiming.BEFORE, old_values, None)

        self._heap.delete(row_id)
        for index in self._indexes.values():
            key = old_values[self.schema.column_index(index.column)]
            index.delete(key, row_id)
        self._log.append(
            LogRecordKind.DELETE, txn.txn_id, self.name, row_id, before=old_record
        )
        txn.rows_deleted += 1
        txn.register_undo(lambda: self._physical_reinsert(old_values))

        if fire_triggers:
            self._fire(txn, TriggerEvent.DELETE, TriggerTiming.AFTER, old_values, None)
        return old_values

    # -------------------------------------------------------- columnar batch DML
    # The batch entry points perform *exactly* the logical work of their
    # row-at-a-time counterparts — same validation, unique checks, index
    # maintenance, trigger firings, undo registrations, and bit-identical
    # WAL record payloads in the same LSN order — but charge per-row CPU
    # at the columnar factor (compiled kernels skip per-row dispatch) and
    # group-append the statement's WAL records so the fixed append cost
    # amortises over the batch.  State parity with the serial path is a
    # hard invariant; only the virtual-time charges differ.

    def insert_batch(
        self,
        txn: Transaction,
        rows: Iterable[Sequence[Any]],
        fire_triggers: bool = True,
    ) -> list[RowId]:
        """Columnar batch insert; returns the new RowIds in order."""
        factor = self._costs.columnar_cpu_factor
        row_cpu = self._costs.row_insert_cpu * factor
        wal_entries = []
        row_ids: list[RowId] = []
        for raw in rows:
            values = self.schema.validate_values(tuple(raw))
            values = self._stamp(values)
            self._check_unique(values)
            self._clock.advance(row_cpu)
            if fire_triggers:
                self._fire(txn, TriggerEvent.INSERT, TriggerTiming.BEFORE, None, values)
            record = encode_row(self.schema, values)
            row_id = self._heap.insert(record)
            for index in self._indexes.values():
                key = values[self.schema.column_index(index.column)]
                index.insert(key, row_id)
            wal_entries.append(
                (LogRecordKind.INSERT, txn.txn_id, self.name, row_id, None, record)
            )
            txn.rows_inserted += 1
            txn.register_undo(
                lambda rid=row_id, vals=values: self._physical_delete(rid, vals)
            )
            if fire_triggers:
                self._fire(txn, TriggerEvent.INSERT, TriggerTiming.AFTER, None, values)
            row_ids.append(row_id)
        self._log.append_batch(wal_entries)
        return row_ids

    def update_batch(
        self,
        txn: Transaction,
        updates: Iterable[tuple[RowId, Mapping[str, Any]]],
        fire_triggers: bool = True,
    ) -> list[tuple[tuple[Any, ...], tuple[Any, ...]]]:
        """Columnar batch update; returns (old, new) values per row."""
        factor = self._costs.columnar_cpu_factor
        row_cpu = self._costs.row_update_cpu * factor
        wal_entries = []
        results: list[tuple[tuple[Any, ...], tuple[Any, ...]]] = []
        for row_id, assignments in updates:
            if not assignments:
                raise SchemaError("update requires at least one assignment")
            old_record = self._heap.read(row_id)
            old_values = decode_row(self.schema, old_record)
            new_list = list(old_values)
            for column_name, value in assignments.items():
                new_list[self.schema.column_index(column_name)] = value
            new_values = self.schema.validate_values(new_list)
            if self.auto_timestamp and self.schema.timestamp_column not in assignments:
                new_values = self._stamp(new_values, force=True)
            self._check_unique(new_values, exclude=row_id, changed_from=old_values)
            self._clock.advance(row_cpu)
            if fire_triggers:
                self._fire(
                    txn, TriggerEvent.UPDATE, TriggerTiming.BEFORE, old_values, new_values
                )
            new_record = encode_row(self.schema, new_values)
            self._heap.overwrite(row_id, new_record)
            self._maintain_indexes(row_id, old_values, new_values)
            wal_entries.append(
                (
                    LogRecordKind.UPDATE,
                    txn.txn_id,
                    self.name,
                    row_id,
                    old_record,
                    new_record,
                )
            )
            txn.rows_updated += 1
            txn.register_undo(
                lambda rid=row_id, cur=new_values, prev=old_values: (
                    self._physical_restore(rid, cur, prev)
                )
            )
            if fire_triggers:
                self._fire(
                    txn, TriggerEvent.UPDATE, TriggerTiming.AFTER, old_values, new_values
                )
            results.append((old_values, new_values))
        self._log.append_batch(wal_entries)
        return results

    def delete_batch(
        self,
        txn: Transaction,
        row_ids: Iterable[RowId],
        fire_triggers: bool = True,
    ) -> list[tuple[Any, ...]]:
        """Columnar batch delete; returns the old values per row."""
        factor = self._costs.columnar_cpu_factor
        row_cpu = self._costs.row_delete_cpu * factor
        wal_entries = []
        results: list[tuple[Any, ...]] = []
        for row_id in row_ids:
            old_record = self._heap.read(row_id)
            old_values = decode_row(self.schema, old_record)
            self._clock.advance(row_cpu)
            if fire_triggers:
                self._fire(txn, TriggerEvent.DELETE, TriggerTiming.BEFORE, old_values, None)
            self._heap.delete(row_id)
            for index in self._indexes.values():
                key = old_values[self.schema.column_index(index.column)]
                index.delete(key, row_id)
            wal_entries.append(
                (LogRecordKind.DELETE, txn.txn_id, self.name, row_id, old_record, None)
            )
            txn.rows_deleted += 1
            txn.register_undo(
                lambda vals=old_values: self._physical_reinsert(vals)
            )
            if fire_triggers:
                self._fire(txn, TriggerEvent.DELETE, TriggerTiming.AFTER, old_values, None)
            results.append(old_values)
        self._log.append_batch(wal_entries)
        return results

    # ------------------------------------------------------------------- reads
    def read(self, row_id: RowId) -> tuple[Any, ...]:
        """Fetch one row by physical id."""
        return decode_row(self.schema, self._heap.read(row_id))

    def scan(self) -> Iterator[tuple[RowId, tuple[Any, ...]]]:
        """Full scan in physical order, charging per-row scan CPU."""
        advance = self._clock.advance
        scan_cpu = self._costs.row_scan_cpu
        schema = self.schema
        scanned = 0
        try:
            for row_id, record in self._heap.scan():
                advance(scan_cpu)
                scanned += 1
                yield row_id, decode_row(schema, record)
        finally:
            # One metrics update per scan, not per row, keeps the hot path
            # at a local integer bump even for million-row scans.
            self._m_rows_scanned.inc(scanned)

    def lookup(self, column: str, key: Any) -> list[tuple[RowId, tuple[Any, ...]]]:
        """Equality lookup through an index on ``column`` (must exist)."""
        index = self.index_on(column)
        if index is None:
            raise CatalogError(f"no index on {self.name}.{column}")
        results = []
        for row_id in index.lookup(key):
            results.append((row_id, self.read(row_id)))
        return results

    # ---------------------------------------------------------------- recovery
    def redo_insert(self, row_id: RowId, record: bytes) -> None:
        """Replay a logged INSERT at its original address (no log, no triggers)."""
        values = decode_row(self.schema, record)
        self._heap.place(row_id, record)
        for index in self._indexes.values():
            index.insert(values[self.schema.column_index(index.column)], row_id)

    def redo_update(self, row_id: RowId, after: bytes) -> None:
        """Replay a logged UPDATE in place."""
        old_values = decode_row(self.schema, self._heap.read(row_id))
        self._heap.overwrite(row_id, after)
        self._maintain_indexes(row_id, old_values, decode_row(self.schema, after))

    def redo_delete(self, row_id: RowId) -> None:
        """Replay a logged DELETE."""
        old_values = decode_row(self.schema, self._heap.read(row_id))
        self._heap.delete(row_id)
        for index in self._indexes.values():
            index.delete(old_values[self.schema.column_index(index.column)], row_id)

    def truncate(self) -> int:
        """Remove all rows (minimal logging, like the real utility)."""
        removed = self._heap.truncate()
        for name, index in list(self._indexes.items()):
            rebuilt = type(index)(
                index.name, index.column, self._clock, self._costs,
                index.unique, self._metrics,
            )
            self._indexes[name] = rebuilt
        return removed

    # --------------------------------------------------------------- internals
    def _mode_factor(self, mode: InsertMode) -> float:
        if mode is InsertMode.BULK_CLIENT:
            return self._costs.bulk_client_cpu_factor
        if mode is InsertMode.BULK_INTERNAL:
            return self._costs.bulk_internal_cpu_factor
        return 1.0

    def _stamp(self, values: tuple[Any, ...], force: bool = False) -> tuple[Any, ...]:
        """Fill the timestamp column from the virtual clock when configured."""
        if not self.auto_timestamp or self._ts_index is None:
            return values
        if not force and values[self._ts_index] is not None:
            return values
        stamped = list(values)
        stamped[self._ts_index] = self._clock.timestamp()
        return tuple(stamped)

    def _check_unique(
        self,
        values: tuple[Any, ...],
        exclude: RowId | None = None,
        changed_from: tuple[Any, ...] | None = None,
    ) -> None:
        for index in self._indexes.values():
            if not index.unique:
                continue
            position = self.schema.column_index(index.column)
            key = values[position]
            if changed_from is not None and changed_from[position] == key:
                continue  # key unchanged; the existing entry is this row's own
            for row_id in index.lookup(key):
                if row_id != exclude:
                    raise ConstraintError(
                        f"duplicate key {key!r} for unique index {index.name!r} "
                        f"on {self.name!r}"
                    )

    def _maintain_indexes(
        self, row_id: RowId, old_values: tuple[Any, ...], new_values: tuple[Any, ...]
    ) -> None:
        for index in self._indexes.values():
            position = self.schema.column_index(index.column)
            old_key, new_key = old_values[position], new_values[position]
            if old_key != new_key:
                index.delete(old_key, row_id)
                index.insert(new_key, row_id)

    def _fire(
        self,
        txn: Transaction,
        event: TriggerEvent,
        timing: TriggerTiming,
        old_values: tuple[Any, ...] | None,
        new_values: tuple[Any, ...] | None,
    ) -> None:
        if len(self.triggers) == 0:
            return
        context = TriggerContext(txn, self, event, old_values, new_values)
        self.triggers.fire(timing, context)

    # Undo helpers: physical compensation, no logging, no triggers.
    def _physical_delete(self, row_id: RowId, values: tuple[Any, ...]) -> None:
        self._heap.delete(row_id)
        for index in self._indexes.values():
            key = values[self.schema.column_index(index.column)]
            index.delete(key, row_id)

    def _physical_restore(
        self, row_id: RowId, current: tuple[Any, ...], previous: tuple[Any, ...]
    ) -> None:
        self._heap.overwrite(row_id, encode_row(self.schema, previous))
        self._maintain_indexes(row_id, current, previous)

    def _physical_reinsert(self, values: tuple[Any, ...]) -> None:
        row_id = self._heap.insert(encode_row(self.schema, values))
        for index in self._indexes.values():
            key = values[self.schema.column_index(index.column)]
            index.insert(key, row_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, rows={self.num_rows}, indexes={list(self._indexes)})"

"""The database: catalog, transactions, checkpoints and connections.

A :class:`Database` bundles a disk, buffer pool, WAL, transaction manager
and table catalog over one shared :class:`~repro.clock.VirtualClock`.
Several databases can share a clock (source system, staging area and
warehouse inside one experiment) so that costs compose end-to-end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..clock import VirtualClock
from ..errors import CatalogError
from ..obs.context import ambient_metrics, ambient_tracer
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer
from .buffer import DEFAULT_POOL_PAGES, BufferPool
from .costs import DEFAULT_COST_MODEL, CostModel
from .disk import DiskManager
from .schema import TableSchema
from .table import Table
from .transactions import Transaction, TransactionManager
from .wal import LogManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import Session


class Database:
    """A single DBMS instance.

    Parameters
    ----------
    name:
        Instance name (used in error messages and provenance tags).
    clock:
        Shared virtual clock; a private one is created when omitted.
    costs:
        Cost model; defaults to the calibrated :data:`DEFAULT_COST_MODEL`.
    buffer_pages:
        Buffer pool size.  Experiments model "table fits in RAM" vs
        "table thrashes the pool" by sizing this (see DESIGN.md).
    product / product_version:
        Simulated DBMS product identity; Export/Import and log extraction
        enforce product/version compatibility with these tags.
    archive_mode:
        Retain closed WAL segments for log-based extraction (§3.1.4).
    metrics:
        Shared :class:`~repro.obs.MetricsRegistry`.  Defaults to the
        ambient registry installed by :func:`repro.obs.observe` when one
        is active, else a private registry; every engine instrument is
        labelled ``db=<name>`` so several instances can share a registry.
        Pass :data:`repro.obs.NULL_REGISTRY` to opt out entirely (the
        read-through stat properties then read zero).
    tracer:
        Shared :class:`~repro.obs.Tracer`; same ambient-default rule, but
        the fallback is the no-op tracer.  ``self.tracer`` is the tracer
        bound to this instance's clock.
    """

    def __init__(
        self,
        name: str = "db",
        clock: VirtualClock | None = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        buffer_pages: int = DEFAULT_POOL_PAGES,
        product: str = "ReproDB",
        product_version: str = "1.0",
        archive_mode: bool = False,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.name = name
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        self.product = product
        self.product_version = product_version
        if metrics is None:
            metrics = ambient_metrics()
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        if tracer is None:
            tracer = ambient_tracer()
        if tracer is None:
            tracer = NULL_TRACER
        self.tracer = tracer.bound(self.clock)
        scoped = metrics.labelled(db=name)
        self._scoped_metrics = scoped
        self.disk = DiskManager(self.clock, costs, metrics=scoped)
        self.buffer_pool = BufferPool(
            self.disk, self.clock, costs, buffer_pages, metrics=scoped
        )
        self.log = LogManager(
            self.clock, costs, product, product_version, archive_mode,
            metrics=scoped,
        )
        self.transactions = TransactionManager(self.log, metrics=scoped)
        self._tables: dict[str, Table] = {}

    # ----------------------------------------------------------------- catalog
    def create_table(
        self, schema: TableSchema, auto_timestamp: bool = False
    ) -> Table:
        """Create a table; a primary key gets a unique B-tree automatically."""
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists in {self.name!r}")
        table = Table(
            schema, self.buffer_pool, self.log, self.clock, self.costs,
            auto_timestamp=auto_timestamp, metrics=self._scoped_metrics,
        )
        if schema.primary_key is not None:
            table.create_index(
                f"pk_{schema.name}", schema.primary_key, unique=True, kind="btree"
            )
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        table = self.table(name)
        table.truncate()
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist in {self.name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    # ------------------------------------------------------------ transactions
    def begin(self) -> Transaction:
        return self.transactions.begin()

    def commit(self, txn: Transaction) -> None:
        self.transactions.commit(txn)

    def abort(self, txn: Transaction) -> None:
        self.transactions.abort(txn)

    def checkpoint(self) -> None:
        """Flush dirty pages and close the active WAL segment."""
        with self.tracer.span("engine.database.checkpoint", db=self.name):
            self.buffer_pool.flush_all()
            self.log.checkpoint()

    # -------------------------------------------------------------- connections
    def connect(self) -> "Session":
        """Open a client session, paying the connection-setup cost."""
        from .session import Session

        self.clock.advance(self.costs.connection_setup)
        return Session(self)

    def internal_session(self) -> "Session":
        """A free session for engine-internal work (utilities, recovery)."""
        from .session import Session

        return Session(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Database({self.name!r}, tables={list(self._tables)})"

"""Calibrated virtual-cost model for the storage engine.

The paper's experiments ran on a 300 MHz NT server with 128 MB of RAM hosting
a commercial DBMS; its tables report wall-clock times.  This reproduction
replaces the testbed with a deterministic cost model: every engine primitive
(page I/O, log append, log force, per-row CPU, statement dispatch, network
round trip, ...) charges a :class:`repro.clock.VirtualClock` through the
constants below.

The constants were calibrated once, analytically, against the paper's
published numbers (Tables 1-4, Figures 2-3) and are **never** adjusted by the
benchmarks — the experiment shapes are emergent from which primitives each
code path exercises:

* an OLTP ``INSERT`` pays row CPU + primary-index maintenance + a WAL append,
  so a row trigger (one extra unindexed insert per row) costs ~80-100% on
  top of it (Figure 2);
* ``UPDATE``/``DELETE`` transactions pay a table scan whose cost amortises
  over the rows they touch, so trigger overhead *rises* with transaction
  size (Figure 2) while the constant-size Op-Delta capture overhead *falls*
  (Figure 3, Table 4);
* the Import utility refills internal pages and reorganises what it has
  already loaded on every staging-buffer overflow, which is why it loses to
  the direct block Loader by a growing margin (Table 1).

All costs are in **virtual milliseconds**; sizes in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-primitive virtual costs charged by the engine.

    Instances are immutable; use :meth:`scaled` to derive variants (e.g. a
    slower disk for a sensitivity ablation).
    """

    # --- buffer pool / disk -------------------------------------------------
    page_read_hit: float = 0.015       # logical read satisfied by the pool
    page_read_miss: float = 6.0        # random read from disk
    page_write: float = 8.0            # random write-back of a dirty page
    seq_page_read: float = 1.5         # sequential read (utilities)
    seq_page_write: float = 1.5        # sequential write (utilities)

    # --- per-row CPU --------------------------------------------------------
    row_scan_cpu: float = 0.0002       # visiting one row during a scan
    row_insert_cpu: float = 3.0        # slotting, constraints, free-space
    row_update_cpu: float = 1.8        # in-place field rewrite
    row_delete_cpu: float = 2.5        # slot reclaim, free-space update
    bulk_client_cpu_factor: float = 0.83   # client-side bulk insert (array op)
    bulk_internal_cpu_factor: float = 0.30  # fully internal INSERT..SELECT
    columnar_cpu_factor: float = 0.35      # batched columnar DML (compiled
                                           # kernels, no per-row dispatch)

    # --- indexes ------------------------------------------------------------
    index_insert: float = 1.1
    index_delete: float = 1.0
    index_lookup: float = 0.05         # probe per matching entry

    # --- write-ahead log ----------------------------------------------------
    log_append_base: float = 0.3       # per log record
    log_append_per_byte: float = 0.002
    log_force: float = 4.0             # group-commit fsync

    # --- statements / transactions -------------------------------------------
    stmt_overhead: float = 2.5         # parse + plan + dispatch of one SQL stmt
    trigger_invoke: float = 0.5        # firing machinery per row trigger

    # --- connections / network ----------------------------------------------
    connection_setup: float = 250.0    # establishing a database connection
    ipc_round_trip: float = 25.0       # statement to another DB, same machine
    lan_round_trip: float = 50.0       # statement across the 10 Mb/s LAN
    net_per_byte: float = 0.0008       # 10 Mb/s ~ 1.25 MB/s payload cost

    # --- flat files ----------------------------------------------------------
    file_open: float = 1.0
    file_write_per_byte: float = 0.005
    file_read_per_byte: float = 0.001
    file_sync: float = 2.0

    # --- utilities (Export / Import / Loader, Table 1) -----------------------
    ascii_format_row: float = 0.1      # render a row as a delimited line
    ascii_parse_row: float = 0.3       # parse a delimited line back
    export_row_cpu: float = 0.1
    loader_row_cpu: float = 0.9        # direct block formatting
    import_row_cpu: float = 0.7        # page-buffer fill bookkeeping
    import_staging_rows: int = 4864    # rows per internal staging flush
    import_reorg_per_loaded_row: float = 0.29  # reorg cost per already-loaded
                                               # row, charged at each flush

    def log_append(self, payload_bytes: int) -> float:
        """Cost of appending one WAL record carrying ``payload_bytes``."""
        return self.log_append_base + self.log_append_per_byte * payload_bytes

    def log_append_batch(self, payload_bytes: int, records: int) -> float:
        """Cost of one *group* append of ``records`` WAL records.

        The per-record fixed cost (latch, header setup) is paid once for
        the whole batch; the per-byte cost is never amortised — every
        image byte still travels to the log buffer.
        """
        if records <= 0:
            return 0.0
        return self.log_append_base + self.log_append_per_byte * payload_bytes

    def file_write(self, num_bytes: int) -> float:
        """Cost of appending ``num_bytes`` to an OS file (no sync)."""
        return self.file_write_per_byte * num_bytes

    def file_read(self, num_bytes: int) -> float:
        """Cost of reading ``num_bytes`` from an OS file."""
        return self.file_read_per_byte * num_bytes

    def network_transfer(self, num_bytes: int) -> float:
        """Payload cost of moving ``num_bytes`` across the LAN."""
        return self.net_per_byte * num_bytes

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with the given constants replaced."""
        return replace(self, **overrides)


#: The calibrated model used by every experiment unless overridden.
DEFAULT_COST_MODEL = CostModel()

"""Transactions: begin/commit/abort with log-backed undo.

The engine is single-threaded (experiment concurrency is modelled by the
discrete-event scheduler in :mod:`repro.sim`), so the transaction manager's
job here is atomicity: every data change registers an undo action, commit
forces the WAL, abort replays the undo chain in reverse — including changes
made by triggers, which per the paper "execute in the same transaction
context as the triggering event".
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable

from ..errors import TransactionError
from ..obs.metrics import MetricsLike, MetricsRegistry
from .wal import LogManager, LogRecordKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class TxnState(enum.Enum):
    ACTIVE = "ACTIVE"
    COMMITTED = "COMMITTED"
    ABORTED = "ABORTED"


class Transaction:
    """One unit of work.  Created via :meth:`TransactionManager.begin`."""

    def __init__(self, txn_id: int) -> None:
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self._undo_actions: list[Callable[[], None]] = []
        self.rows_inserted = 0
        self.rows_updated = 0
        self.rows_deleted = 0
        #: Arbitrary per-transaction annotations (capture hooks use this).
        self.annotations: dict[str, Any] = {}

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def rows_affected(self) -> int:
        return self.rows_inserted + self.rows_updated + self.rows_deleted

    def register_undo(self, action: Callable[[], None]) -> None:
        """Record a compensating action to run if the transaction aborts."""
        self._ensure_active()
        self._undo_actions.append(action)

    def _ensure_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, not ACTIVE"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Transaction(id={self.txn_id}, state={self.state.value})"


class TransactionManager:
    """Hands out transactions and drives commit/abort through the WAL."""

    def __init__(
        self, log: LogManager, metrics: MetricsLike | None = None
    ) -> None:
        self._log = log
        self._next_txn_id = 1
        self._active: dict[int, Transaction] = {}
        if metrics is None:
            metrics = MetricsRegistry()
        self._m_commits = metrics.counter("engine.txn.commit")
        self._m_aborts = metrics.counter("engine.txn.abort")
        #: Observers notified on commit/abort with the transaction; the
        #: Op-Delta capture layer uses these to learn txn boundaries.
        self.commit_listeners: list[Callable[[Transaction], None]] = []
        self.abort_listeners: list[Callable[[Transaction], None]] = []

    # Read-through views of the registry counters, preserving the pre-obs
    # ad-hoc attribute API (``manager.commits`` / ``manager.aborts``).
    @property
    def commits(self) -> int:
        return int(self._m_commits.value)

    @property
    def aborts(self) -> int:
        return int(self._m_aborts.value)

    def begin(self) -> Transaction:
        txn = Transaction(self._next_txn_id)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        self._log.append(LogRecordKind.BEGIN, txn.txn_id)
        return txn

    def commit(self, txn: Transaction) -> None:
        txn._ensure_active()
        self._log.append(LogRecordKind.COMMIT, txn.txn_id)
        self._log.force()
        txn.state = TxnState.COMMITTED
        self._active.pop(txn.txn_id, None)
        self._m_commits.inc()
        for listener in self.commit_listeners:
            listener(txn)

    def abort(self, txn: Transaction) -> None:
        txn._ensure_active()
        # Compensate in reverse order; trigger-made changes roll back too
        # because they registered undo actions in the same transaction.
        for action in reversed(txn._undo_actions):
            action()
        self._log.append(LogRecordKind.ABORT, txn.txn_id)
        txn.state = TxnState.ABORTED
        self._active.pop(txn.txn_id, None)
        self._m_aborts.inc()
        for listener in self.abort_listeners:
            listener(txn)

    @property
    def active_transactions(self) -> tuple[Transaction, ...]:
        return tuple(self._active.values())

    def has_active(self) -> bool:
        return bool(self._active)

"""Column datatypes with fixed-width binary codecs.

The engine stores fixed-width records (the paper's experiments use 100-byte
records throughout), so every datatype knows its exact on-page width and how
to encode/decode itself with :mod:`struct`.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from typing import Any

from ..errors import SchemaError


class DataType(ABC):
    """Abstract column datatype."""

    #: SQL spelling used by DDL and ``repr``.
    name: str = "?"

    @property
    @abstractmethod
    def width(self) -> int:
        """Exact encoded width in bytes."""

    @abstractmethod
    def validate(self, value: Any) -> Any:
        """Coerce ``value`` to the canonical Python value or raise SchemaError."""

    @abstractmethod
    def encode(self, value: Any) -> bytes:
        """Encode a (validated, non-null) value into exactly ``width`` bytes."""

    @abstractmethod
    def decode(self, data: bytes) -> Any:
        """Decode ``width`` bytes back into a Python value."""

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.width == getattr(other, "width", None)

    def __hash__(self) -> int:
        return hash((type(self), self.width))


class IntegerType(DataType):
    """64-bit signed integer."""

    name = "INTEGER"
    _codec = struct.Struct(">q")

    @property
    def width(self) -> int:
        return 8

    def validate(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SchemaError(f"INTEGER column cannot store {value!r}")
        if not -(2**63) <= value < 2**63:
            raise SchemaError(f"INTEGER value out of range: {value}")
        return value

    def encode(self, value: int) -> bytes:
        return self._codec.pack(value)

    def decode(self, data: bytes) -> int:
        return self._codec.unpack(data)[0]


class FloatType(DataType):
    """64-bit IEEE-754 float."""

    name = "FLOAT"
    _codec = struct.Struct(">d")

    @property
    def width(self) -> int:
        return 8

    def validate(self, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"FLOAT column cannot store {value!r}")
        return float(value)

    def encode(self, value: float) -> bytes:
        return self._codec.pack(value)

    def decode(self, data: bytes) -> float:
        return self._codec.unpack(data)[0]


class TimestampType(FloatType):
    """Virtual timestamp (milliseconds on the experiment's virtual clock).

    Stored exactly like a FLOAT; kept as a distinct type so that schemas can
    declare which column carries the ``last_modified`` semantics the
    timestamp-based extraction method (paper §3.1.1) relies on.
    """

    name = "TIMESTAMP"


class CharType(DataType):
    """Fixed-width ``CHAR(n)`` string, space padded, latin-1 encoded."""

    name = "CHAR"

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise SchemaError(f"CHAR length must be positive, got {length}")
        self.length = length
        self.name = f"CHAR({length})"

    @property
    def width(self) -> int:
        return self.length

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise SchemaError(f"{self.name} column cannot store {value!r}")
        if len(value) > self.length:
            raise SchemaError(
                f"value of length {len(value)} exceeds {self.name}: {value!r}"
            )
        try:
            value.encode("latin-1")
        except UnicodeEncodeError as exc:
            raise SchemaError(f"{self.name} only stores latin-1 text: {value!r}") from exc
        return value

    def encode(self, value: str) -> bytes:
        return value.encode("latin-1").ljust(self.length, b" ")

    def decode(self, data: bytes) -> str:
        return data.decode("latin-1").rstrip(" ")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharType) and other.length == self.length

    def __hash__(self) -> int:
        return hash((CharType, self.length))


#: Singleton instances for the width-fixed types.
INTEGER = IntegerType()
FLOAT = FloatType()
TIMESTAMP = TimestampType()


def char(length: int) -> CharType:
    """Convenience constructor: ``char(12) == CharType(12)``."""
    return CharType(length)


def type_from_sql(name: str, argument: int | None = None) -> DataType:
    """Resolve a SQL type spelling (``INTEGER``, ``CHAR(12)``...) to a DataType."""
    upper = name.upper()
    if upper in ("INTEGER", "INT", "BIGINT"):
        return INTEGER
    if upper in ("FLOAT", "DOUBLE", "REAL"):
        return FLOAT
    if upper == "TIMESTAMP":
        return TIMESTAMP
    if upper in ("CHAR", "VARCHAR"):
        if argument is None:
            raise SchemaError(f"{upper} requires a length argument")
        return CharType(argument)
    raise SchemaError(f"unknown SQL type: {name!r}")

"""Slotted pages for fixed-width records.

Because every table stores fixed-width records (see
:mod:`repro.engine.schema`), the page layout is a simple slot array::

    header:  record_size (u16) | num_slots (u16)
    bitmap:  ceil(num_slots / 8) occupancy bits
    slots:   num_slots x record_size bytes

Deleted slots are reusable.  The in-memory representation keeps decoded slot
bytes in a list for speed; :meth:`Page.to_bytes`/:meth:`Page.from_bytes`
round-trip the on-disk image exactly.
"""

from __future__ import annotations

import struct
from typing import Iterator

from ..errors import StorageError
from .disk import PAGE_SIZE

_HEADER = struct.Struct(">HH")


def slots_per_page(record_size: int) -> int:
    """How many records of ``record_size`` bytes fit on one page.

    Solves for the largest n with header + ceil(n/8) + n*record_size <= PAGE_SIZE.
    """
    if record_size <= 0:
        raise StorageError(f"record size must be positive, got {record_size}")
    if record_size > PAGE_SIZE - _HEADER.size - 1:
        raise StorageError(f"record size {record_size} exceeds page capacity")
    available = PAGE_SIZE - _HEADER.size
    n = available // record_size
    while _HEADER.size + (n + 7) // 8 + n * record_size > PAGE_SIZE:
        n -= 1
    return n


class Page:
    """A slotted page of fixed-width records."""

    def __init__(self, record_size: int) -> None:
        self.record_size = record_size
        self.capacity = slots_per_page(record_size)
        self._slots: list[bytes | None] = [None] * self.capacity
        self._used = 0
        self._free_hint = 0

    # ----------------------------------------------------------------- status
    @property
    def used(self) -> int:
        return self._used

    @property
    def has_space(self) -> bool:
        return self._used < self.capacity

    # ------------------------------------------------------------------- slots
    def insert(self, record: bytes) -> int:
        """Store a record in the first free slot; return the slot number."""
        self._check_record(record)
        if not self.has_space:
            raise StorageError("page is full")
        for slot_no in range(self._free_hint, self.capacity):
            if self._slots[slot_no] is None:
                self._slots[slot_no] = record
                self._used += 1
                self._free_hint = slot_no + 1
                return slot_no
        for slot_no in range(self._free_hint):
            if self._slots[slot_no] is None:
                self._slots[slot_no] = record
                self._used += 1
                self._free_hint = slot_no + 1
                return slot_no
        raise StorageError("page reported space but no free slot found")

    def insert_at(self, slot_no: int, record: bytes) -> None:
        """Place a record in a specific empty slot (physiological redo)."""
        self._check_record(record)
        if not 0 <= slot_no < self.capacity:
            raise StorageError(f"slot {slot_no} out of range 0..{self.capacity - 1}")
        if self._slots[slot_no] is not None:
            raise StorageError(f"slot {slot_no} is already occupied")
        self._slots[slot_no] = record
        self._used += 1

    def read(self, slot_no: int) -> bytes:
        record = self._slot_or_raise(slot_no)
        return record

    def overwrite(self, slot_no: int, record: bytes) -> None:
        self._check_record(record)
        self._slot_or_raise(slot_no)
        self._slots[slot_no] = record

    def delete(self, slot_no: int) -> bytes:
        """Free a slot; returns the old record (for undo/before images)."""
        record = self._slot_or_raise(slot_no)
        self._slots[slot_no] = None
        self._used -= 1
        if slot_no < self._free_hint:
            self._free_hint = slot_no
        return record

    def occupied_slots(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot_no, record)`` for every live record in slot order."""
        for slot_no, record in enumerate(self._slots):
            if record is not None:
                yield slot_no, record

    # ------------------------------------------------------------ serialization
    def to_bytes(self) -> bytes:
        bitmap = bytearray((self.capacity + 7) // 8)
        body = bytearray(self.capacity * self.record_size)
        for slot_no, record in enumerate(self._slots):
            if record is not None:
                bitmap[slot_no // 8] |= 1 << (slot_no % 8)
                start = slot_no * self.record_size
                body[start : start + self.record_size] = record
        image = _HEADER.pack(self.record_size, self.capacity) + bytes(bitmap) + bytes(body)
        return image.ljust(PAGE_SIZE, b"\x00")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Page":
        if len(data) != PAGE_SIZE:
            raise StorageError(f"page image must be {PAGE_SIZE} bytes, got {len(data)}")
        record_size, capacity = _HEADER.unpack_from(data, 0)
        if record_size == 0:
            raise StorageError("page image has zero record size (unformatted page?)")
        page = cls(record_size)
        if capacity != page.capacity:
            raise StorageError(
                f"page image capacity {capacity} does not match computed "
                f"{page.capacity} for record size {record_size}"
            )
        bitmap_offset = _HEADER.size
        bitmap_len = (capacity + 7) // 8
        body_offset = bitmap_offset + bitmap_len
        for slot_no in range(capacity):
            if data[bitmap_offset + slot_no // 8] & (1 << (slot_no % 8)):
                start = body_offset + slot_no * record_size
                page._slots[slot_no] = data[start : start + record_size]
                page._used += 1
        return page

    # -------------------------------------------------------------------- misc
    def _check_record(self, record: bytes) -> None:
        if len(record) != self.record_size:
            raise StorageError(
                f"record of {len(record)} bytes does not fit page record size "
                f"{self.record_size}"
            )

    def _slot_or_raise(self, slot_no: int) -> bytes:
        if not 0 <= slot_no < self.capacity:
            raise StorageError(f"slot {slot_no} out of range 0..{self.capacity - 1}")
        record = self._slots[slot_no]
        if record is None:
            raise StorageError(f"slot {slot_no} is empty")
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Page(record_size={self.record_size}, used={self._used}/{self.capacity})"

"""LRU buffer pool.

The pool is where the paper's "fits in RAM vs does not" distinction lives:
the Figure 2 / Table 4 experiments run against a 10 MB table on a 128 MB
machine (everything cached → cheap logical reads), while the Table 2
timestamp scans run against a 1 GB table (pool thrash → every page is a
random disk read).  Experiments configure ``capacity`` accordingly.
"""

from __future__ import annotations

from collections import OrderedDict

from ..clock import VirtualClock
from ..obs.metrics import MetricsLike, MetricsRegistry
from .costs import CostModel
from .disk import DiskManager
from .page import Page

#: Default pool size in pages (~32 MB), comfortably holding the 100k-row
#: experiment tables just as the paper's 128 MB machine held its 10 MB table.
DEFAULT_POOL_PAGES = 4096


class BufferPool:
    """Caches :class:`Page` objects over a :class:`DiskManager` with LRU eviction."""

    def __init__(
        self,
        disk: DiskManager,
        clock: VirtualClock,
        costs: CostModel,
        capacity: int = DEFAULT_POOL_PAGES,
        metrics: MetricsLike | None = None,
    ) -> None:
        if capacity < 2:
            raise ValueError(f"buffer pool needs at least 2 pages, got {capacity}")
        self._disk = disk
        self._clock = clock
        self._costs = costs
        self.capacity = capacity
        self._frames: OrderedDict[int, Page] = OrderedDict()
        self._dirty: set[int] = set()
        if metrics is None:
            metrics = MetricsRegistry()
        self._m_hits = metrics.counter("engine.buffer.hit")
        self._m_misses = metrics.counter("engine.buffer.miss")
        self._m_evictions = metrics.counter("engine.buffer.eviction")

    # ------------------------------------------------------------------ stats
    # Read-through views of the registry counters, preserving the pre-obs
    # ad-hoc attribute API (``pool.hits`` etc.).
    @property
    def hits(self) -> int:
        return int(self._m_hits.value)

    @property
    def misses(self) -> int:
        return int(self._m_misses.value)

    @property
    def evictions(self) -> int:
        return int(self._m_evictions.value)

    # ------------------------------------------------------------------ fetch
    def fetch(self, page_no: int) -> Page:
        """Return the page, charging a logical hit or a physical miss."""
        page = self._frames.get(page_no)
        if page is not None:
            self._frames.move_to_end(page_no)
            self._m_hits.inc()
            self._clock.advance(self._costs.page_read_hit)
            return page
        self._m_misses.inc()
        data = self._disk.read_page(page_no)
        page = Page.from_bytes(data)
        self._admit(page_no, page)
        return page

    def create(self, record_size: int) -> tuple[int, Page]:
        """Allocate a brand-new formatted page and cache it dirty."""
        page_no = self._disk.allocate_page()
        page = Page(record_size)
        self._admit(page_no, page)
        self.mark_dirty(page_no)
        return page_no, page

    def mark_dirty(self, page_no: int) -> None:
        if page_no not in self._frames:
            # The page was evicted between fetch and mark; re-fault it so the
            # dirty bit has a frame to attach to.
            self.fetch(page_no)
        self._dirty.add(page_no)

    # ------------------------------------------------------------------ flush
    def flush_page(self, page_no: int) -> None:
        """Write one dirty page back (no-op if clean or absent)."""
        if page_no in self._dirty and page_no in self._frames:
            self._disk.write_page(page_no, self._frames[page_no].to_bytes())
            self._dirty.discard(page_no)

    def flush_all(self) -> int:
        """Write back every dirty page (checkpoint); returns pages written."""
        written = 0
        for page_no in sorted(self._dirty & set(self._frames)):
            self._disk.write_page(page_no, self._frames[page_no].to_bytes())
            written += 1
        self._dirty.clear()
        return written

    def drop(self, page_no: int) -> None:
        """Discard a frame without writing it (used by DROP TABLE)."""
        self._frames.pop(page_no, None)
        self._dirty.discard(page_no)

    # --------------------------------------------------------------- internals
    def _admit(self, page_no: int, page: Page) -> None:
        while len(self._frames) >= self.capacity:
            victim_no, victim = self._frames.popitem(last=False)
            self._m_evictions.inc()
            if victim_no in self._dirty:
                self._disk.write_page(victim_no, victim.to_bytes())
                self._dirty.discard(victim_no)
        self._frames[page_no] = page
        self._frames.move_to_end(page_no)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BufferPool({len(self._frames)}/{self.capacity} frames, "
            f"{len(self._dirty)} dirty, hit_ratio={self.hit_ratio:.2f})"
        )

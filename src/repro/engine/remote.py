"""Remote database access: IPC and LAN links with per-statement round trips.

§3.1.3 reports that capturing changes "directly to an external system ... is
in the order of ten to hundred times more expensive", and "one order [of]
magnitude higher even if the staging area is located in a different database
at the same machine".  This module models those two link kinds: every
statement sent over a link pays a round trip plus payload transfer, and
opening the link pays connection setup.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

from .database import Database
from .session import Session

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Deferred to keep ``repro.sql`` importable on its own: the executor
    # imports this package, so a module-level import here would close an
    # import cycle whenever ``repro.sql`` (or anything that pulls it in,
    # like ``repro.columnar``) loads before ``repro.engine``.
    from ..sql.executor import Result


class LinkKind(enum.Enum):
    """Where the remote database lives relative to the caller."""

    SAME_MACHINE = "same-machine"  # different DB instance, IPC round trips
    LAN = "lan"                    # across the 10 Mb/s switched LAN


class RemoteSession:
    """A session on another database, reached over a costed link.

    The *caller's* clock is charged for round trips; since experiments share
    one clock across databases, the remote database's own work lands on the
    same timeline, composing into the end-to-end response time.
    """

    def __init__(self, caller: Database, remote: Database, link: LinkKind) -> None:
        self._caller = caller
        self._link = link
        caller.clock.advance(
            caller.costs.connection_setup + self._round_trip_cost()
        )
        self._session = Session(remote)
        self.statements_sent = 0

    @property
    def link(self) -> LinkKind:
        return self._link

    @property
    def session(self) -> Session:
        """The underlying remote-side session (for txn control in tests)."""
        return self._session

    def execute(self, sql: str) -> Result:
        """Ship one statement across the link and execute it remotely."""
        costs = self._caller.costs
        self._caller.clock.advance(
            self._round_trip_cost() + costs.network_transfer(len(sql))
            if self._link is LinkKind.LAN
            else self._round_trip_cost()
        )
        self.statements_sent += 1
        return self._session.execute(sql)

    def query(self, sql: str) -> list[tuple[Any, ...]]:
        return self.execute(sql).rows

    def _round_trip_cost(self) -> float:
        costs = self._caller.costs
        if self._link is LinkKind.LAN:
            return costs.lan_round_trip
        return costs.ipc_round_trip


def open_remote(caller: Database, remote: Database, link: LinkKind) -> RemoteSession:
    """Open a costed link from ``caller`` to ``remote``."""
    return RemoteSession(caller, remote, link)

"""Client sessions: the SQL entry point and the Op-Delta capture seam.

A :class:`Session` parses and executes SQL against its database, scoping
statements into transactions (autocommit by default, explicit
``BEGIN``/``COMMIT``/``ROLLBACK`` otherwise).

Crucially for the paper, a session exposes **capture hooks**: callables that
observe every client DML statement *right before it is submitted to the
DBMS*.  This is the level at which §4.2 captures Op-Delta — "right before it
is submitted to the DBMS to simulate the capture mechanism that will be
implemented by COTS software or by the wrapper approach".
"""

from __future__ import annotations

from typing import Any, Protocol

from ..errors import SqlError, TransactionError
from ..sql import ast_nodes as ast
from ..sql.executor import Executor, Result
from ..sql.parser import parse
from .database import Database
from .transactions import Transaction


class CaptureHook(Protocol):
    """Observer of client DML statements, invoked pre-submit."""

    def __call__(
        self, statement: ast.Statement, sql_text: str, session: "Session"
    ) -> None: ...


class Session:
    """One client connection to a :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._executor = Executor(database)
        self._txn: Transaction | None = None
        self._stmt_txn: Transaction | None = None
        #: Pre-submit observers of client DML (the COTS/wrapper seam).
        self.capture_hooks: list[CaptureHook] = []
        self.statements_executed = 0

    # ------------------------------------------------------------ transactions
    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.is_active

    @property
    def current_transaction(self) -> Transaction | None:
        """The transaction statements run in right now.

        For explicit transactions this is the BEGUN transaction; during an
        autocommit statement it is the implicit per-statement transaction
        (capture hooks rely on this).
        """
        if self.in_transaction:
            return self._txn
        if self._stmt_txn is not None and self._stmt_txn.is_active:
            return self._stmt_txn
        return None

    def begin(self) -> Transaction:
        if self.in_transaction:
            raise TransactionError("session already has an active transaction")
        self._txn = self.database.begin()
        return self._txn

    def commit(self) -> None:
        if not self.in_transaction:
            raise TransactionError("no active transaction to commit")
        assert self._txn is not None
        self.database.commit(self._txn)
        self._txn = None

    def rollback(self) -> None:
        if not self.in_transaction:
            raise TransactionError("no active transaction to roll back")
        assert self._txn is not None
        self.database.abort(self._txn)
        self._txn = None

    # -------------------------------------------------------------- statements
    def execute(self, sql: str) -> Result:
        """Parse and execute one client statement."""
        statement = parse(sql)
        return self.execute_statement(statement, sql_text=sql)

    def execute_statement(
        self, statement: ast.Statement, sql_text: str | None = None
    ) -> Result:
        """Execute a pre-parsed statement as a client statement.

        Charges the per-statement overhead, fires capture hooks for DML,
        and manages autocommit scoping.
        """
        if isinstance(statement, ast.BeginStmt):
            self.begin()
            return Result(plan="begin")
        if isinstance(statement, ast.CommitStmt):
            self.commit()
            return Result(plan="commit")
        if isinstance(statement, ast.RollbackStmt):
            self.rollback()
            return Result(plan="rollback")

        self.database.clock.advance(self.database.costs.stmt_overhead)
        self.statements_executed += 1

        autocommit = not self.in_transaction
        txn = self._txn if self._txn is not None and self._txn.is_active else None
        if txn is None:
            txn = self.database.begin()
            if not autocommit:  # pragma: no cover - defensive
                self._txn = txn

        self._stmt_txn = txn
        try:
            if ast.is_dml(statement) and self.capture_hooks:
                text = sql_text if sql_text is not None else statement.to_sql()
                for hook in self.capture_hooks:
                    hook(statement, text, self)
            result = self._executor.execute(statement, txn)
        except Exception:
            if autocommit:
                self.database.abort(txn)
            else:
                self.rollback()
            raise
        finally:
            self._stmt_txn = None
        if autocommit:
            self.database.commit(txn)
        return result

    # ------------------------------------------------------------ conveniences
    def query(self, sql: str) -> list[tuple[Any, ...]]:
        """Execute a SELECT and return its rows."""
        result = self.execute(sql)
        if result.columns or result.rows:
            return result.rows
        raise SqlError(f"statement returned no result set: {sql!r}")

    def scalar(self, sql: str) -> Any:
        """Execute a SELECT returning a single value."""
        return self.execute(sql).scalar()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Session(database={self.database.name!r}, in_txn={self.in_transaction})"

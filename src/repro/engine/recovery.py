"""Redo recovery from archived WAL segments.

§3.1.4 observes that log shipping "can only fully re-create a database much
like a recovery manager does" — the logs are physiological, so the recipient
must be the same product, same version, same schema, and must replay the
*full* committed history into an empty database.  This module implements
that recovery manager; the log-based extraction method and its tests use it
to demonstrate both the power (exact state re-creation) and the rigidity
(any mismatch fails) of the approach.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import RecoveryError
from .database import Database
from .schema import diff_schemas
from .wal import (
    LogRecordKind,
    LogSegment,
    committed_txn_ids,
    require_compatible,
)


def recover_from_archive(
    target: Database,
    segments: Iterable[LogSegment],
    strict_identity: bool = True,
) -> int:
    """Redo all committed changes from ``segments`` into ``target``.

    Parameters
    ----------
    target:
        The database to re-create state in.  Tables named in the log must
        exist with schemas identical to the source's, and must be empty of
        conflicting state (recovery is a full-history replay).
    segments:
        Archived log segments in order.
    strict_identity:
        Enforce product/version/format compatibility (the realistic
        behaviour).  Tests can disable it to isolate other failure modes.

    Returns the number of data changes applied.
    """
    segments = list(segments)
    if strict_identity:
        for segment in segments:
            require_compatible(segment, target.product, target.product_version)

    all_records = [record for segment in segments for record in segment.records]
    for first, second in zip(all_records, all_records[1:]):
        if second.lsn <= first.lsn:
            raise RecoveryError(
                f"log records out of order: LSN {second.lsn} after {first.lsn}"
            )

    committed = committed_txn_ids(all_records)
    applied = 0
    for record in all_records:
        if not record.is_data_change() or record.txn_id not in committed:
            continue
        if record.table is None or record.row_id is None:
            raise RecoveryError(f"malformed data-change record at LSN {record.lsn}")
        if not target.has_table(record.table):
            raise RecoveryError(
                f"log references table {record.table!r} which does not exist "
                "in the recovery target (schemas must match exactly)"
            )
        table = target.table(record.table)
        try:
            if record.kind is LogRecordKind.INSERT:
                assert record.after is not None
                table.redo_insert(record.row_id, record.after)
            elif record.kind is LogRecordKind.UPDATE:
                assert record.after is not None
                table.redo_update(record.row_id, record.after)
            else:
                table.redo_delete(record.row_id)
        except RecoveryError:
            raise
        except Exception as exc:
            raise RecoveryError(
                f"redo failed at LSN {record.lsn} "
                f"({record.kind.value} on {record.table!r}): {exc}"
            ) from exc
        applied += 1
    return applied


def clone_schemas(source: Database, target: Database) -> None:
    """Create every source table in ``target`` with an identical schema.

    Convenience for setting up a recovery target / hot standby; raises
    :class:`RecoveryError` if a table already exists with a diverging shape.
    """
    for table in source.tables():
        if target.has_table(table.name):
            diff = diff_schemas(table.schema, target.table(table.name).schema)
            if not diff.identical:
                raise RecoveryError(
                    f"target already has table {table.name!r} with a "
                    f"different schema: {diff}"
                )
            continue
        target.create_table(table.schema)

"""Secondary indexes: hash (equality) and B-tree (equality + range).

Indexes map a single column's value to the :class:`RowId`\\ s holding it.
The B-tree is implemented as a sorted array with bisection — the asymptotics
the experiments need (logarithmic probes, ordered range scans) without the
node machinery.  Maintenance and probe costs are charged to the virtual
clock here, so any code path that touches an index pays for it.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Any, Iterator

from ..clock import VirtualClock
from ..errors import ConstraintError, StorageError
from ..obs.metrics import MetricsLike, MetricsRegistry
from .costs import CostModel
from .rows import RowId


class Index(ABC):
    """Common behaviour of the engine's index kinds."""

    #: Set by subclasses: whether this index supports ordered range scans.
    supports_range: bool = False

    def __init__(
        self,
        name: str,
        column: str,
        clock: VirtualClock,
        costs: CostModel,
        unique: bool = False,
        metrics: MetricsLike | None = None,
    ) -> None:
        self.name = name
        self.column = column
        self.unique = unique
        self._clock = clock
        self._costs = costs
        self._num_entries = 0
        if metrics is None:
            metrics = MetricsRegistry()
        self._metrics = metrics
        self._m_probes = metrics.counter("engine.index.probe")

    @property
    def probes(self) -> int:
        """How many times this index was probed (lookups + range scans)."""
        return int(self._m_probes.value)

    @property
    def num_entries(self) -> int:
        return self._num_entries

    # ----------------------------------------------------------- maintenance
    def insert(self, key: Any, row_id: RowId) -> None:
        self._clock.advance(self._costs.index_insert)
        if self.unique and self._contains_key(key):
            raise ConstraintError(
                f"unique index {self.name!r} already contains key {key!r}"
            )
        self._insert(key, row_id)
        self._num_entries += 1

    def delete(self, key: Any, row_id: RowId) -> None:
        self._clock.advance(self._costs.index_delete)
        self._delete(key, row_id)
        self._num_entries -= 1

    # ----------------------------------------------------------------- probes
    def lookup(self, key: Any) -> list[RowId]:
        """Return the RowIds for ``key`` (empty list if absent)."""
        matches = self._lookup(key)
        self._m_probes.inc()
        self._clock.advance(self._costs.index_lookup * max(1, len(matches)))
        return matches

    def range_scan(self, low: Any, high: Any,
                   include_low: bool = True, include_high: bool = True) -> Iterator[RowId]:
        """Ordered scan of keys in ``[low, high]`` (B-tree only)."""
        raise StorageError(f"index {self.name!r} does not support range scans")

    # ------------------------------------------------------------- subclasses
    @abstractmethod
    def _insert(self, key: Any, row_id: RowId) -> None: ...

    @abstractmethod
    def _delete(self, key: Any, row_id: RowId) -> None: ...

    @abstractmethod
    def _lookup(self, key: Any) -> list[RowId]: ...

    @abstractmethod
    def _contains_key(self, key: Any) -> bool: ...

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = type(self).__name__
        uniq = " UNIQUE" if self.unique else ""
        return f"{kind}({self.name!r} ON {self.column}{uniq}, {self._num_entries} entries)"


class HashIndex(Index):
    """Equality-only index backed by a dict of key -> RowId list."""

    supports_range = False

    def __init__(self, name: str, column: str, clock: VirtualClock,
                 costs: CostModel, unique: bool = False,
                 metrics: MetricsLike | None = None) -> None:
        super().__init__(name, column, clock, costs, unique, metrics)
        self._buckets: dict[Any, list[RowId]] = {}

    def _insert(self, key: Any, row_id: RowId) -> None:
        self._buckets.setdefault(key, []).append(row_id)

    def _delete(self, key: Any, row_id: RowId) -> None:
        bucket = self._buckets.get(key)
        if not bucket or row_id not in bucket:
            raise StorageError(
                f"index {self.name!r}: entry ({key!r}, {row_id}) not found"
            )
        bucket.remove(row_id)
        if not bucket:
            del self._buckets[key]

    def _lookup(self, key: Any) -> list[RowId]:
        return list(self._buckets.get(key, ()))

    def _contains_key(self, key: Any) -> bool:
        return key in self._buckets


class BTreeIndex(Index):
    """Ordered index backed by a sorted (key, RowId) array with bisection."""

    supports_range = True

    def __init__(self, name: str, column: str, clock: VirtualClock,
                 costs: CostModel, unique: bool = False,
                 metrics: MetricsLike | None = None) -> None:
        super().__init__(name, column, clock, costs, unique, metrics)
        self._keys: list[Any] = []
        self._row_ids: list[RowId] = []

    def _insert(self, key: Any, row_id: RowId) -> None:
        position = bisect.bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._row_ids.insert(position, row_id)

    def _delete(self, key: Any, row_id: RowId) -> None:
        position = bisect.bisect_left(self._keys, key)
        while position < len(self._keys) and self._keys[position] == key:
            if self._row_ids[position] == row_id:
                del self._keys[position]
                del self._row_ids[position]
                return
            position += 1
        raise StorageError(f"index {self.name!r}: entry ({key!r}, {row_id}) not found")

    def _lookup(self, key: Any) -> list[RowId]:
        low = bisect.bisect_left(self._keys, key)
        high = bisect.bisect_right(self._keys, key)
        return self._row_ids[low:high]

    def _contains_key(self, key: Any) -> bool:
        position = bisect.bisect_left(self._keys, key)
        return position < len(self._keys) and self._keys[position] == key

    def estimate_range(self, low: Any, high: Any,
                       include_low: bool = True, include_high: bool = True) -> int:
        """Optimizer statistic: how many entries fall in the range.

        This models the histogram estimate a real optimizer consults and is
        deliberately free of clock charges — it is how the planner decides
        the paper's "indices may not be used by the query optimizer if the
        deltas form a significant portion of the table" behaviour (§3.1.1).
        """
        if low is None:
            start = 0
        else:
            start = (bisect.bisect_left if include_low else bisect.bisect_right)(
                self._keys, low
            )
        if high is None:
            stop = len(self._keys)
        else:
            stop = (bisect.bisect_right if include_high else bisect.bisect_left)(
                self._keys, high
            )
        return max(0, stop - start)

    def range_scan(self, low: Any, high: Any,
                   include_low: bool = True, include_high: bool = True) -> Iterator[RowId]:
        if low is None:
            start = 0
        else:
            start = (bisect.bisect_left if include_low else bisect.bisect_right)(
                self._keys, low
            )
        if high is None:
            stop = len(self._keys)
        else:
            stop = (bisect.bisect_right if include_high else bisect.bisect_left)(
                self._keys, high
            )
        count = max(0, stop - start)
        self._m_probes.inc()
        self._clock.advance(self._costs.index_lookup * max(1, count))
        for position in range(start, stop):
            yield self._row_ids[position]

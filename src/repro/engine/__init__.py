"""Mini relational engine: the reproduction's source-system substrate.

Public surface:

* :class:`Database`, :class:`Session` — instance + SQL entry point
* :class:`TableSchema`, :class:`Column`, datatypes — schema definition
* :class:`CostModel` — the calibrated virtual-cost constants
* triggers, WAL/archive segments, utilities, snapshots, remote links,
  recovery — the substrates the four extraction methods run on
"""

from .buffer import DEFAULT_POOL_PAGES, BufferPool
from .costs import DEFAULT_COST_MODEL, CostModel
from .database import Database
from .recovery import clone_schemas, recover_from_archive
from .remote import LinkKind, RemoteSession, open_remote
from .rows import RowId
from .schema import Column, SchemaDiff, TableSchema, diff_schemas
from .session import Session
from .snapshots import Snapshot, take_snapshot
from .table import InsertMode, Table
from .transactions import Transaction, TransactionManager, TxnState
from .triggers import (
    Trigger,
    TriggerContext,
    TriggerEvent,
    TriggerSet,
    TriggerTiming,
)
from .types import FLOAT, INTEGER, TIMESTAMP, CharType, DataType, char
from .utilities import (
    AsciiFile,
    ExportDump,
    ascii_dump_rows,
    ascii_dump_table,
    ascii_load,
    export_table,
    import_dump,
)
from .wal import LOG_FORMAT_VERSION, LogManager, LogRecord, LogRecordKind, LogSegment

__all__ = [
    "BufferPool",
    "DEFAULT_POOL_PAGES",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Database",
    "Session",
    "Table",
    "InsertMode",
    "TableSchema",
    "Column",
    "SchemaDiff",
    "diff_schemas",
    "RowId",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "Trigger",
    "TriggerContext",
    "TriggerEvent",
    "TriggerSet",
    "TriggerTiming",
    "DataType",
    "CharType",
    "INTEGER",
    "FLOAT",
    "TIMESTAMP",
    "char",
    "ExportDump",
    "AsciiFile",
    "export_table",
    "import_dump",
    "ascii_dump_rows",
    "ascii_dump_table",
    "ascii_load",
    "Snapshot",
    "take_snapshot",
    "LinkKind",
    "RemoteSession",
    "open_remote",
    "LogManager",
    "LogRecord",
    "LogRecordKind",
    "LogSegment",
    "LOG_FORMAT_VERSION",
    "recover_from_archive",
    "clone_schemas",
]

"""Columnar group-apply: commit conflict components from batch buffers.

:class:`ColumnarApplier` is the batched hot path the integrator's
columnar mode drives.  Per conflict component it materialises each
touched table **once** into a :class:`~repro.columnar.batch.ColumnBatch`
image (one costed scan, where the row path re-scans per statement),
replays every statement of the component against the image with
compiled kernels (:mod:`repro.columnar.kernels`), and commits through
the engine's batch DML entry points — which perform the identical
logical mutations (validation, unique checks, index maintenance,
triggers, undo, bit-identical WAL payloads) at the columnar CPU factor.

**Parity invariant.**  For every statement the applier either (a)
replays it columnar with kernels that are closure-compiled from the same
AST the row path interprets, writing results back into the image so
later statements read their writes, or (b) hits a
:class:`~repro.columnar.kernels.CompileBarrier` / unsupported shape and
falls back to the original row path verbatim, invalidating the affected
image.  Either way the final table state is bit-for-bit the state the
row-at-a-time path produces — the property the columnar Hypothesis suite
pins with XOR-SHA256 state digests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..engine.session import Session
from ..engine.table import Table
from ..engine.transactions import Transaction
from ..errors import SqlAnalysisError
from ..sql import ast_nodes as ast
from ..sql.expressions import evaluate
from .batch import ColumnBatch
from .kernels import (
    CompileBarrier,
    KernelCache,
    compile_expression,
    compile_predicate,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.opdelta import OpDelta
    from ..semantics.planner import DeltaRule
    from ..warehouse.views import MaterializedView


class ColumnarApplier:
    """Applies transformed statements and view delta rules from batches."""

    def __init__(
        self,
        session: Session,
        kernels: KernelCache | None = None,
        plan_fingerprint: str = "",
    ) -> None:
        self._session = session
        self._db = session.database
        self._clock = self._db.clock
        self._costs = self._db.costs
        self.kernels = kernels if kernels is not None else KernelCache()
        #: Stamp of the certified plan set the rule kernels belong to;
        #: part of every view-kernel cache key.
        self.plan_fingerprint = plan_fingerprint
        #: Per-component table images, keyed by physical table name.
        self._images: dict[str, ColumnBatch] = {}
        # Cumulative stats (the integrator reports per-window deltas).
        self.statements = 0
        self.rows_batched = 0
        self.fallbacks = 0

    # ------------------------------------------------------------- lifecycle
    def begin_component(self) -> None:
        """Reset per-component state: images never outlive their component.

        Components are mutually independent and may be replayed on
        parallel lanes, so each one pays its own image scans.
        """
        self._images.clear()

    # ------------------------------------------------------------ mirror path
    def apply_mirror(
        self, statement: ast.Statement, txn: Transaction, cache_key: str
    ) -> int:
        """Replay one transformed statement on its mirror table.

        Returns the rows affected (matching the executor's Result).
        """
        try:
            if isinstance(statement, ast.InsertStmt) and statement.select is None:
                return self._mirror_insert(statement, txn, cache_key)
            if isinstance(statement, ast.UpdateStmt):
                return self._mirror_update(statement, txn, cache_key)
            if isinstance(statement, ast.DeleteStmt):
                return self._mirror_delete(statement, txn, cache_key)
        except CompileBarrier:
            pass
        return self._mirror_fallback(statement)

    def _dispatch(self) -> None:
        """Per-statement cost of dispatching a compiled batch program."""
        self.statements += 1
        self._clock.advance(self._costs.stmt_overhead * self._costs.columnar_cpu_factor)

    def _image(self, table: Table) -> ColumnBatch:
        image = self._images.get(table.name)
        if image is None:
            image = ColumnBatch.from_table(table)
            self._images[table.name] = image
        return image

    def _invalidate(self, table_name: str) -> None:
        self._images.pop(table_name, None)

    def _mirror_fallback(self, statement: ast.Statement) -> int:
        """Row-path replay of a statement the kernels cannot cover."""
        self.fallbacks += 1
        if statement.table is not None:
            self._invalidate(statement.table)
        result = self._session.execute_statement(statement)
        return result.rows_affected

    def _mirror_insert(
        self, stmt: ast.InsertStmt, txn: Transaction, cache_key: str
    ) -> int:
        table = self._db.table(stmt.table)

        def factory() -> tuple[tuple[Any, ...], ...]:
            # Literal rows compile to value closures over no columns;
            # volatile expressions barrier out to the row path here.
            return tuple(
                tuple(compile_expression(expr, {}) for expr in expr_row)
                for expr_row in stmt.rows
            )

        compiled_rows = self.kernels.get(
            ("mirror-insert", stmt.table, cache_key), factory
        )
        self._dispatch()
        rows: list[tuple[Any, ...]] = []
        for closures in compiled_rows:
            literal_row = tuple(closure((), 0) for closure in closures)
            if stmt.columns is None:
                rows.append(literal_row)
            else:
                if len(stmt.columns) != len(literal_row):
                    raise SqlAnalysisError(
                        f"INSERT names {len(stmt.columns)} columns but "
                        f"supplies {len(literal_row)} values"
                    )
                rows.append(
                    table.schema.values_from_mapping(
                        dict(zip(stmt.columns, literal_row))
                    )
                )
        row_ids = table.insert_batch(txn, rows)
        self.rows_batched += len(rows)
        image = self._images.get(table.name)
        if image is not None:
            for row_id in row_ids:
                # Read back the stored values (validated and stamped).
                image.append(table.read(row_id), row_id=row_id)
        return len(rows)

    def _mirror_update(
        self, stmt: ast.UpdateStmt, txn: Transaction, cache_key: str
    ) -> int:
        table = self._db.table(stmt.table)
        image = self._image(table)
        qualifiers = frozenset({stmt.table})

        def factory() -> tuple[Any, tuple[tuple[str, Any], ...]]:
            predicate = compile_predicate(stmt.where, image.layout, qualifiers)
            assignments = tuple(
                (a.column, compile_expression(a.expr, image.layout, qualifiers))
                for a in stmt.assignments
            )
            return predicate, assignments

        predicate, assignments = self.kernels.get(
            ("mirror-update", stmt.table, cache_key), factory
        )
        self._dispatch()
        cols = image.columns
        valid = image.valid
        matched = [
            pos for pos in range(len(valid)) if valid[pos] and predicate(cols, pos)
        ]
        updates = [
            (
                image.row_ids[pos],
                {column: kernel(cols, pos) for column, kernel in assignments},
            )
            for pos in matched
        ]
        results = table.update_batch(txn, updates)
        for pos, (_old, new_values) in zip(matched, results):
            image.set_row(pos, new_values)
        self.rows_batched += len(matched)
        return len(matched)

    def _mirror_delete(
        self, stmt: ast.DeleteStmt, txn: Transaction, cache_key: str
    ) -> int:
        table = self._db.table(stmt.table)
        image = self._image(table)
        qualifiers = frozenset({stmt.table})
        predicate = self.kernels.get(
            ("mirror-delete", stmt.table, cache_key),
            lambda: compile_predicate(stmt.where, image.layout, qualifiers),
        )
        self._dispatch()
        cols = image.columns
        valid = image.valid
        matched = [
            pos for pos in range(len(valid)) if valid[pos] and predicate(cols, pos)
        ]
        table.delete_batch(txn, [image.row_ids[pos] for pos in matched])
        for pos in matched:
            image.mark_deleted(pos)
        self.rows_batched += len(matched)
        return len(matched)

    # -------------------------------------------------------------- view path
    def apply_view(
        self,
        view: "MaterializedView",
        op: "OpDelta",
        txn: Transaction,
        rule: "DeltaRule | None",
    ) -> None:
        """Maintain one SPJ view from an op through compiled rule kernels.

        Deterministic OP_ONLY / projected-insert rules run columnar;
        dynamic rules, before-image paths, joins and anything the
        compiler barriers on take the original row path unchanged.
        """
        if op.table != view.definition.base_table:
            return
        from ..core.opdelta import OpKind

        if (
            rule is None
            or rule.action.value in ("dynamic", "source-query")
            or rule.needs_before_image
            or view.definition.join is not None
        ):
            self._view_fallback(view, op, txn, rule)
            return
        stmt = op.statement
        cache_key = op.statement_text
        try:
            if (
                op.kind is OpKind.INSERT
                and isinstance(stmt, ast.InsertStmt)
                and stmt.select is None
            ):
                self._view_insert(view, stmt, txn)
            elif isinstance(stmt, ast.UpdateStmt):
                self._view_rewrite_update(view, stmt, txn, cache_key)
            elif isinstance(stmt, ast.DeleteStmt):
                self._view_rewrite_delete(view, stmt, txn, cache_key)
            else:
                self._view_fallback(view, op, txn, rule)
                return
        except CompileBarrier:
            self._view_fallback(view, op, txn, rule)
            return
        view.note_columnar_refresh()

    def _view_fallback(
        self,
        view: "MaterializedView",
        op: "OpDelta",
        txn: Transaction,
        rule: "DeltaRule | None",
    ) -> None:
        """Hybrid-plan barrier: the row path maintains the view for this op."""
        self.fallbacks += 1
        self._invalidate(view.definition.name)
        view.apply_operation(op, txn, rule=rule)

    def _view_insert(
        self, view: "MaterializedView", stmt: ast.InsertStmt, txn: Transaction
    ) -> None:
        base_columns = view.base_columns
        base_layout = {name: slot for slot, name in enumerate(base_columns)}

        def factory() -> tuple[Any, tuple[int, ...]]:
            qualify = compile_predicate(view.predicate, base_layout)
            project = tuple(
                base_layout[name] for name in view.definition.columns
            )
            return qualify, project

        qualify, project = self.kernels.get(
            ("view-insert", view.definition.name, self.plan_fingerprint),
            factory,
        )
        self._dispatch()
        # Base rows exactly as the row path computes them (same evaluator,
        # same width check, same columns mapping with NULL for absences).
        base_rows: list[tuple[Any, ...]] = []
        for expr_row in stmt.rows:
            values = tuple(evaluate(expr, {}) for expr in expr_row)
            if stmt.columns is not None:
                mapping = dict(zip(stmt.columns, values))
                base_rows.append(
                    tuple(mapping.get(name) for name in base_columns)
                )
            elif len(values) != len(base_columns):
                raise CompileBarrier("INSERT width mismatch: row path raises")
            else:
                base_rows.append(values)
        batch = ColumnBatch.from_rows(base_columns, base_rows)
        cols = batch.columns
        projected = [
            tuple(cols[slot][pos] for slot in project)
            for pos in range(batch.num_rows)
            if qualify(cols, pos)
        ]
        if not projected:
            return
        row_ids = view.table.insert_batch(txn, projected)
        self.rows_batched += len(projected)
        image = self._images.get(view.definition.name)
        if image is not None:
            for row_id in row_ids:
                image.append(view.table.read(row_id), row_id=row_id)

    def _view_rewrite_update(
        self,
        view: "MaterializedView",
        stmt: ast.UpdateStmt,
        txn: Transaction,
        cache_key: str,
    ) -> None:
        image = self._image(view.table)
        qualifiers = frozenset({view.definition.name, stmt.table})

        def factory() -> tuple[Any, tuple[tuple[str, Any], ...]]:
            narrowed = view.narrowed(stmt.where)
            predicate = compile_predicate(narrowed, image.layout, qualifiers)
            assignments = tuple(
                (a.column, compile_expression(a.expr, image.layout, qualifiers))
                for a in stmt.assignments
            )
            return predicate, assignments

        predicate, assignments = self.kernels.get(
            (
                "view-update",
                view.definition.name,
                self.plan_fingerprint,
                cache_key,
            ),
            factory,
        )
        self._dispatch()
        cols = image.columns
        valid = image.valid
        matched = [
            pos for pos in range(len(valid)) if valid[pos] and predicate(cols, pos)
        ]
        updates = [
            (
                image.row_ids[pos],
                {column: kernel(cols, pos) for column, kernel in assignments},
            )
            for pos in matched
        ]
        results = view.table.update_batch(txn, updates)
        for pos, (_old, new_values) in zip(matched, results):
            image.set_row(pos, new_values)
        self.rows_batched += len(matched)

    def _view_rewrite_delete(
        self,
        view: "MaterializedView",
        stmt: ast.DeleteStmt,
        txn: Transaction,
        cache_key: str,
    ) -> None:
        image = self._image(view.table)
        qualifiers = frozenset({view.definition.name, stmt.table})
        predicate = self.kernels.get(
            (
                "view-delete",
                view.definition.name,
                self.plan_fingerprint,
                cache_key,
            ),
            lambda: compile_predicate(
                view.narrowed(stmt.where), image.layout, qualifiers
            ),
        )
        self._dispatch()
        cols = image.columns
        valid = image.valid
        matched = [
            pos for pos in range(len(valid)) if valid[pos] and predicate(cols, pos)
        ]
        view.table.delete_batch(txn, [image.row_ids[pos] for pos in matched])
        for pos in matched:
            image.mark_deleted(pos)
        self.rows_batched += len(matched)

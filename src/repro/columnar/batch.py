"""ColumnBatch: parallel per-column arrays with a per-window row-id space.

The row-at-a-time apply path materialises a ``dict`` environment per row
per statement; a :class:`ColumnBatch` instead holds one Python list per
column, a validity vector (live / deleted-in-window), derived null masks,
and — when the batch mirrors an engine table — the physical
:class:`~repro.engine.rows.RowId` of each position.  Positions (indexes
into the parallel arrays) form the *per-window row-id space*: every
compiled kernel addresses rows by position, and converters map positions
back to physical row ids at commit time.

Batches are built either from an engine table (one costed scan — the
single scan then serves every statement of a conflict component) or from
the literal rows of shippable Op-Delta windows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.rows import RowId
    from ..engine.table import Table


class ColumnBatch:
    """Parallel arrays per column, a validity vector, and row ids."""

    __slots__ = ("column_names", "layout", "columns", "valid", "row_ids")

    def __init__(self, column_names: Sequence[str]) -> None:
        self.column_names: tuple[str, ...] = tuple(column_names)
        #: column name -> slot in :attr:`columns` (bound once; kernels
        #: capture slots at compile time, never per row).
        self.layout: dict[str, int] = {
            name: slot for slot, name in enumerate(self.column_names)
        }
        self.columns: list[list[Any]] = [[] for _ in self.column_names]
        #: Per-position liveness: False once deleted within the window.
        self.valid: list[bool] = []
        #: Physical row id per position (None for rows not yet stored).
        self.row_ids: list["RowId | None"] = []

    # ------------------------------------------------------------ construction
    @classmethod
    def from_rows(
        cls,
        column_names: Sequence[str],
        rows: Iterable[Sequence[Any]],
        row_ids: Iterable["RowId | None"] | None = None,
    ) -> "ColumnBatch":
        """Build a batch from positional rows (no cost charges)."""
        batch = cls(column_names)
        if row_ids is None:
            for values in rows:
                batch.append(values)
        else:
            for values, row_id in zip(rows, row_ids):
                batch.append(values, row_id=row_id)
        return batch

    @classmethod
    def from_table(cls, table: "Table") -> "ColumnBatch":
        """One costed scan of an engine table into column arrays.

        This is the only place the columnar path pays scan CPU: the
        resulting image then serves *every* statement of the component,
        where the row path re-scans per statement.
        """
        batch = cls(table.schema.column_names)
        columns = batch.columns
        append_valid = batch.valid.append
        append_rid = batch.row_ids.append
        for row_id, values in table.scan():
            for slot, value in enumerate(values):
                columns[slot].append(value)
            append_valid(True)
            append_rid(row_id)
        return batch

    # ---------------------------------------------------------------- mutation
    def append(
        self, values: Sequence[Any], row_id: "RowId | None" = None
    ) -> int:
        """Append one row; returns its position (window row id)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row width {len(values)} does not match batch width "
                f"{len(self.columns)}"
            )
        for slot, value in enumerate(values):
            self.columns[slot].append(value)
        self.valid.append(True)
        self.row_ids.append(row_id)
        return len(self.valid) - 1

    def set_row(self, position: int, values: Sequence[Any]) -> None:
        """Overwrite a position with updated values (read-your-writes)."""
        for slot, value in enumerate(values):
            self.columns[slot][position] = value

    def mark_deleted(self, position: int) -> None:
        self.valid[position] = False

    # ------------------------------------------------------------------ access
    @property
    def num_rows(self) -> int:
        """All positions ever allocated in this window's row-id space."""
        return len(self.valid)

    @property
    def live_count(self) -> int:
        return sum(1 for alive in self.valid if alive)

    def live_positions(self) -> list[int]:
        """Live positions in physical (scan/append) order."""
        return [pos for pos, alive in enumerate(self.valid) if alive]

    def row(self, position: int) -> tuple[Any, ...]:
        return tuple(column[position] for column in self.columns)

    def column(self, name: str) -> list[Any]:
        return self.columns[self.layout[name]]

    def null_mask(self, name: str) -> list[bool]:
        """True where the named column is NULL (over all positions)."""
        return [value is None for value in self.columns[self.layout[name]]]

    def rows(self) -> list[tuple[Any, ...]]:
        """All live rows, in position order."""
        return [self.row(pos) for pos, alive in enumerate(self.valid) if alive]

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnBatch(columns={len(self.columns)}, rows={self.num_rows}, "
            f"live={self.live_count})"
        )


def batch_from_insert_rows(
    column_names: Sequence[str], literal_rows: Iterable[Mapping[str, Any]]
) -> ColumnBatch:
    """Convert evaluated INSERT rows (column->value mappings) to a batch."""
    batch = ColumnBatch(column_names)
    for mapping in literal_rows:
        batch.append(tuple(mapping.get(name) for name in column_names))
    return batch

"""Closure compilation of SQL expressions over column arrays.

:func:`compile_expression` walks an AST **once** and returns a closure
``(columns, position) -> value`` with every column reference bound to its
array slot at compile time.  Evaluating a predicate over a batch is then
a tight loop over positions — no per-row environment dicts, no per-node
``isinstance`` dispatch.

The compiled closures are contractually **bit-for-bit equivalent** to
:func:`repro.sql.expressions.evaluate`: they share the same helpers
(``sql_truth``, ``check_comparable``, ``like_regex``,
``apply_scalar_function``) and reproduce its Kleene three-valued logic,
short-circuit order, and error messages exactly.  Anything the compiler
cannot prove it can reproduce — volatile functions, unknown columns,
aggregates — raises :class:`CompileBarrier`, and the caller falls back
to the row-at-a-time path (which then raises or handles the case with
the original semantics).  A barrier is a routing decision, never an
error.

Compiled kernels are cached in a :class:`KernelCache` keyed by the plan
fingerprint plus ``(table, kind, view)`` — the window memo seam of
``integrate_batched`` — so repeated windows over the same certified plan
set reuse closures instead of recompiling.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Hashable, Sequence

from ..errors import SqlAnalysisError
from ..sql import ast_nodes as ast
from ..sql.expressions import (
    apply_scalar_function,
    check_comparable,
    like_regex,
    sql_truth,
)

#: A compiled scalar: (column arrays, position) -> SQL value.
CompiledScalar = Callable[[Sequence[Sequence[Any]], int], Any]

_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


class CompileBarrier(Exception):
    """The expression needs the row-at-a-time path (volatile, unknown...).

    Not an error: the caller routes the statement through the original
    evaluator, which reproduces the exact row-path behaviour (including
    any error the expression would raise there).
    """


def compile_expression(
    expr: ast.Expression,
    layout: dict[str, int],
    qualifiers: frozenset[str] = frozenset(),
) -> CompiledScalar:
    """Compile ``expr`` to a closure over column arrays.

    ``layout`` maps column names to array slots; ``qualifiers`` is the
    set of table names/aliases under which qualified references resolve
    to the same slots (matching the executor's row environments).
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda cols, i: value
    if isinstance(expr, ast.ColumnRef):
        if expr.table is not None and expr.table not in qualifiers:
            raise CompileBarrier(f"unresolvable qualifier {expr.table!r}")
        try:
            slot = layout[expr.name]
        except KeyError:
            raise CompileBarrier(f"unknown column {expr.name!r}") from None
        return lambda cols, i: cols[slot][i]
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, layout, qualifiers)
    if isinstance(expr, ast.UnaryOp):
        return _compile_unary(expr, layout, qualifiers)
    if isinstance(expr, ast.InList):
        return _compile_in_list(expr, layout, qualifiers)
    if isinstance(expr, ast.Between):
        return _compile_between(expr, layout, qualifiers)
    if isinstance(expr, ast.Like):
        return _compile_like(expr, layout, qualifiers)
    if isinstance(expr, ast.IsNull):
        inner = compile_expression(expr.expr, layout, qualifiers)
        if expr.negated:
            return lambda cols, i: inner(cols, i) is not None
        return lambda cols, i: inner(cols, i) is None
    if isinstance(expr, ast.FuncCall):
        return _compile_func(expr, layout, qualifiers)
    # Star, Aggregate, anything newer: the row path owns the diagnostics.
    raise CompileBarrier(f"cannot compile {type(expr).__name__}")


def compile_predicate(
    where: ast.Expression | None,
    layout: dict[str, int],
    qualifiers: frozenset[str] = frozenset(),
) -> Callable[[Sequence[Sequence[Any]], int], bool]:
    """Compile a WHERE clause to a position filter (SQL ``is_true``)."""
    if where is None:
        return lambda cols, i: True
    compiled = compile_expression(where, layout, qualifiers)
    return lambda cols, i: compiled(cols, i) is True


def _compile_binary(
    expr: ast.BinaryOp, layout: dict[str, int], qualifiers: frozenset[str]
) -> CompiledScalar:
    op = expr.op
    left = compile_expression(expr.left, layout, qualifiers)
    right = compile_expression(expr.right, layout, qualifiers)
    if op == "AND":

        def kleene_and(cols: Sequence[Sequence[Any]], i: int) -> Any:
            lv = left(cols, i)
            if lv is False:
                return False
            rv = right(cols, i)
            if rv is False:
                return False
            if lv is None or rv is None:
                return None
            return sql_truth(lv) and sql_truth(rv)

        return kleene_and
    if op == "OR":

        def kleene_or(cols: Sequence[Sequence[Any]], i: int) -> Any:
            lv = left(cols, i)
            if lv is True:
                return True
            rv = right(cols, i)
            if rv is True:
                return True
            if lv is None or rv is None:
                return None
            return sql_truth(lv) or sql_truth(rv)

        return kleene_or
    if op in _COMPARISONS:
        compare = _COMPARISONS[op]

        def comparison(cols: Sequence[Sequence[Any]], i: int) -> Any:
            lv = left(cols, i)
            rv = right(cols, i)
            if lv is None or rv is None:
                return None
            check_comparable(lv, rv, op)
            return compare(lv, rv)

        return comparison
    if op in _ARITHMETIC:
        arith = _ARITHMETIC[op]

        def arithmetic(cols: Sequence[Sequence[Any]], i: int) -> Any:
            lv = left(cols, i)
            rv = right(cols, i)
            if lv is None or rv is None:
                return None
            if not isinstance(lv, (int, float)) or not isinstance(
                rv, (int, float)
            ):
                raise SqlAnalysisError(
                    f"arithmetic {op!r} requires numbers, got {lv!r} and {rv!r}"
                )
            return arith(lv, rv)

        return arithmetic
    if op == "/":

        def division(cols: Sequence[Sequence[Any]], i: int) -> Any:
            lv = left(cols, i)
            rv = right(cols, i)
            if lv is None or rv is None:
                return None
            if not isinstance(lv, (int, float)) or not isinstance(
                rv, (int, float)
            ):
                raise SqlAnalysisError(
                    f"arithmetic '/' requires numbers, got {lv!r} and {rv!r}"
                )
            if rv == 0:
                raise SqlAnalysisError("division by zero")
            return lv / rv

        return division
    raise CompileBarrier(f"unknown binary operator {op!r}")


def _compile_unary(
    expr: ast.UnaryOp, layout: dict[str, int], qualifiers: frozenset[str]
) -> CompiledScalar:
    inner = compile_expression(expr.operand, layout, qualifiers)
    if expr.op == "NOT":

        def negate(cols: Sequence[Sequence[Any]], i: int) -> Any:
            value = inner(cols, i)
            if value is None:
                return None
            return not sql_truth(value)

        return negate
    if expr.op == "-":

        def minus(cols: Sequence[Sequence[Any]], i: int) -> Any:
            value = inner(cols, i)
            if value is None:
                return None
            if not isinstance(value, (int, float)):
                raise SqlAnalysisError(
                    f"unary minus requires a number, got {value!r}"
                )
            return -value

        return minus
    raise CompileBarrier(f"unknown unary operator {expr.op!r}")


def _compile_in_list(
    expr: ast.InList, layout: dict[str, int], qualifiers: frozenset[str]
) -> CompiledScalar:
    subject = compile_expression(expr.expr, layout, qualifiers)
    items = tuple(
        compile_expression(item, layout, qualifiers) for item in expr.items
    )
    negated = expr.negated

    def in_list(cols: Sequence[Sequence[Any]], i: int) -> Any:
        value = subject(cols, i)
        if value is None:
            return None
        saw_null = False
        for item in items:
            candidate = item(cols, i)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return not negated
        if saw_null:
            return None
        return negated

    return in_list


def _compile_between(
    expr: ast.Between, layout: dict[str, int], qualifiers: frozenset[str]
) -> CompiledScalar:
    subject = compile_expression(expr.expr, layout, qualifiers)
    low = compile_expression(expr.low, layout, qualifiers)
    high = compile_expression(expr.high, layout, qualifiers)
    negated = expr.negated

    def between(cols: Sequence[Sequence[Any]], i: int) -> Any:
        value = subject(cols, i)
        lo = low(cols, i)
        hi = high(cols, i)
        if value is None or lo is None or hi is None:
            return None
        check_comparable(value, lo, "BETWEEN")
        check_comparable(value, hi, "BETWEEN")
        result = lo <= value <= hi
        return (not result) if negated else result

    return between


def _compile_like(
    expr: ast.Like, layout: dict[str, int], qualifiers: frozenset[str]
) -> CompiledScalar:
    subject = compile_expression(expr.expr, layout, qualifiers)
    # Pattern is static in the AST: the regex compiles once per kernel.
    pattern = like_regex(expr.pattern)
    negated = expr.negated

    def like(cols: Sequence[Sequence[Any]], i: int) -> Any:
        value = subject(cols, i)
        if value is None:
            return None
        if not isinstance(value, str):
            raise SqlAnalysisError(f"LIKE requires a string, got {value!r}")
        matched = pattern.match(value) is not None
        return (not matched) if negated else matched

    return like


def _compile_func(
    expr: ast.FuncCall, layout: dict[str, int], qualifiers: frozenset[str]
) -> CompiledScalar:
    if expr.function in ast.VOLATILE_FUNCTIONS:
        # NOW()/RANDOM()/user need session context the batch does not
        # carry; pinned statements never contain them, so this is the
        # barrier that routes genuinely volatile ops to the row path.
        raise CompileBarrier(f"volatile function {expr.function}")
    name = expr.function
    args = tuple(
        compile_expression(arg, layout, qualifiers) for arg in expr.args
    )

    def func(cols: Sequence[Sequence[Any]], i: int) -> Any:
        return apply_scalar_function(name, [arg(cols, i) for arg in args])

    return func


class KernelCache:
    """Compiled-kernel cache over the ``(fingerprint, table, kind, view)``
    key space of the batched-apply memo seam.

    One instance lives on the integrator's columnar applier, so repeated
    windows over the same certified plan set (same fingerprint) reuse
    closures across calls instead of recompiling per window.
    """

    def __init__(self) -> None:
        self._kernels: dict[Hashable, Any] = {}
        self.compiles = 0
        self.hits = 0
        self.barriers = 0

    def get(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """The cached kernel for ``key``, compiling via ``factory`` once.

        A :class:`CompileBarrier` from the factory is cached too (as the
        barrier itself) so the row-path routing decision is also made
        only once per key.
        """
        try:
            kernel = self._kernels[key]
        except KeyError:
            self.compiles += 1
            try:
                kernel = factory()
            except CompileBarrier as barrier:
                kernel = barrier
            self._kernels[key] = kernel
        else:
            self.hits += 1
        if isinstance(kernel, CompileBarrier):
            self.barriers += 1
            raise kernel
        return kernel

    def __len__(self) -> int:
        return len(self._kernels)

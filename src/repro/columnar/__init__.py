"""Columnar hot path: batches, compiled kernels, group-apply.

The row-at-a-time apply path interprets every delta rule per row with
dict environments; this package executes them per **batch**:

* :mod:`~repro.columnar.batch` — :class:`ColumnBatch`, parallel arrays
  per column with null masks and a per-window row-id space, built from
  one engine-table scan or from shippable Op-Delta windows;
* :mod:`~repro.columnar.kernels` — closure compilation of the existing
  SQL AST into ``(columns, position) -> value`` kernels, cached once per
  ``(plan fingerprint, table, kind, view)``;
* :mod:`~repro.columnar.apply` — :class:`ColumnarApplier`, the columnar
  group-apply mode of the op-delta integrator, with row-path fallback
  barriers that preserve bit-for-bit state parity.
"""

# ``apply`` first: it pulls in ``repro.engine`` before anything touches
# ``repro.sql``, which keeps this package importable on its own (the SQL
# front end cannot initialise before the engine — see ``engine.remote``).
from .apply import ColumnarApplier
from .batch import ColumnBatch, batch_from_insert_rows
from .kernels import (
    CompileBarrier,
    KernelCache,
    compile_expression,
    compile_predicate,
)

__all__ = [
    "ColumnBatch",
    "ColumnarApplier",
    "CompileBarrier",
    "KernelCache",
    "batch_from_insert_rows",
    "compile_expression",
    "compile_predicate",
]

"""Reproduction of Ram & Do, "Extracting Delta for Incremental Data
Warehouse Maintenance" (ICDE 2000).

Layering (bottom-up):

* :mod:`repro.clock` / :mod:`repro.engine` — virtual-time mini DBMS substrate
* :mod:`repro.sql` — SQL front end (Op-Deltas are SQL statements)
* :mod:`repro.extraction` — the four value-delta methods of §3
* :mod:`repro.core` — **Op-Delta**, the paper's contribution (§4)
* :mod:`repro.warehouse` — delta integration and online maintenance
* :mod:`repro.transport`, :mod:`repro.sources`, :mod:`repro.workloads` —
  transport, COTS-integrated source architectures, synthetic workloads
* :mod:`repro.sim` — discrete-event kernel for the availability experiments
* :mod:`repro.bench` — the per-table/figure experiment harness
"""

from .clock import VirtualClock, format_duration

__version__ = "1.0.0"

__all__ = ["VirtualClock", "format_duration", "__version__"]

"""OLAP query streams for the availability experiments.

Builds deterministic arrival schedules of decision-support queries against
the warehouse.  Service times are measured (not assumed) by running each
distinct query once through the engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..engine.database import Database
from ..engine.session import Session
from ..warehouse.olap import OlapQuery, measure_query_cost


@dataclass(frozen=True)
class ScheduledQuery:
    """One query arrival in a stream."""

    arrival_ms: float
    query: OlapQuery


def fixed_cadence_stream(
    queries: list[OlapQuery],
    interarrival_ms: float,
    horizon_ms: float,
    seed: int = 7,
) -> list[ScheduledQuery]:
    """Round-robin-ish stream: one query every ``interarrival_ms``.

    The query picked at each arrival is seeded-random over the mix so the
    stream is deterministic but not trivially periodic.
    """
    rng = random.Random(seed)
    stream = []
    arrival = 0.0
    while arrival <= horizon_ms:
        stream.append(ScheduledQuery(arrival, rng.choice(queries)))
        arrival += interarrival_ms
    return stream


def measured_service_times(
    database: Database, session: Session, queries: list[OlapQuery], repeats: int = 1
) -> dict[str, float]:
    """Measure each query's virtual cost (averaged over ``repeats`` runs)."""
    costs: dict[str, float] = {}
    for query in queries:
        total = 0.0
        for _ in range(max(1, repeats)):
            total += measure_query_cost(database, session, query)
        costs[query.name] = total / max(1, repeats)
    return costs

"""Synthetic PARTS records (~100 bytes each, as in the paper's experiments).

The paper's workload is manufacturing data: a PARTS table of 100-byte
records, transactions sized 10..10,000 rows, timestamps maintained
natively.  :func:`parts_schema` defines the table; :class:`PartsGenerator`
produces deterministic, seeded rows.

``part_ref`` duplicates the primary key in an **unindexed** column so the
workloads can select exactly *n* rows while forcing the table scans the
paper describes ("Each update transaction performs a table scan...").
"""

from __future__ import annotations

import random
from typing import Iterator

from ..engine.schema import Column, TableSchema
from ..engine.types import FLOAT, INTEGER, TIMESTAMP, char

STATUSES = ("new", "active", "revised", "shipped", "retired")


def parts_schema(name: str = "parts") -> TableSchema:
    """The PARTS table: 9 columns, 112-byte fixed records."""
    return TableSchema(
        name,
        [
            Column("part_id", INTEGER, nullable=False),
            Column("part_ref", INTEGER, nullable=False),  # unindexed PK copy
            Column("part_no", char(12), nullable=False),
            Column("description", char(40)),
            Column("status", char(10), nullable=False),
            Column("quantity", INTEGER, nullable=False),
            Column("price", FLOAT, nullable=False),
            Column("last_modified", TIMESTAMP),
            Column("supplier_id", INTEGER, nullable=False),
        ],
        primary_key="part_id",
    )


def suppliers_schema(name: str = "suppliers") -> TableSchema:
    """A small dimension table for join views and OLAP joins."""
    return TableSchema(
        name,
        [
            Column("supplier_id", INTEGER, nullable=False),
            Column("supplier_name", char(24), nullable=False),
            Column("region", char(12), nullable=False),
        ],
        primary_key="supplier_id",
    )


def strip_timestamp(schema: TableSchema, rows) -> list[tuple]:
    """Drop the timestamp column from rows (sorted), for state comparisons.

    Last-modified stamps are assigned by each database's own clock, so two
    stores holding the same logical data differ in that column; comparisons
    of logical content ignore it.
    """
    if schema.timestamp_column is None:
        return sorted(tuple(row) for row in rows)
    position = schema.column_index(schema.timestamp_column)
    return sorted(
        tuple(value for index, value in enumerate(row) if index != position)
        for row in rows
    )


class PartsGenerator:
    """Deterministic part-row generator."""

    def __init__(self, seed: int = 20000229, num_suppliers: int = 20) -> None:
        self._rng = random.Random(seed)
        self.num_suppliers = num_suppliers

    def row(self, part_id: int, timestamp: float | None = None) -> tuple:
        """One PARTS row with the given key."""
        rng = self._rng
        return (
            part_id,
            part_id,
            f"PN-{part_id:08d}",
            f"part {part_id} {rng.choice('ABCDEF') * rng.randint(3, 8)}",
            rng.choice(STATUSES),
            rng.randint(0, 999),
            round(rng.uniform(0.5, 5000.0), 2),
            timestamp,
            rng.randrange(self.num_suppliers),
        )

    def rows(self, count: int, start_id: int = 0) -> Iterator[tuple]:
        for part_id in range(start_id, start_id + count):
            yield self.row(part_id)

    def supplier_rows(self) -> Iterator[tuple]:
        regions = ("NW", "SW", "NE", "SE", "EU", "APAC")
        for supplier_id in range(self.num_suppliers):
            yield (
                supplier_id,
                f"Supplier {supplier_id:03d}",
                regions[supplier_id % len(regions)],
            )

"""OLTP transaction workloads with controlled transaction sizes.

The paper's §3/§4 experiments vary "the size of transaction (number of
affected records)" from 10 to 10,000 against a 100,000-row PARTS table,
measuring per-transaction response time.  :class:`OltpWorkload` reproduces
that shape:

* ``run_insert(n)`` — one transaction inserting *n* fresh rows (a single
  array-insert statement, the way an application loads a batch);
* ``run_update(n)`` / ``run_delete(n)`` — one transaction whose predicate
  selects exactly *n* rows **via the unindexed** ``part_ref`` column, so
  the statement performs the table scan the paper describes;
* the table is topped back up after deletes (untimed) so "the size of the
  source table remains constant".

The workload tracks the live id range itself: deletes always remove the
oldest ``n`` ids and refills append fresh ids at the tail, so every
predicate range is dense by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.database import Database
from ..engine.session import Session
from ..engine.table import InsertMode
from ..errors import ReproError
from ..sql import ast_nodes as ast
from .records import PartsGenerator, parts_schema

#: The paper's transaction sizes (Figures 2-3, Table 4).
PAPER_TXN_SIZES = (10, 100, 1_000, 10_000)

#: The paper's source-table size for those experiments.
PAPER_TABLE_ROWS = 100_000


@dataclass
class TxnResult:
    """One measured transaction."""

    kind: str
    size: int
    rows_affected: int
    response_ms: float


class OltpWorkload:
    """Drives sized transactions against a PARTS table."""

    def __init__(
        self,
        database: Database,
        session: Session | None = None,
        table_name: str = "parts",
        seed: int = 42,
    ) -> None:
        self.database = database
        self.table_name = table_name
        self.session = session if session is not None else database.internal_session()
        self.generator = PartsGenerator(seed=seed)
        self._next_id = 0   # next fresh id to hand out
        self._min_live = 0  # oldest live id (deletes consume from here)
        self._steady_rows: int | None = None

    # ------------------------------------------------------------------- setup
    def create_table(self, auto_timestamp: bool = True) -> None:
        self.database.create_table(
            parts_schema(self.table_name), auto_timestamp=auto_timestamp
        )

    def populate(self, rows: int) -> None:
        """Fill the table (untimed path: direct bulk inserts, no statements)."""
        table = self.database.table(self.table_name)
        txn = self.database.begin()
        for row in self.generator.rows(rows, start_id=self._next_id):
            table.insert(txn, row, mode=InsertMode.BULK_INTERNAL)
        self.database.commit(txn)
        self._next_id += rows
        if self._steady_rows is None:
            self._steady_rows = table.num_rows

    def top_up(self) -> int:
        """Restore the table to its steady-state size after deletes."""
        if self._steady_rows is None:
            return 0
        missing = self._steady_rows - self.database.table(self.table_name).num_rows
        if missing > 0:
            self.populate(missing)
        return max(0, missing)

    @property
    def live_rows(self) -> int:
        return self.database.table(self.table_name).num_rows

    # -------------------------------------------------------------- transactions
    def run_insert(self, size: int) -> TxnResult:
        """One transaction: a single ``size``-row array INSERT statement."""
        rows = [self.generator.row(self._next_id + i) for i in range(size)]
        self._next_id += size
        statement = ast.InsertStmt(
            self.table_name,
            None,
            rows=tuple(
                tuple(ast.Literal(value) for value in row) for row in rows
            ),
        )
        clock = self.database.clock
        with clock.stopwatch() as watch:
            self.session.execute_statement(statement)
        return TxnResult("insert", size, size, watch.elapsed)

    def run_update(self, size: int, assignment: str = "status = 'revised'") -> TxnResult:
        """One UPDATE transaction touching exactly ``size`` rows via a scan."""
        low, high = self._live_prefix(size)
        sql = (
            f"UPDATE {self.table_name} SET {assignment} "
            f"WHERE part_ref >= {low} AND part_ref < {high}"
        )
        clock = self.database.clock
        with clock.stopwatch() as watch:
            result = self.session.execute(sql)
        self._check_touched(result.rows_affected, size, "update")
        return TxnResult("update", size, result.rows_affected, watch.elapsed)

    def run_delete(self, size: int, top_up: bool = True) -> TxnResult:
        """One DELETE transaction removing exactly ``size`` rows via a scan."""
        low, high = self._live_prefix(size)
        sql = (
            f"DELETE FROM {self.table_name} "
            f"WHERE part_ref >= {low} AND part_ref < {high}"
        )
        clock = self.database.clock
        with clock.stopwatch() as watch:
            result = self.session.execute(sql)
        self._check_touched(result.rows_affected, size, "delete")
        self._min_live = high
        outcome = TxnResult("delete", size, result.rows_affected, watch.elapsed)
        if top_up:
            self.top_up()
        return outcome

    def run_mixed(self, size: int) -> list[TxnResult]:
        """The paper's trio at one size: insert, update, delete."""
        return [self.run_insert(size), self.run_update(size), self.run_delete(size)]

    # ----------------------------------------------------------------- plumbing
    def _live_prefix(self, size: int) -> tuple[int, int]:
        if self._next_id - self._min_live < size:
            raise ReproError(
                f"only {self._next_id - self._min_live} live ids; cannot "
                f"touch {size}"
            )
        return self._min_live, self._min_live + size

    @staticmethod
    def _check_touched(actual: int, wanted: int, kind: str) -> None:
        if actual != wanted:
            raise ReproError(
                f"{kind} touched {actual} rows, wanted {wanted} (table state "
                "diverged from the workload's bookkeeping)"
            )

"""Synthetic workloads: PARTS records, sized OLTP transactions, OLAP streams."""

from .oltp import PAPER_TABLE_ROWS, PAPER_TXN_SIZES, OltpWorkload, TxnResult
from .queries import ScheduledQuery, fixed_cadence_stream, measured_service_times
from .records import PartsGenerator, parts_schema, strip_timestamp, suppliers_schema

__all__ = [
    "OltpWorkload",
    "TxnResult",
    "PAPER_TXN_SIZES",
    "PAPER_TABLE_ROWS",
    "PartsGenerator",
    "parts_schema",
    "suppliers_schema",
    "strip_timestamp",
    "ScheduledQuery",
    "fixed_cadence_stream",
    "measured_service_times",
]

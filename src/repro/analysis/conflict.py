"""Transaction conflict graph over captured Op-Delta transactions.

Two transactions *conflict* when any statement of one fails to commute
with any statement of the other (see :func:`repro.analysis.safety.commutes`).
Non-conflicting transactions can be applied to the warehouse in either
order — or concurrently — without changing the final state, which is what
lets the scheduler overlap delta application instead of serialising the
whole drain.

The graph's connected components are the unit of parallelism: transactions
inside a component must keep their capture order, components themselves
are mutually independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.opdelta import OpDeltaTransaction
from ..obs.context import ambient_metrics
from ..obs.metrics import NULL_REGISTRY, MetricsLike
from .rwsets import StatementFootprint
from .safety import commutes, op_footprint


def transactions_conflict(
    a: Sequence[StatementFootprint],
    b: Sequence[StatementFootprint],
    key_columns: Mapping[str, str] | None = None,
    *,
    structural: bool = True,
) -> bool:
    """Whether two transactions' statement footprints fail to commute.

    ``structural=False`` disables the structural-disjointness widening of
    the commutativity prover (see :mod:`repro.analysis.safety`).
    """
    return any(
        not commutes(fa, fb, key_columns, structural=structural)
        for fa in a
        for fb in b
    )


@dataclass(frozen=True)
class ConflictGraph:
    """Pairwise conflicts between captured transactions.

    ``components`` groups transaction ids into connected components, each
    listed in original capture order; singleton components are transactions
    that conflict with nothing.
    """

    txn_ids: tuple[int, ...]
    edges: tuple[tuple[int, int], ...]
    components: tuple[tuple[int, ...], ...]

    @property
    def component_count(self) -> int:
        return len(self.components)

    @property
    def largest_component(self) -> int:
        return max((len(c) for c in self.components), default=0)

    def component_of(self, txn_id: int) -> tuple[int, ...]:
        for component in self.components:
            if txn_id in component:
                return component
        raise KeyError(f"transaction {txn_id} is not in the graph")


def build_conflict_graph(
    groups: Sequence[OpDeltaTransaction],
    *,
    table_columns: Mapping[str, Sequence[str]] | None = None,
    key_columns: Mapping[str, str] | None = None,
    metrics: MetricsLike | None = None,
    structural: bool = True,
) -> ConflictGraph:
    """Build the conflict graph for a batch of captured transactions.

    ``table_columns``/``key_columns`` feed the footprint extractor and the
    commutativity check (see :mod:`repro.analysis.safety`); supplying them
    sharpens the analysis, omitting them only makes it more conservative.
    ``structural=False`` runs the pre-widening commutativity prover, which
    is how the certify experiment measures the parallelism delta.
    """
    registry = metrics if metrics is not None else (ambient_metrics() or NULL_REGISTRY)
    # Time-dependent statements are analyzed in their *pinned* form: the
    # integrator replays them with the capture timestamp substituted, so
    # their replay really is deterministic and reordering them is judged on
    # the pinned text.  Truly volatile statements stay volatile and
    # therefore conflict with everything.  Ops captured with before images
    # are marked for image replay, which restricts the commutativity
    # proofs to disjoint-row-set arguments (see ``safety.op_footprint``).
    footprints = [
        [op_footprint(op, table_columns) for op in g.operations]
        for g in groups
    ]
    txn_ids = tuple(g.txn_id for g in groups)
    parent = list(range(len(groups)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    edges: list[tuple[int, int]] = []
    for i in range(len(groups)):
        for j in range(i + 1, len(groups)):
            if transactions_conflict(
                footprints[i], footprints[j], key_columns,
                structural=structural,
            ):
                edges.append((txn_ids[i], txn_ids[j]))
                root_i, root_j = find(i), find(j)
                if root_i != root_j:
                    parent[root_j] = root_i
    by_root: dict[int, list[int]] = {}
    for i in range(len(groups)):
        by_root.setdefault(find(i), []).append(txn_ids[i])
    components = tuple(
        tuple(members) for _, members in sorted(by_root.items())
    )
    graph = ConflictGraph(
        txn_ids=txn_ids, edges=tuple(edges), components=components
    )
    registry.counter("analysis.conflict.edges").inc(len(edges))
    registry.gauge("analysis.conflict.components").set(len(components))
    registry.gauge("analysis.conflict.largest_component").set(
        graph.largest_component
    )
    return graph


def parallel_order(
    groups: Sequence[OpDeltaTransaction], graph: ConflictGraph
) -> list[OpDeltaTransaction]:
    """An alternative application order that interleaves the components.

    Round-robins one transaction at a time across the graph's components
    while preserving capture order *inside* each component.  Applying the
    result serially must yield the same warehouse state as the original
    order — this is the dynamic check that validates the analyzer.
    """
    by_id = {g.txn_id: g for g in groups}
    queues = [list(component) for component in graph.components]
    ordered: list[OpDeltaTransaction] = []
    while any(queues):
        for queue in queues:
            if queue:
                ordered.append(by_id[queue.pop(0)])
    return ordered

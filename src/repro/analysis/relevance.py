"""View-relevance pruning: drop Op-Deltas no warehouse view can observe.

The paper ships every captured statement to the warehouse; in practice
many statements touch tables or columns no materialised view projects.
Matching a statement's *write set* and *row range* against the view
definitions at capture time lets the transport layer drop those deltas
before they consume bandwidth or apply-time.

The judgement is conservative in the usual direction: a statement is
pruned only when it provably cannot change any view's content (nor a
mirrored base table).  Anything the extractor cannot bound stays relevant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.opdelta import OpKind
from ..core.selfmaint import ViewDefinition
from ..sql import ast_nodes as ast
from ..sql.expressions import referenced_columns
from .rwsets import (
    PredicateRange,
    StatementFootprint,
    range_from_predicate,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..warehouse.aggregates import AggregateViewDefinition


@dataclass(frozen=True)
class RelevanceVerdict:
    """Which warehouse consumers can observe one statement's effects."""

    #: Names of views whose content the statement may change.
    relevant_views: tuple[str, ...]
    #: Whether the statement's table is mirrored wholesale at the warehouse.
    mirror_relevant: bool

    @property
    def pruned(self) -> bool:
        """True when nothing at the warehouse can observe this statement."""
        return not self.relevant_views and not self.mirror_relevant


def statement_relevance(
    footprint: StatementFootprint,
    views: Sequence[ViewDefinition],
    mirrored_tables: Iterable[str] = (),
    aggregate_views: Sequence["AggregateViewDefinition"] = (),
) -> RelevanceVerdict:
    """Match a statement's footprint against the warehouse view catalog."""
    relevant = tuple(
        view.name for view in views if _affects_view(view, footprint)
    ) + tuple(
        view.name
        for view in aggregate_views
        if _affects_aggregate(view, footprint)
    )
    return RelevanceVerdict(
        relevant_views=relevant,
        mirror_relevant=footprint.table in set(mirrored_tables),
    )


def _view_interest_columns(view: ViewDefinition) -> set[str]:
    """Base-table columns whose values the view's content depends on."""
    interest = set(view.columns) | view.predicate_columns()
    if view.key_column is not None:
        interest.add(view.key_column)
    if view.join is not None:
        interest.add(view.join.left_column)
    return interest


def _affects_view(view: ViewDefinition, footprint: StatementFootprint) -> bool:
    if footprint.table == view.base_table:
        return _affects_base(view, footprint)
    if view.join is not None and footprint.table == view.join.table:
        # Changing the dimension table can rewrite the view's joined
        # columns; bounding that would need join-key tracking, so stay
        # conservative.
        return True
    return False


def _aggregate_interest_columns(view: "AggregateViewDefinition") -> set[str]:
    """Base-table columns an aggregate view's group rows depend on."""
    interest = set(view.group_by)
    for spec in view.aggregates:
        if spec.argument is not None:
            interest.add(spec.argument)
    predicate = view.predicate_ast()
    if predicate is not None:
        interest |= referenced_columns(predicate)
    return interest


def _affects_aggregate(
    view: "AggregateViewDefinition", footprint: StatementFootprint
) -> bool:
    """Same judgement as :func:`_affects_base`, for GROUP BY views.

    An aggregate view observes a statement when the statement can change a
    grouping value, an aggregated input, or a row's membership under the
    view's selection predicate.
    """
    if footprint.table != view.base_table:
        return False
    view_range = range_from_predicate(view.predicate_ast())

    if footprint.kind is OpKind.UPDATE:
        if not footprint.writes & _aggregate_interest_columns(view):
            return False
        if (
            footprint.row_range is not None
            and footprint.row_range.disjoint_from(view_range)
            and _cannot_enter_range(view_range, footprint)
        ):
            return False
        return True

    # INSERT / DELETE: relevant unless the rows provably fail the
    # selection predicate (every insert/delete changes some group count).
    if footprint.row_range is not None and footprint.row_range.disjoint_from(
        view_range
    ):
        return False
    return True


def _affects_base(view: ViewDefinition, footprint: StatementFootprint) -> bool:
    view_range = range_from_predicate(view.predicate_ast())

    if footprint.kind is OpKind.UPDATE:
        # Column test: an UPDATE that assigns only columns the view neither
        # projects nor selects on cannot change the view's content.
        if not footprint.writes & _view_interest_columns(view):
            return False
        # Row test: the affected rows provably lie outside the view's
        # selection range, and no assignment can move one inside it.
        if (
            footprint.row_range is not None
            and footprint.row_range.disjoint_from(view_range)
            and _cannot_enter_range(view_range, footprint)
        ):
            return False
        return True

    if footprint.kind is OpKind.DELETE:
        # Deleted rows provably were never in the view.
        if footprint.row_range is not None and footprint.row_range.disjoint_from(
            view_range
        ):
            return False
        return True

    # INSERT: irrelevant only when every inserted row provably fails the
    # view's selection predicate.
    if footprint.row_range is not None and footprint.row_range.disjoint_from(
        view_range
    ):
        return False
    return True


def _cannot_enter_range(
    target: PredicateRange, footprint: StatementFootprint
) -> bool:
    """Whether the UPDATE's assignments provably cannot move a row into
    ``target`` (same literal-escape rule as safety's ``_cannot_move_into``,
    but against a bare range rather than another statement)."""
    for assignment in footprint.assignments:
        constraint = target.get(assignment.column)
        if constraint is None:
            continue
        if not isinstance(assignment.expr, ast.Literal):
            return False
        if constraint.admits(assignment.expr.value):
            return False
    return True

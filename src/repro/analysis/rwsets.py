"""Read/write-set extraction from DML ASTs.

The analyzer never executes a captured statement; everything it knows
comes from the AST.  For each statement it derives a
:class:`StatementFootprint`:

* the **columns read** (WHERE references plus assignment inputs) and
  **columns written** (assigned columns; whole rows for INSERT/DELETE);
* a **row range** — a per-column interval/point constraint that is a
  provable *superset* of the rows the statement can touch.  For UPDATE and
  DELETE it comes from the top-level AND conjuncts of the WHERE clause
  (``col OP literal``, ``BETWEEN``, ``IN``, ``IS NULL``); for INSERT it is
  the point set of the inserted values.  Anything the extractor does not
  understand (ORs, column-to-column comparisons, function calls) simply
  leaves the column unconstrained, which keeps every later judgement
  conservative: two ranges are reported disjoint only when no row can
  possibly satisfy both.

Ranges are the workhorse of commutativity (:mod:`repro.analysis.safety`)
and of view-relevance pruning (:mod:`repro.analysis.relevance`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..core.opdelta import OpKind, classify_statement
from ..errors import AnalysisError
from ..sql import ast_nodes as ast
from ..sql.expressions import referenced_columns, split_conjuncts


def _lt(a: Any, b: Any) -> bool | None:
    """``a < b`` under SQL typing; ``None`` when the types are incomparable."""
    try:
        return bool(a < b)
    except TypeError:
        return None


@dataclass(frozen=True)
class Interval:
    """One contiguous value interval; ``None`` bounds are unbounded."""

    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    @classmethod
    def point(cls, value: Any) -> "Interval":
        return cls(low=value, high=value)

    @property
    def is_point(self) -> bool:
        return self.low is not None and self.low == self.high

    def contains(self, value: Any) -> bool:
        """Whether ``value`` *may* lie in the interval (conservative)."""
        if value is None:
            return False  # NULL never satisfies a comparison
        if self.low is not None:
            below = _lt(value, self.low)
            if below is None:
                return True  # incomparable types: cannot exclude
            if below or (value == self.low and not self.include_low):
                return False
        if self.high is not None:
            above = _lt(self.high, value)
            if above is None:
                return True
            if above or (value == self.high and not self.include_high):
                return False
        return True

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals *may* share a value (conservative)."""
        for left, right in ((self, other), (other, self)):
            if left.high is None or right.low is None:
                continue
            apart = _lt(left.high, right.low)
            if apart is None:
                return True  # incomparable types: cannot prove disjoint
            if apart:
                return False
            if left.high == right.low and not (
                left.include_high and right.include_low
            ):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lo = "[" if self.include_low else "("
        hi = "]" if self.include_high else ")"
        return f"{lo}{self.low!r}, {self.high!r}{hi}"


#: The unconstrained interval (matches anything non-NULL).
FULL = Interval()


@dataclass(frozen=True)
class ColumnConstraint:
    """What a predicate provably requires of one column.

    A union of intervals, or — for ``IS NULL`` — the NULL-only constraint.
    The empty union (no intervals, not null-only) is *unsatisfiable*: the
    conjuncts contradict each other and the statement matches no row.
    """

    intervals: tuple[Interval, ...] = (FULL,)
    null_only: bool = False

    @classmethod
    def points(cls, values: Sequence[Any]) -> "ColumnConstraint":
        non_null = tuple(Interval.point(v) for v in values if v is not None)
        has_null = any(v is None for v in values)
        if has_null and not non_null:
            return cls(intervals=(), null_only=True)
        return cls(intervals=non_null)

    @property
    def unsatisfiable(self) -> bool:
        return not self.intervals and not self.null_only

    def overlaps(self, other: "ColumnConstraint") -> bool:
        """Whether a single column value could satisfy both constraints."""
        if self.null_only or other.null_only:
            return self.null_only and other.null_only
        return any(
            a.overlaps(b) for a in self.intervals for b in other.intervals
        )

    def admits(self, value: Any) -> bool:
        """Whether a row whose column equals ``value`` may satisfy this."""
        if value is None:
            return self.null_only
        if self.null_only:
            return False
        return any(interval.contains(value) for interval in self.intervals)

    def intersect(self, other: "ColumnConstraint") -> "ColumnConstraint":
        """Conjunction of two constraints on the same column."""
        if self.null_only or other.null_only:
            if self.null_only and other.null_only:
                return ColumnConstraint(intervals=(), null_only=True)
            return ColumnConstraint(intervals=())  # NULL vs range: empty
        kept = tuple(
            _intersect_intervals(a, b)
            for a in self.intervals
            for b in other.intervals
            if a.overlaps(b)
        )
        return ColumnConstraint(intervals=kept)


def _intersect_intervals(a: Interval, b: Interval) -> Interval:
    low, include_low = a.low, a.include_low
    if b.low is not None and (low is None or _lt(low, b.low)):
        low, include_low = b.low, b.include_low
    elif b.low is not None and low == b.low:
        include_low = include_low and b.include_low
    high, include_high = a.high, a.include_high
    if b.high is not None and (high is None or _lt(b.high, high)):
        high, include_high = b.high, b.include_high
    elif b.high is not None and high == b.high:
        include_high = include_high and b.include_high
    return Interval(low, high, include_low, include_high)


@dataclass(frozen=True)
class PredicateRange:
    """Per-column constraints: a provable superset of the matched rows.

    Columns absent from ``columns`` are unconstrained.  Two ranges are
    *disjoint* when some column is constrained in both to non-overlapping
    values — then no single row can be matched by both predicates.
    """

    columns: Mapping[str, ColumnConstraint] = field(default_factory=dict)

    def get(self, column: str) -> ColumnConstraint | None:
        return self.columns.get(column)

    @property
    def unsatisfiable(self) -> bool:
        return any(c.unsatisfiable for c in self.columns.values())

    def disjoint_from(self, other: "PredicateRange") -> bool:
        if self.unsatisfiable or other.unsatisfiable:
            return True
        for column, constraint in self.columns.items():
            theirs = other.columns.get(column)
            if theirs is not None and not constraint.overlaps(theirs):
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{c}={v!r}" for c, v in sorted(self.columns.items()))
        return f"PredicateRange({inner})"


#: A range with no constraints at all (matches every row).
UNCONSTRAINED = PredicateRange({})


def range_from_predicate(where: ast.Expression | None) -> PredicateRange:
    """Extract per-column constraints from a WHERE clause (sound superset)."""
    constraints: dict[str, ColumnConstraint] = {}

    def narrow(column: str, constraint: ColumnConstraint) -> None:
        existing = constraints.get(column)
        constraints[column] = (
            constraint if existing is None else existing.intersect(constraint)
        )

    for conjunct in split_conjuncts(where):
        extracted = _constraint_from_conjunct(conjunct)
        if extracted is not None:
            narrow(*extracted)
    return PredicateRange(constraints)


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _constraint_from_conjunct(
    expr: ast.Expression,
) -> tuple[str, ColumnConstraint] | None:
    """``(column, constraint)`` for one recognised conjunct, else ``None``."""
    if isinstance(expr, ast.BinaryOp) and expr.op in _FLIP:
        sides = [(expr.left, expr.op, expr.right),
                 (expr.right, _FLIP[expr.op], expr.left)]
        for column_side, op, value_side in sides:
            if not isinstance(column_side, ast.ColumnRef):
                continue
            if not isinstance(value_side, ast.Literal):
                continue
            value = value_side.value
            if value is None:
                # ``col = NULL`` is never true: unsatisfiable.
                return column_side.name, ColumnConstraint(intervals=())
            if op == "=":
                return column_side.name, ColumnConstraint.points([value])
            if op == "<":
                interval = Interval(high=value, include_high=False)
            elif op == "<=":
                interval = Interval(high=value)
            elif op == ">":
                interval = Interval(low=value, include_low=False)
            else:  # >=
                interval = Interval(low=value)
            return column_side.name, ColumnConstraint(intervals=(interval,))
        return None
    if isinstance(expr, ast.InList) and not expr.negated:
        if not isinstance(expr.expr, ast.ColumnRef):
            return None
        values = []
        for item in expr.items:
            if not isinstance(item, ast.Literal):
                return None  # non-literal member: cannot bound
            values.append(item.value)
        return expr.expr.name, ColumnConstraint.points(
            [v for v in values if v is not None]
        )
    if isinstance(expr, ast.Between) and not expr.negated:
        if not isinstance(expr.expr, ast.ColumnRef):
            return None
        if not isinstance(expr.low, ast.Literal) or not isinstance(
            expr.high, ast.Literal
        ):
            return None
        if expr.low.value is None or expr.high.value is None:
            return expr.expr.name, ColumnConstraint(intervals=())
        interval = Interval(low=expr.low.value, high=expr.high.value)
        return expr.expr.name, ColumnConstraint(intervals=(interval,))
    if isinstance(expr, ast.IsNull) and not expr.negated:
        if isinstance(expr.expr, ast.ColumnRef):
            return expr.expr.name, ColumnConstraint(
                intervals=(), null_only=True
            )
    return None


def range_from_insert(
    stmt: ast.InsertStmt, column_order: Sequence[str] | None = None
) -> PredicateRange | None:
    """Point constraints of the inserted rows, when they are knowable.

    Returns ``None`` (unknown) for INSERT..SELECT, for inserts whose column
    list is absent and whose table layout was not supplied, and for rows
    containing non-literal expressions in a column.
    """
    if stmt.select is not None:
        return None
    names = stmt.columns if stmt.columns is not None else column_order
    if names is None:
        return None
    per_column: dict[str, list[Any]] = {name: [] for name in names}
    knowable: dict[str, bool] = {name: True for name in names}
    for row in stmt.rows:
        if len(row) != len(names):
            return None
        for name, expr in zip(names, row):
            if isinstance(expr, ast.Literal):
                per_column[name].append(expr.value)
            else:
                knowable[name] = False
    constraints = {
        name: ColumnConstraint.points(values)
        for name, values in per_column.items()
        if knowable[name]
    }
    return PredicateRange(constraints)


@dataclass(frozen=True)
class StatementFootprint:
    """What one DML statement reads and writes, statically."""

    table: str
    kind: OpKind
    #: Columns whose values the statement reads (predicate + assignment
    #: inputs).  ``reads_all_columns`` marks INSERT..SELECT style shapes.
    reads: frozenset[str]
    reads_all_columns: bool
    #: Columns the statement writes.  DELETE and INSERT write whole rows
    #: (``writes_all_columns``); for UPDATE these are the assigned columns.
    writes: frozenset[str]
    writes_all_columns: bool
    #: Columns referenced by the WHERE clause (membership determinants).
    where_columns: frozenset[str]
    #: Superset of affected rows (UPDATE/DELETE) or inserted points
    #: (INSERT); ``None`` when the inserted values are unknowable.
    row_range: PredicateRange | None
    #: The statement itself, for assignment-level analysis.
    statement: ast.Statement = field(repr=False, compare=False, hash=False)
    #: Whether the captured op carries a before image (hybrid capture).
    #: The warehouse replays such ops *from the image* on views that need
    #: before images — delete-by-key plus a full-row reinsert — so only
    #: commutativity proofs that establish **disjoint row sets** remain
    #: sound; pointwise-assignment arguments do not survive image replay
    #: (see :func:`repro.analysis.safety.commutes`).
    image_replay: bool = False

    @property
    def assignments(self) -> tuple[ast.Assignment, ...]:
        if isinstance(self.statement, ast.UpdateStmt):
            return self.statement.assignments
        return ()

    def writes_column(self, column: str) -> bool:
        return self.writes_all_columns or column in self.writes


def extract_footprint(
    statement: ast.Statement,
    table_columns: Mapping[str, Sequence[str]] | None = None,
) -> StatementFootprint:
    """Build the read/write footprint of one DML statement.

    ``table_columns`` optionally maps table name to its column order, which
    lets column-list-free ``INSERT INTO t VALUES (...)`` statements resolve
    their written columns and value points.
    """
    kind, table = classify_statement(statement)
    layout = None if table_columns is None else table_columns.get(table)

    if isinstance(statement, ast.InsertStmt):
        names = statement.columns if statement.columns is not None else layout
        reads: set[str] = set()
        reads_all = statement.select is not None
        for row in statement.rows:
            for expr in row:
                reads |= referenced_columns(expr)
        return StatementFootprint(
            table=table,
            kind=kind,
            reads=frozenset(reads),
            reads_all_columns=reads_all,
            writes=frozenset(names) if names is not None else frozenset(),
            writes_all_columns=True,
            where_columns=frozenset(),
            row_range=range_from_insert(statement, layout),
            statement=statement,
        )

    if isinstance(statement, ast.UpdateStmt):
        where_cols = (
            referenced_columns(statement.where)
            if statement.where is not None
            else set()
        )
        assigned = {a.column for a in statement.assignments}
        inputs: set[str] = set()
        for assignment in statement.assignments:
            inputs |= referenced_columns(assignment.expr)
        return StatementFootprint(
            table=table,
            kind=kind,
            reads=frozenset(where_cols | inputs),
            reads_all_columns=False,
            writes=frozenset(assigned),
            writes_all_columns=False,
            where_columns=frozenset(where_cols),
            row_range=range_from_predicate(statement.where),
            statement=statement,
        )

    if isinstance(statement, ast.DeleteStmt):
        where_cols = (
            referenced_columns(statement.where)
            if statement.where is not None
            else set()
        )
        return StatementFootprint(
            table=table,
            kind=kind,
            reads=frozenset(where_cols),
            reads_all_columns=False,
            writes=frozenset(),
            writes_all_columns=True,
            where_columns=frozenset(where_cols),
            row_range=range_from_predicate(statement.where),
            statement=statement,
        )

    raise AnalysisError(
        f"cannot extract a footprint from {type(statement).__name__}"
    )

"""The Op-Delta analyzer facade.

:class:`OpDeltaAnalyzer` bundles the footprint extractor, the safety
classifier and the relevance matcher behind one object that the capture
hook, the transport layer and the warehouse integrator all share.  Its
product is the :class:`AnalysisRecord` — a per-statement summary that
rides along with the captured :class:`~repro.core.opdelta.OpDelta` and
answers the three questions the downstream layers ask:

* *Can this statement be replayed?*  (``record.safe`` / ``record.pinnable``
  — volatile statements need the value-delta fallback.)
* *Does anything at the warehouse care?*  (``record.pruned`` — if not,
  the transport drops the statement.)
* *Does this transaction conflict with that one?*  (``analyzer.commutes``
  feeding :func:`repro.analysis.conflict.build_conflict_graph`.)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from ..core.opdelta import OpDelta, OpDeltaTransaction
from ..core.selfmaint import ViewDefinition
from ..obs.context import ambient_metrics
from ..obs.metrics import NULL_REGISTRY, MetricsLike
from ..sql import ast_nodes as ast
from .conflict import ConflictGraph, build_conflict_graph
from .relevance import RelevanceVerdict, statement_relevance
from .rwsets import StatementFootprint, extract_footprint
from .safety import (
    Determinism,
    commutes,
    is_idempotent,
    pin_time_functions,
    statement_determinism,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..warehouse.aggregates import AggregateViewDefinition


@dataclass(frozen=True)
class AnalysisRecord:
    """Everything the static analyzer knows about one statement."""

    footprint: StatementFootprint
    determinism: Determinism
    idempotent: bool
    relevance: RelevanceVerdict

    @property
    def pruned(self) -> bool:
        return self.relevance.pruned

    @property
    def safe(self) -> bool:
        """Replayable as captured, without any rewriting."""
        return self.determinism is Determinism.DETERMINISTIC

    @property
    def pinnable(self) -> bool:
        """Replayable after substituting the capture timestamp."""
        return self.determinism is Determinism.TIME_DEPENDENT

    def to_dict(self) -> dict[str, Any]:
        """A flat, JSON-friendly rendering for reports and traces."""
        return {
            "table": self.footprint.table,
            "kind": self.footprint.kind.name,
            "reads": sorted(self.footprint.reads),
            "writes": sorted(self.footprint.writes)
            if not self.footprint.writes_all_columns
            else ["*"],
            "determinism": self.determinism.value,
            "idempotent": self.idempotent,
            "pruned": self.pruned,
            "relevant_views": list(self.relevance.relevant_views),
        }


class OpDeltaAnalyzer:
    """Static analyzer for captured Op-Delta statements.

    ``views`` and ``mirrored_tables`` describe the warehouse's interest for
    relevance pruning; ``key_columns`` (table → primary-key column) and
    ``table_columns`` (table → column order) sharpen the commutativity and
    footprint analyses.  All four are optional — each omission only makes
    the analyzer more conservative, never unsound.
    """

    def __init__(
        self,
        views: Sequence[ViewDefinition] = (),
        mirrored_tables: Iterable[str] = (),
        key_columns: Mapping[str, str] | None = None,
        table_columns: Mapping[str, Sequence[str]] | None = None,
        metrics: MetricsLike | None = None,
        aggregate_views: Sequence["AggregateViewDefinition"] = (),
    ) -> None:
        self.views = tuple(views)
        self.aggregate_views = tuple(aggregate_views)
        self.mirrored_tables = frozenset(mirrored_tables)
        self.key_columns = dict(key_columns) if key_columns else {}
        self.table_columns = (
            {t: tuple(cols) for t, cols in table_columns.items()}
            if table_columns
            else {}
        )
        self._metrics = metrics

    @property
    def metrics(self) -> MetricsLike:
        if self._metrics is not None:
            return self._metrics
        ambient = ambient_metrics()
        return ambient if ambient is not None else NULL_REGISTRY

    # ------------------------------------------------------------- analysis
    def analyze_statement(self, statement: ast.Statement) -> AnalysisRecord:
        footprint = extract_footprint(statement, self.table_columns or None)
        determinism = statement_determinism(statement)
        relevance = statement_relevance(
            footprint,
            self.views,
            self.mirrored_tables,
            aggregate_views=self.aggregate_views,
        )
        record = AnalysisRecord(
            footprint=footprint,
            determinism=determinism,
            idempotent=is_idempotent(footprint),
            relevance=relevance,
        )
        metrics = self.metrics
        metrics.counter("analysis.statement.total").inc()
        metrics.counter(f"analysis.statement.{determinism.value}").inc()
        if record.idempotent:
            metrics.counter("analysis.statement.idempotent").inc()
        if record.pruned:
            metrics.counter("analysis.statement.pruned").inc()
        return record

    def analyze_op(self, op: OpDelta) -> AnalysisRecord:
        return self.analyze_statement(op.statement)

    def commutes(self, a: AnalysisRecord, b: AnalysisRecord) -> bool:
        return commutes(a.footprint, b.footprint, self.key_columns)

    # -------------------------------------------------------------- actions
    def pin(self, op: OpDelta) -> OpDelta:
        """A copy of ``op`` with its time functions pinned to capture time."""
        pinned = pin_time_functions(op.statement, op.captured_at)
        return dataclasses.replace(
            op, statement_text=pinned.to_sql(), _parsed=pinned
        )

    def prune_transaction(
        self, group: OpDeltaTransaction
    ) -> OpDeltaTransaction | None:
        """Drop irrelevant statements; ``None`` when nothing survives."""
        kept = [
            op for op in group.operations if not self.analyze_op(op).pruned
        ]
        if not kept:
            return None
        if len(kept) == len(group.operations):
            return group
        return dataclasses.replace(group, operations=kept)

    def conflict_graph(
        self, groups: Sequence[OpDeltaTransaction]
    ) -> ConflictGraph:
        """The conflict graph of a drained batch (see :mod:`.conflict`)."""
        return build_conflict_graph(
            groups,
            table_columns=self.table_columns or None,
            key_columns=self.key_columns or None,
            metrics=self.metrics,
        )

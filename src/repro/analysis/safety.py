"""Safety classification of captured Op-Delta statements.

Three orthogonal judgements, all static (no execution):

**Determinism** — :class:`Determinism` is a three-level lattice.
``DETERMINISTIC`` statements reference no session state and replay
identically anywhere.  ``TIME_DEPENDENT`` statements call only time
functions (``NOW()``/``CURRENT_TIMESTAMP``): they are *pinnable* — the
capture timestamp can be substituted into the text and the result replays
deterministically.  ``VOLATILE`` statements reference unrecoverable state
(``RANDOM()``, session identity) and cannot be replayed faithfully from
the statement alone; the integrator must fall back to value deltas.

**Idempotence** — whether applying the statement twice leaves the same
state as applying it once.  Governs retry safety in the transport layer.

**Commutativity** — whether two statements can be applied in either order
with the same final state.  This is the foundation of the transaction
conflict graph: transactions whose statements pairwise commute can be
applied concurrently at the warehouse.

All judgements are *conservative*: ``commutes`` answers ``True`` only when
reordering is provably safe, and falls back to ``False`` whenever the
statement shapes defeat the range extractor.

``commutes`` accepts a ``structural`` flag (default on) enabling the
*structural-disjointness* widening: two predicate-bounded write sets are
provably disjoint when one WHERE clause carries a top-level conjunct that
is the exact structural negation of a conjunct in the other (proved via
:func:`conjuncts_imply`), e.g. ``status IS NULL`` vs ``status IS NOT
NULL``.  The proof is sound only while the partitioning columns are
invariant, so the widening additionally requires that neither statement
assigns any column referenced by the contradicting conjunct pair.
Passing ``structural=False`` recovers the original, more conservative
prover — the certify bench experiment uses both to report the
parallelism delta.

Ops captured with **before images** (hybrid capture) are replayed from
the image on views that need them, which is *not* plain statement
replay: build their footprints with :func:`op_footprint` so ``commutes``
knows to restrict itself to disjoint-row-set proofs.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..sql import ast_nodes as ast
from ..sql.expressions import (
    referenced_columns,
    referenced_functions,
    split_conjuncts,
)
from .rwsets import StatementFootprint, extract_footprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.opdelta import OpDelta


class Determinism(enum.Enum):
    """How much session state a statement's expressions depend on."""

    DETERMINISTIC = "deterministic"
    #: Depends only on the clock — replayable by pinning the capture time.
    TIME_DEPENDENT = "time_dependent"
    #: Depends on unrecoverable session state (randomness, identity).
    VOLATILE = "volatile"

    @property
    def replayable(self) -> bool:
        """Whether the statement can be replayed faithfully (possibly pinned)."""
        return self is not Determinism.VOLATILE


_NON_TIME_VOLATILE = frozenset(ast.VOLATILE_FUNCTIONS) - frozenset(
    ast.TIME_FUNCTIONS
)


def expression_determinism(expr: ast.Expression | None) -> Determinism:
    """Classify one expression by the functions it invokes."""
    functions = referenced_functions(expr)
    if functions & _NON_TIME_VOLATILE:
        return Determinism.VOLATILE
    if functions & frozenset(ast.TIME_FUNCTIONS):
        return Determinism.TIME_DEPENDENT
    return Determinism.DETERMINISTIC


def statement_determinism(statement: ast.Statement) -> Determinism:
    """Classify a whole DML statement: the worst of its expressions."""
    worst = Determinism.DETERMINISTIC

    def fold(expr: ast.Expression | None) -> None:
        nonlocal worst
        level = expression_determinism(expr)
        if _RANK[level] > _RANK[worst]:
            worst = level

    if isinstance(statement, ast.InsertStmt):
        for row in statement.rows:
            for expr in row:
                fold(expr)
        if statement.select is not None:
            fold(statement.select.where)
            for item in statement.select.items:
                if isinstance(item.expr, ast.Expression):
                    fold(item.expr)
    elif isinstance(statement, ast.UpdateStmt):
        fold(statement.where)
        for assignment in statement.assignments:
            fold(assignment.expr)
    elif isinstance(statement, ast.DeleteStmt):
        fold(statement.where)
    return worst


_RANK = {
    Determinism.DETERMINISTIC: 0,
    Determinism.TIME_DEPENDENT: 1,
    Determinism.VOLATILE: 2,
}


def pin_time_functions(
    statement: ast.Statement, at_ms: float
) -> ast.Statement:
    """Rewrite every time-function call to the literal capture timestamp.

    This is what makes ``TIME_DEPENDENT`` statements replayable: the value
    ``NOW()`` had at the source is known (the capture record carries it),
    so substituting it yields a deterministic statement with identical
    effect.  Non-time volatile functions are left untouched — they have no
    recoverable value and the caller must fall back to value deltas.
    """

    def rewrite(expr: ast.Expression) -> ast.Expression:
        if isinstance(expr, ast.FuncCall):
            if expr.function in ast.TIME_FUNCTIONS:
                return ast.Literal(at_ms)
            return dataclasses.replace(
                expr, args=tuple(rewrite(a) for a in expr.args)
            )
        if isinstance(expr, ast.BinaryOp):
            return dataclasses.replace(
                expr, left=rewrite(expr.left), right=rewrite(expr.right)
            )
        if isinstance(expr, ast.UnaryOp):
            return dataclasses.replace(expr, operand=rewrite(expr.operand))
        if isinstance(expr, ast.InList):
            return dataclasses.replace(
                expr,
                expr=rewrite(expr.expr),
                items=tuple(rewrite(i) for i in expr.items),
            )
        if isinstance(expr, ast.Between):
            return dataclasses.replace(
                expr,
                expr=rewrite(expr.expr),
                low=rewrite(expr.low),
                high=rewrite(expr.high),
            )
        if isinstance(expr, (ast.Like, ast.IsNull)):
            return dataclasses.replace(expr, expr=rewrite(expr.expr))
        return expr

    if isinstance(statement, ast.UpdateStmt):
        return dataclasses.replace(
            statement,
            assignments=tuple(
                dataclasses.replace(a, expr=rewrite(a.expr))
                for a in statement.assignments
            ),
            where=rewrite(statement.where)
            if statement.where is not None
            else None,
        )
    if isinstance(statement, ast.DeleteStmt):
        return dataclasses.replace(
            statement,
            where=rewrite(statement.where)
            if statement.where is not None
            else None,
        )
    if isinstance(statement, ast.InsertStmt):
        return dataclasses.replace(
            statement,
            rows=tuple(
                tuple(rewrite(e) for e in row) for row in statement.rows
            ),
        )
    return statement


def op_footprint(
    op: "OpDelta",
    table_columns: Mapping[str, Sequence[str]] | None = None,
) -> StatementFootprint:
    """The footprint of a captured op, in its *replay* form.

    Pins time functions to the capture timestamp (the integrator replays
    the pinned text, so reordering is judged on what actually runs) and
    marks ops that carry a before image as ``image_replay``: hybrid-view
    maintenance replays those from the image rather than the statement,
    which narrows the commutativity proofs :func:`commutes` may use.
    Every consumer that reasons about reordering captured ops — the
    conflict graph, the schedule certifier, the interference sanitizer —
    must build footprints through this helper so they share one model.
    """
    footprint = extract_footprint(
        pin_time_functions(op.statement, op.captured_at), table_columns
    )
    if op.before_image is not None:
        footprint = dataclasses.replace(footprint, image_replay=True)
    return footprint


def is_idempotent(footprint: StatementFootprint) -> bool:
    """Whether applying the statement twice equals applying it once.

    A deterministic DELETE is idempotent (the second pass matches nothing
    new).  A deterministic UPDATE is idempotent iff no assignment reads a
    column that is also assigned — ``qty = qty + 1`` accumulates, while
    ``status = 'done'`` converges.  An assignment may also re-match rows it
    moved *into* its own WHERE range, so additionally no assigned column
    may appear in the WHERE clause... except that assignments which pin the
    column to a constant converge regardless.  We keep the simple sound
    rule: assigned columns must not appear among the assignment inputs, and
    any assigned column in the WHERE clause must be assigned a literal.
    INSERT is never idempotent (it adds a row per application).
    """
    if statement_determinism(footprint.statement) is not Determinism.DETERMINISTIC:
        return False
    if footprint.kind.name == "DELETE":
        return True
    if footprint.kind.name == "INSERT":
        return False
    assigned = {a.column for a in footprint.assignments}
    for assignment in footprint.assignments:
        if referenced_columns(assignment.expr) & assigned:
            return False
        if assignment.column in footprint.where_columns and not isinstance(
            assignment.expr, ast.Literal
        ):
            return False
    return True


def commutes(
    a: StatementFootprint,
    b: StatementFootprint,
    key_columns: Mapping[str, str] | None = None,
    *,
    structural: bool = True,
) -> bool:
    """Whether applying ``a`` then ``b`` equals applying ``b`` then ``a``.

    ``key_columns`` maps table name to its primary-key column; it is
    required to reason about INSERT pairs, where a key conflict makes the
    outcome order-dependent.  The answer is ``True`` only when reordering
    is provably state-preserving.  ``structural=False`` disables the
    structural-disjointness widening (see the module docstring) and runs
    the original range-only prover.

    **Image replay.**  When either footprint is marked ``image_replay``
    (the captured op carries a before image — see
    :func:`op_footprint`), hybrid-view maintenance replays that op from
    the image: delete-by-key of the captured row plus a full-row
    reinsert.  A full-row reinsert resurrects every column from the
    image, so two writes to the *same* row no longer commute even when
    their assigned columns are disjoint or their assignments commute
    pointwise.  Only proofs that establish provably **disjoint row
    sets** (range or structural disjointness, key-disjoint inserts)
    survive; the pointwise-assignment arguments are disabled.
    """
    det_a = statement_determinism(a.statement)
    det_b = statement_determinism(b.statement)
    # Even TIME_DEPENDENT statements do not commute: swapping the order
    # shifts the virtual clock value each one evaluates under.
    if det_a is not Determinism.DETERMINISTIC or det_b is not Determinism.DETERMINISTIC:
        return False
    if a.table != b.table:
        return True
    image_replay = a.image_replay or b.image_replay

    kind_a, kind_b = a.kind.name, b.kind.name
    if kind_a > kind_b:  # normalise pair order: DELETE < INSERT < UPDATE
        a, b = b, a
        kind_a, kind_b = kind_b, kind_a

    if kind_a == "DELETE" and kind_b == "DELETE":
        # Always safe, images included: a row deleted by one statement at
        # the source cannot appear in the other's image, so the captured
        # key sets are disjoint by construction.
        return True
    if kind_a == "UPDATE" and kind_b == "UPDATE":
        return _updates_commute(
            a, b, structural=structural, image_replay=image_replay
        )
    if kind_a == "DELETE" and kind_b == "UPDATE":
        return _delete_update_commute(
            a, b, structural=structural, image_replay=image_replay
        )
    pk = None if key_columns is None else key_columns.get(a.table)
    if kind_a == "INSERT" and kind_b == "INSERT":
        return _inserts_commute(a, b, pk)
    if kind_a == "INSERT" and kind_b == "UPDATE":
        return _insert_update_commute(a, b, pk)
    if kind_a == "DELETE" and kind_b == "INSERT":
        return _delete_insert_commute(a, b, pk)
    return False


def _ranges_disjoint(a: StatementFootprint, b: StatementFootprint) -> bool:
    if a.row_range is None or b.row_range is None:
        return False
    return a.row_range.disjoint_from(b.row_range)


def _cannot_move_into(
    target: StatementFootprint, mover: StatementFootprint
) -> bool:
    """Whether ``mover``'s assignments provably cannot move a row into
    ``target``'s range.

    ``mover`` rewrites some columns; if one of those columns constrains
    ``target``'s WHERE range, the rewrite could make a previously
    unmatched row match.  Safe only when every such assignment is a
    literal that the target's constraint rejects.
    """
    if target.row_range is None:
        return False
    for assignment in mover.assignments:
        constraint = target.row_range.get(assignment.column)
        if constraint is None:
            continue  # target does not constrain this column
        if not isinstance(assignment.expr, ast.Literal):
            return False  # computed value: could land anywhere
        if constraint.admits(assignment.expr.value):
            return False
    return True


def _updates_commute(
    a: StatementFootprint,
    b: StatementFootprint,
    *,
    structural: bool = True,
    image_replay: bool = False,
) -> bool:
    # Case 1: provably disjoint row sets, and neither can move rows into
    # the other's range.
    if (
        _ranges_disjoint(a, b)
        and _cannot_move_into(a, b)
        and _cannot_move_into(b, a)
    ):
        return True
    # Case 1b (widening): the WHERE clauses carry structurally
    # contradicting conjuncts over columns neither statement assigns —
    # the partition is invariant under both writes, so no row can ever
    # match both predicates, in either order.
    if structural and _structurally_disjoint(a, b):
        return True
    # Image replay admits no overlapping-row proof: each op's captured
    # before image is a full row, and the hybrid view path reinserts it
    # whole — the later-applied op resurrects the other's columns.
    if image_replay:
        return False
    # Case 2: possibly-overlapping rows, but the assignments themselves
    # commute pointwise.  Requires that neither WHERE clause references any
    # assigned column (membership is then order-independent), and that for
    # every column assigned by both the updates are of the commuting shape
    # ``c = c OP literal`` with the same associative-commutative operator.
    assigned_a = {x.column for x in a.assignments}
    assigned_b = {x.column for x in b.assignments}
    all_assigned = assigned_a | assigned_b
    if (a.where_columns | b.where_columns) & all_assigned:
        return False
    by_col_a = {x.column: x.expr for x in a.assignments}
    by_col_b = {x.column: x.expr for x in b.assignments}
    for column in all_assigned:
        expr_a = by_col_a.get(column)
        expr_b = by_col_b.get(column)
        if expr_a is not None and expr_b is not None:
            if not _additive_pair(column, expr_a, expr_b):
                return False
            # ``c = c + k`` self-reads are fine, but no *other* assignment
            # in either statement may read the accumulated column.
            for stmt_assignments in (a.assignments, b.assignments):
                if any(
                    column in referenced_columns(x.expr)
                    for x in stmt_assignments
                    if x.column != column
                ):
                    return False
        elif expr_a is not None:
            # Only ``a`` assigns it; ``b`` must not read it as an input.
            if any(
                column in referenced_columns(x.expr) for x in b.assignments
            ):
                return False
        else:
            if any(
                column in referenced_columns(x.expr) for x in a.assignments
            ):
                return False
    return True


def _additive_pair(
    column: str, expr_a: ast.Expression, expr_b: ast.Expression
) -> bool:
    """Both exprs are ``column OP literal`` with the same OP in {+, *}."""
    acc_a = self_accumulation(column, expr_a)
    acc_b = self_accumulation(column, expr_b)
    return acc_a is not None and acc_b is not None and acc_a[0] == acc_b[0]


def self_accumulation(
    column: str, expr: ast.Expression
) -> tuple[str, Any] | None:
    """``(op, literal)`` when ``expr`` is ``column OP literal`` (OP in +, *).

    The accumulating-assignment shape: ``qty = qty + 3`` reads only the
    column it writes, through an associative-commutative operator.  Two
    such assignments commute — and the log compactor can *fold* them into
    one (``qty + 1`` then ``qty + 2`` becomes ``qty + 3``), which is why
    the literal comes back along with the operator.
    """
    if not isinstance(expr, ast.BinaryOp) or expr.op not in ("+", "*"):
        return None
    left, right = expr.left, expr.right
    if isinstance(left, ast.ColumnRef) and left.name == column:
        other = right
    elif isinstance(right, ast.ColumnRef) and right.name == column:
        other = left
    else:
        return None
    if isinstance(other, ast.Literal) and isinstance(other.value, (int, float)):
        return expr.op, other.value
    return None


def _self_op(column: str, expr: ast.Expression) -> str | None:
    accumulation = self_accumulation(column, expr)
    return None if accumulation is None else accumulation[0]


def conjuncts_imply(
    stronger: ast.Expression | None, weaker: ast.Expression | None
) -> bool:
    """Whether every row matching ``stronger`` provably matches ``weaker``.

    Purely structural: ``weaker``'s top-level AND conjuncts must each
    appear (dataclass-equal) among ``stronger``'s.  A ``None`` (absent)
    WHERE clause matches every row, so it is implied by anything.  This is
    *exact*, not range-based — no superset approximation is involved — and
    it is what lets the compactor prove "every row this UPDATE touches is
    deleted right after" before dropping the UPDATE.
    """
    if weaker is None:
        return True
    needed = split_conjuncts(weaker)
    have = split_conjuncts(stronger)
    return all(any(conjunct == h for h in have) for conjunct in needed)


#: Comparison operators and their exact SQL negations.  ``=`` negates to
#: either inequality spelling the parser accepts, so a contradiction is
#: found regardless of which alias the source statement used.
_NEGATED_OPS: dict[str, tuple[str, ...]] = {
    "=": ("!=", "<>"),
    "!=": ("=",),
    "<>": ("=",),
    "<": (">=",),
    "<=": (">",),
    ">": ("<=",),
    ">=": ("<",),
}


def conjunct_negations(
    conjunct: ast.Expression,
) -> tuple[ast.Expression, ...]:
    """Structural negations of one conjunct, when exactly expressible.

    Soundness under SQL three-valued logic: whenever ``conjunct``
    evaluates TRUE on a row, every returned expression evaluates FALSE on
    that row (a TRUE comparison implies both operands are non-NULL, so
    the flipped comparison is FALSE; the ``negated`` flag on
    ``IN``/``BETWEEN``/``LIKE``/``IS NULL`` is an exact complement).
    Shapes with no exact negation in the AST vocabulary return ``()``.
    """
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in _NEGATED_OPS:
        return tuple(
            ast.BinaryOp(op, conjunct.left, conjunct.right)
            for op in _NEGATED_OPS[conjunct.op]
        )
    if isinstance(conjunct, (ast.InList, ast.Between, ast.Like, ast.IsNull)):
        return (dataclasses.replace(conjunct, negated=not conjunct.negated),)
    return ()


def predicates_disjoint(
    a_where: ast.Expression | None, b_where: ast.Expression | None
) -> frozenset[str] | None:
    """Columns witnessing that the two WHERE clauses match disjoint rows.

    Looks for a top-level conjunct of one clause whose structural negation
    is *implied* by the other clause (:func:`conjuncts_imply`): a row
    satisfying both clauses would then make the same conjunct TRUE and
    FALSE at once.  Returns the columns referenced by the contradicting
    conjunct — the partition witness — or ``None`` when no contradiction
    is found.  Callers must check the witness columns stay invariant
    before concluding anything about reordering (see
    :func:`_structurally_disjoint`).
    """
    if a_where is None or b_where is None:
        return None
    for first, second in ((a_where, b_where), (b_where, a_where)):
        for conjunct in split_conjuncts(second):
            for negation in conjunct_negations(conjunct):
                if conjuncts_imply(first, negation):
                    return frozenset(referenced_columns(conjunct))
    return None


def _structurally_disjoint(
    a: StatementFootprint, b: StatementFootprint
) -> bool:
    """Disjoint row sets via contradicting conjuncts + invariant witness.

    The contradiction proves no row satisfies both WHERE clauses *at the
    same instant*; requiring that neither statement assigns a witness
    column extends that to *ever*: the partitioning columns of every row
    are the same before and after either statement runs, so the row sets
    each statement matches — and the values it reads from them — are
    identical in both orders.
    """
    where_a = _where_clause(a.statement)
    where_b = _where_clause(b.statement)
    witness = predicates_disjoint(where_a, where_b)
    if witness is None:
        return False
    assigned = {x.column for x in a.assignments} | {
        x.column for x in b.assignments
    }
    return not (witness & assigned)


def _where_clause(statement: ast.Statement) -> ast.Expression | None:
    if isinstance(statement, (ast.UpdateStmt, ast.DeleteStmt)):
        return statement.where
    return None


def _delete_update_commute(
    delete: StatementFootprint,
    update: StatementFootprint,
    *,
    structural: bool = True,
    image_replay: bool = False,
) -> bool:
    # Safe when the update cannot change which rows the delete matches and
    # deleting first cannot change what the update writes (deleted rows are
    # gone either way, so only membership interference matters).  Sound for
    # statement replay only: an update replayed *from its image* reinserts
    # the captured row on hybrid views even after the delete removed it, so
    # with images present the proof must establish disjoint row sets below.
    update_assigned = {x.column for x in update.assignments}
    if not image_replay and not update_assigned & delete.where_columns:
        return True
    if _ranges_disjoint(delete, update) and _cannot_move_into(
        delete, update
    ):
        return True
    # Widening: a structurally contradicting conjunct pair over columns
    # the update does not assign partitions the rows for good — the
    # delete can never claim a row the update touches, and vice versa.
    return structural and _structurally_disjoint(delete, update)


def _inserts_commute(
    a: StatementFootprint, b: StatementFootprint, pk: str | None
) -> bool:
    # Order matters only through constraint conflicts: if both inserts are
    # literal rows with known, disjoint primary-key point sets, neither can
    # steal the other's key, and the final table content is order-free.
    if pk is None or a.row_range is None or b.row_range is None:
        return False
    ca, cb = a.row_range.get(pk), b.row_range.get(pk)
    if ca is None or cb is None:
        return False
    return not ca.overlaps(cb)


def _insert_update_commute(
    insert: StatementFootprint, update: StatementFootprint, pk: str | None
) -> bool:
    # The inserted rows must provably not match the UPDATE's range (else
    # order decides whether they get updated), and the UPDATE must not
    # rewrite the primary key into the inserted key set.
    if insert.row_range is None or update.row_range is None:
        return False
    if not insert.row_range.disjoint_from(update.row_range):
        return False
    if not _cannot_move_into(insert, update):
        return False
    if pk is None or update.writes_column(pk):
        return False
    return True


def _delete_insert_commute(
    delete: StatementFootprint, insert: StatementFootprint, pk: str | None
) -> bool:
    # Deleting first could free a primary key the insert then takes; the
    # insert's rows must not fall in the delete's range, and their keys
    # must be provably outside any key set the delete touches.
    if insert.row_range is None or delete.row_range is None:
        return False
    if not insert.row_range.disjoint_from(delete.row_range):
        return False
    if pk is None:
        return False
    delete_keys = delete.row_range.get(pk)
    insert_keys = insert.row_range.get(pk)
    if delete_keys is None or insert_keys is None:
        return False
    return not delete_keys.overlaps(insert_keys)

"""Static analysis of captured Op-Delta statements.

Everything here works on the SQL AST alone — no statement is ever
executed.  The package answers three questions about each captured
operation, all conservatively (a "yes" is a proof, a "no" just means the
analyzer could not prove it):

* :mod:`~repro.analysis.rwsets` — *what does it touch?*  Read/write column
  sets and predicate-bounded row ranges.
* :mod:`~repro.analysis.safety` — *can it be replayed, retried,
  reordered?*  Determinism, idempotence and pairwise commutativity.
* :mod:`~repro.analysis.conflict` — *which transactions are independent?*
  The conflict graph whose components the warehouse scheduler applies in
  parallel.
* :mod:`~repro.analysis.relevance` — *does the warehouse care?*  Pruning
  of statements no materialised view (and no mirror) can observe.
* :mod:`~repro.analysis.certify` — *is this parallel schedule safe to
  run?*  Static serializability certification of proposed lane
  assignments plus a vector-clock interference sanitizer that
  cross-checks the verdict at runtime.
* :mod:`~repro.analysis.verify` — *are the compiled delta rules
  actually equivalent to recomputation?*  Small-scope bounded model
  checking of each maintenance plan, producing cached
  :class:`~repro.analysis.verify.PlanCertificate` objects the
  integrator requires as a pre-flight.

:class:`OpDeltaAnalyzer` is the facade the capture hook, transport layer
and integrator share.
"""

from .analyzer import AnalysisRecord, OpDeltaAnalyzer
from .certify import (
    Certificate,
    InterferenceSanitizer,
    LaneSchedule,
    RaceFinding,
    ScheduleCertifier,
    VectorClock,
    lpt_schedule,
    plant_lane_swap,
    single_lane_schedule,
)
from .conflict import (
    ConflictGraph,
    build_conflict_graph,
    parallel_order,
    transactions_conflict,
)
from .relevance import RelevanceVerdict, statement_relevance
from .rwsets import (
    ColumnConstraint,
    Interval,
    PredicateRange,
    StatementFootprint,
    extract_footprint,
    range_from_insert,
    range_from_predicate,
)
from .verify import (
    CertificateCache,
    Counterexample,
    DeltaRuleVerifier,
    PlanCertificate,
    ScopeConfig,
    VerifyFinding,
)
from .safety import (
    Determinism,
    commutes,
    conjunct_negations,
    conjuncts_imply,
    expression_determinism,
    is_idempotent,
    op_footprint,
    pin_time_functions,
    predicates_disjoint,
    self_accumulation,
    statement_determinism,
)

__all__ = [
    "AnalysisRecord",
    "OpDeltaAnalyzer",
    "Certificate",
    "InterferenceSanitizer",
    "LaneSchedule",
    "RaceFinding",
    "ScheduleCertifier",
    "VectorClock",
    "lpt_schedule",
    "plant_lane_swap",
    "single_lane_schedule",
    "op_footprint",
    "pin_time_functions",
    "ConflictGraph",
    "build_conflict_graph",
    "parallel_order",
    "transactions_conflict",
    "RelevanceVerdict",
    "statement_relevance",
    "ColumnConstraint",
    "Interval",
    "PredicateRange",
    "StatementFootprint",
    "extract_footprint",
    "range_from_insert",
    "range_from_predicate",
    "Determinism",
    "commutes",
    "conjunct_negations",
    "conjuncts_imply",
    "predicates_disjoint",
    "expression_determinism",
    "is_idempotent",
    "self_accumulation",
    "statement_determinism",
    "CertificateCache",
    "Counterexample",
    "DeltaRuleVerifier",
    "PlanCertificate",
    "ScopeConfig",
    "VerifyFinding",
]

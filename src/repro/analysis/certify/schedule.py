"""Explicit lane assignments for batched delta application.

``run_conflict_schedule`` / ``run_batched_schedule`` simulate LPT packing
of conflict components onto parallel lanes but never materialise *which*
transaction runs where — the assignment exists only inside the simulation.
:func:`lpt_schedule` reproduces the exact same deterministic packing as a
first-class :class:`LaneSchedule` value that the certifier can inspect and
the integrators can be handed, and :func:`plant_lane_swap` derives the
seeded ``swap-lane-ops`` fault from it for the race drill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ...core.opdelta import OpDeltaTransaction
from ...errors import AnalysisError
from ..conflict import ConflictGraph


@dataclass(frozen=True)
class LaneSchedule:
    """A proposed parallel application order: transaction ids per lane.

    Lanes run concurrently; inside one lane transactions run serially in
    the listed order.  The schedule is pure data — certifying it proves
    (or refutes) that executing it is equivalent to the source serial
    order.
    """

    lanes: tuple[tuple[int, ...], ...]

    @property
    def lane_count(self) -> int:
        return len(self.lanes)

    @property
    def transaction_ids(self) -> tuple[int, ...]:
        return tuple(txn_id for lane in self.lanes for txn_id in lane)

    def lane_of(self, txn_id: int) -> int | None:
        for index, lane in enumerate(self.lanes):
            if txn_id in lane:
                return index
        return None

    def position_of(self, txn_id: int) -> tuple[int, int] | None:
        """``(lane, slot)`` of a transaction, or ``None`` if unscheduled."""
        for lane_index, lane in enumerate(self.lanes):
            for slot, candidate in enumerate(lane):
                if candidate == txn_id:
                    return lane_index, slot
        return None

    def to_dict(self) -> dict[str, object]:
        return {"lanes": [list(lane) for lane in self.lanes]}


def single_lane_schedule(
    groups: Sequence[OpDeltaTransaction],
) -> LaneSchedule:
    """The serial schedule: every transaction on one lane, given order."""
    return LaneSchedule(lanes=(tuple(g.txn_id for g in groups),))


def lpt_schedule(
    groups: Sequence[OpDeltaTransaction],
    graph: ConflictGraph,
    *,
    lanes: int = 4,
    costs: Mapping[int, float] | None = None,
) -> LaneSchedule:
    """Deterministic LPT packing of conflict components onto lanes.

    Mirrors ``run_conflict_schedule`` exactly: components are sorted by
    total cost descending (stable, so equal-cost components keep graph
    order) and each next component goes wholly to the earliest-free lane,
    ties broken by lowest lane index.  Component members stay in capture
    order on their lane, which is what makes the result certifiable.

    ``costs`` maps transaction id to its estimated apply cost; when
    omitted the operation count is used — any *deterministic* proxy
    yields a valid (certifiable) schedule, the proxy only affects packing
    quality.
    """
    if lanes < 1:
        raise AnalysisError(f"lane count must be >= 1, got {lanes}")
    by_id = {g.txn_id: g for g in groups}

    def txn_cost(txn_id: int) -> float:
        if costs is not None and txn_id in costs:
            return float(costs[txn_id])
        group = by_id.get(txn_id)
        return float(len(group.operations)) if group is not None else 0.0

    queue = sorted(
        (component for component in graph.components if component),
        key=lambda component: sum(txn_cost(t) for t in component),
        reverse=True,
    )
    free_at = [0.0] * lanes
    assigned: list[list[int]] = [[] for _ in range(lanes)]
    for component in queue:
        lane = min(range(lanes), key=lambda i: (free_at[i], i))
        assigned[lane].extend(component)
        free_at[lane] += sum(txn_cost(t) for t in component)
    return LaneSchedule(lanes=tuple(tuple(lane) for lane in assigned))


def plant_lane_swap(
    schedule: LaneSchedule, graph: ConflictGraph
) -> LaneSchedule:
    """Seed the ``swap-lane-ops`` race: move one side of a conflict edge.

    Takes the first conflict edge ``(a, b)`` of the graph and moves ``b``
    to the *front* of a different lane than ``a``'s, so the conflicting
    pair no longer shares a lane and nothing orders it — the planted
    schedule admits an interleaving that applies ``b`` before ``a``.
    Deterministic: same schedule + graph always plants the same race.
    """
    if schedule.lane_count < 2:
        raise AnalysisError(
            "planting a lane swap needs at least two lanes"
        )
    for edge_a, edge_b in graph.edges:
        lane_a = schedule.lane_of(edge_a)
        lane_b = schedule.lane_of(edge_b)
        if lane_a is None or lane_b is None:
            continue
        target = (lane_a + 1) % schedule.lane_count
        lanes = [list(lane) for lane in schedule.lanes]
        lanes[lane_b].remove(edge_b)
        lanes[target].insert(0, edge_b)
        return LaneSchedule(lanes=tuple(tuple(lane) for lane in lanes))
    raise AnalysisError(
        "cannot plant a lane swap: the conflict graph has no edges"
    )

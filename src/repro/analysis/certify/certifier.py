"""Static serializability proofs for proposed parallel schedules.

The certifier takes a window of captured transactions, the conflict graph
that scheduling was based on, and a proposed :class:`LaneSchedule`, and
*independently re-derives* every pairwise conflict from pinned statement
footprints — it does not trust the graph's edges.  A schedule is
``CERTIFIED`` only when:

* every conflicting transaction pair preserves source (capture) order:
  conflicting pairs may not straddle lanes (``RACE001``) and may not be
  inverted within a lane (``RACE002``);
* every in-group operation reordering (e.g. a coalescer moving an
  effect earlier) is backed by a commutativity proof (``RACE003``);
* compaction barriers — non-``DETERMINISTIC`` statements and hybrid ops
  carrying a before image — are never crossed (``RACE004``);
* the schedule covers the window exactly: no transaction missing,
  duplicated, or unknown (``RACE005``), and none outside the conflict
  graph (``RACE006``).

Each failed obligation becomes a positioned :class:`RaceFinding` with the
offending op pair's correlation ids and, for cross-lane races, a concrete
*witness interleaving* — an executable op order the schedule admits that
differs from the serial order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ...core.opdelta import OpDelta, OpDeltaTransaction
from ...obs.context import ambient_metrics
from ...obs.metrics import NULL_REGISTRY, MetricsLike
from ..conflict import ConflictGraph
from ..rwsets import StatementFootprint
from ..safety import (
    Determinism,
    commutes,
    op_footprint,
    statement_determinism,
)
from .schedule import LaneSchedule


def correlation_id(op: OpDelta) -> str:
    """The op's lineage correlation id, synthesised when not stamped."""
    if op.lineage_id:
        return op.lineage_id
    return f"txn{op.txn_id}:op{op.sequence}"


@dataclass(frozen=True)
class RaceFinding:
    """One violated serializability obligation, positioned on an op pair."""

    code: str
    message: str
    table: str
    txn_a: int
    txn_b: int
    op_a: str
    op_b: str
    lane_a: int | None = None
    lane_b: int | None = None
    #: Correlation ids of a concrete admitted interleaving that differs
    #: from the serial order (cross-lane races only).
    witness: tuple[str, ...] = ()

    def render(self) -> str:
        lanes = ""
        if self.lane_a is not None or self.lane_b is not None:
            lanes = f" [lane {self.lane_a} vs lane {self.lane_b}]"
        line = (
            f"{self.code} {self.table}: {self.op_a} vs {self.op_b}"
            f"{lanes} — {self.message}"
        )
        if self.witness:
            line += f"\n  witness interleaving: {' -> '.join(self.witness)}"
        return line

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "table": self.table,
            "txn_a": self.txn_a,
            "txn_b": self.txn_b,
            "op_a": self.op_a,
            "op_b": self.op_b,
            "lane_a": self.lane_a,
            "lane_b": self.lane_b,
            "witness": list(self.witness),
        }


@dataclass
class Certificate:
    """The certifier's verdict plus the statistics behind it."""

    lanes: int
    transactions: int
    operations: int
    pairs_checked: int
    conflicting_pairs: int
    reorder_checks: int = 0
    findings: tuple[RaceFinding, ...] = field(default_factory=tuple)

    @property
    def commuting_pairs(self) -> int:
        return self.pairs_checked - self.conflicting_pairs

    @property
    def certified(self) -> bool:
        return not self.findings

    @property
    def verdict(self) -> str:
        return "CERTIFIED" if self.certified else "REJECTED"

    def to_dict(self) -> dict[str, Any]:
        return {
            "verdict": self.verdict,
            "lanes": self.lanes,
            "transactions": self.transactions,
            "operations": self.operations,
            "pairs_checked": self.pairs_checked,
            "conflicting_pairs": self.conflicting_pairs,
            "commuting_pairs": self.commuting_pairs,
            "reorder_checks": self.reorder_checks,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def _is_barrier(op: OpDelta) -> bool:
    """Compaction barriers: hybrid ops and non-deterministic statements."""
    if op.before_image is not None:
        return True
    return statement_determinism(op.statement) is not Determinism.DETERMINISTIC


class ScheduleCertifier:
    """Prove a proposed lane assignment serializable — or refute it.

    The catalogs must match the ones the conflict graph was built with
    (:meth:`for_analyzer` copies them off an ``OpDeltaAnalyzer``): a
    certifier running *blinder* than the scheduler would reject safe
    schedules it merely cannot see the safety of.
    """

    def __init__(
        self,
        *,
        key_columns: Mapping[str, str] | None = None,
        table_columns: Mapping[str, Sequence[str]] | None = None,
        structural: bool = True,
        metrics: MetricsLike | None = None,
    ) -> None:
        self._key_columns = key_columns
        self._table_columns = table_columns
        self._structural = structural
        self._metrics = metrics

    @classmethod
    def for_analyzer(cls, analyzer: Any) -> "ScheduleCertifier":
        """A certifier sharing the analyzer's catalogs (and metrics)."""
        return cls(
            key_columns=analyzer.key_columns or None,
            table_columns=analyzer.table_columns or None,
            metrics=analyzer.metrics,
        )

    # -- footprint plumbing -------------------------------------------

    def _registry(self) -> MetricsLike:
        if self._metrics is not None:
            return self._metrics
        return ambient_metrics() or NULL_REGISTRY

    def _footprint(self, op: OpDelta) -> StatementFootprint:
        # Shared replay-form footprint (pinned time, image-replay flag):
        # the certifier must judge reordering on the same model the
        # conflict graph was built with.
        return op_footprint(op, self._table_columns)

    def _commutes(self, a: StatementFootprint, b: StatementFootprint) -> bool:
        return commutes(
            a, b, self._key_columns, structural=self._structural
        )

    def _conflict_witness(
        self,
        ops_a: Sequence[OpDelta],
        fps_a: Sequence[StatementFootprint],
        ops_b: Sequence[OpDelta],
        fps_b: Sequence[StatementFootprint],
    ) -> tuple[OpDelta, OpDelta] | None:
        """First non-commuting op pair between two transactions."""
        for op_a, fp_a in zip(ops_a, fps_a):
            for op_b, fp_b in zip(ops_b, fps_b):
                if not self._commutes(fp_a, fp_b):
                    return op_a, op_b
        return None

    # -- certification ------------------------------------------------

    def certify(
        self,
        groups: Sequence[OpDeltaTransaction],
        graph: ConflictGraph,
        schedule: LaneSchedule,
    ) -> Certificate:
        """Statically prove ``schedule`` equivalent to the serial order."""
        groups = list(groups)
        findings: list[RaceFinding] = []
        findings.extend(self._check_coverage(groups, graph, schedule))
        footprints = [
            [self._footprint(op) for op in group.operations]
            for group in groups
        ]

        pairs_checked = 0
        conflicting = 0
        # Source order is the window order: capture commits transactions
        # in serial order, so groups[i] precedes groups[j] at the source
        # whenever i < j.
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                pairs_checked += 1
                witness_pair = self._conflict_witness(
                    groups[i].operations,
                    footprints[i],
                    groups[j].operations,
                    footprints[j],
                )
                if witness_pair is None:
                    continue
                conflicting += 1
                findings.extend(
                    self._check_conflicting_pair(
                        groups[i], groups[j], witness_pair, groups, schedule
                    )
                )

        reorder_checks = 0
        for group, fps in zip(groups, footprints):
            checked, reorder_findings = self._check_group_order(group, fps)
            reorder_checks += checked
            findings.extend(reorder_findings)

        certificate = Certificate(
            lanes=schedule.lane_count,
            transactions=len(groups),
            operations=sum(len(g.operations) for g in groups),
            pairs_checked=pairs_checked,
            conflicting_pairs=conflicting,
            reorder_checks=reorder_checks,
            findings=tuple(findings),
        )
        registry = self._registry()
        registry.counter("analysis.certify.schedules_checked").inc()
        if certificate.findings:
            registry.counter("analysis.certify.findings_raised").inc(
                len(certificate.findings)
            )
        return certificate

    def certify_serial(
        self, groups: Sequence[OpDeltaTransaction], graph: ConflictGraph
    ) -> Certificate:
        """Certify the given order as a single-lane schedule."""
        from .schedule import single_lane_schedule

        return self.certify(groups, graph, single_lane_schedule(groups))

    # -- individual obligations ---------------------------------------

    def _check_coverage(
        self,
        groups: Sequence[OpDeltaTransaction],
        graph: ConflictGraph,
        schedule: LaneSchedule,
    ) -> list[RaceFinding]:
        findings: list[RaceFinding] = []
        window_ids = [g.txn_id for g in groups]
        scheduled = list(schedule.transaction_ids)
        table = groups[0].operations[0].table if groups and groups[0].operations else ""

        def coverage_finding(code: str, txn_id: int, message: str) -> RaceFinding:
            return RaceFinding(
                code=code,
                message=message,
                table=table or "",
                txn_a=txn_id,
                txn_b=txn_id,
                op_a=f"txn{txn_id}",
                op_b=f"txn{txn_id}",
            )

        for txn_id in window_ids:
            if txn_id not in scheduled:
                findings.append(
                    coverage_finding(
                        "RACE005",
                        txn_id,
                        f"transaction {txn_id} is in the window but "
                        "missing from the schedule",
                    )
                )
        seen: set[int] = set()
        for txn_id in scheduled:
            if txn_id in seen:
                findings.append(
                    coverage_finding(
                        "RACE005",
                        txn_id,
                        f"transaction {txn_id} is scheduled more than once",
                    )
                )
            seen.add(txn_id)
            if txn_id not in window_ids:
                findings.append(
                    coverage_finding(
                        "RACE005",
                        txn_id,
                        f"scheduled transaction {txn_id} is not in the "
                        "window",
                    )
                )
            if txn_id not in graph.txn_ids:
                findings.append(
                    coverage_finding(
                        "RACE006",
                        txn_id,
                        f"scheduled transaction {txn_id} is outside the "
                        "conflict graph — its conflicts were never "
                        "analyzed",
                    )
                )
        return findings

    def _check_conflicting_pair(
        self,
        early: OpDeltaTransaction,
        late: OpDeltaTransaction,
        witness_pair: tuple[OpDelta, OpDelta],
        groups: Sequence[OpDeltaTransaction],
        schedule: LaneSchedule,
    ) -> list[RaceFinding]:
        op_a, op_b = witness_pair
        pos_a = schedule.position_of(early.txn_id)
        pos_b = schedule.position_of(late.txn_id)
        if pos_a is None or pos_b is None:
            return []  # already reported as RACE005
        lane_a, slot_a = pos_a
        lane_b, slot_b = pos_b
        if lane_a != lane_b:
            witness = self._witness_interleaving(
                groups, schedule, late, op_b, op_a
            )
            return [
                RaceFinding(
                    code="RACE001",
                    message=(
                        f"conflicting transactions {early.txn_id} and "
                        f"{late.txn_id} run on different lanes with no "
                        "ordering between them; the non-commuting pair "
                        "can execute in inverted source order"
                    ),
                    table=op_a.table or "",
                    txn_a=early.txn_id,
                    txn_b=late.txn_id,
                    op_a=correlation_id(op_a),
                    op_b=correlation_id(op_b),
                    lane_a=lane_a,
                    lane_b=lane_b,
                    witness=witness,
                )
            ]
        if slot_b < slot_a:
            lane_ops = self._lane_witness(
                groups, schedule.lanes[lane_a], late.txn_id, early.txn_id
            )
            return [
                RaceFinding(
                    code="RACE002",
                    message=(
                        f"conflicting transactions {early.txn_id} and "
                        f"{late.txn_id} share lane {lane_a} but in "
                        "inverted source order"
                    ),
                    table=op_a.table or "",
                    txn_a=early.txn_id,
                    txn_b=late.txn_id,
                    op_a=correlation_id(op_a),
                    op_b=correlation_id(op_b),
                    lane_a=lane_a,
                    lane_b=lane_a,
                    witness=lane_ops,
                )
            ]
        return []

    def _witness_interleaving(
        self,
        groups: Sequence[OpDeltaTransaction],
        schedule: LaneSchedule,
        late: OpDeltaTransaction,
        op_late: OpDelta,
        op_early: OpDelta,
    ) -> tuple[str, ...]:
        """An admitted op order executing ``op_late`` before ``op_early``.

        Lanes are unsynchronised, so "run ``late``'s lane up to and
        including the offending op, then the early op" is always
        admitted by the schedule — and differs from the serial order.
        """
        by_id = {g.txn_id: g for g in groups}
        lane_index = schedule.lane_of(late.txn_id)
        ids: list[str] = []
        if lane_index is not None:
            for txn_id in schedule.lanes[lane_index]:
                group = by_id.get(txn_id)
                if group is None:
                    continue
                for op in group.operations:
                    ids.append(correlation_id(op))
                    if (
                        txn_id == late.txn_id
                        and op.sequence == op_late.sequence
                    ):
                        break
                if txn_id == late.txn_id:
                    break
        ids.append(correlation_id(op_early))
        return tuple(ids)

    def _lane_witness(
        self,
        groups: Sequence[OpDeltaTransaction],
        lane: Sequence[int],
        first_id: int,
        second_id: int,
    ) -> tuple[str, ...]:
        """The lane's own op order from ``first_id`` through ``second_id``."""
        by_id = {g.txn_id: g for g in groups}
        ids: list[str] = []
        active = False
        for txn_id in lane:
            if txn_id == first_id:
                active = True
            if active:
                group = by_id.get(txn_id)
                if group is not None:
                    ids.extend(correlation_id(op) for op in group.operations)
            if txn_id == second_id:
                break
        return tuple(ids)

    def _check_group_order(
        self,
        group: OpDeltaTransaction,
        footprints: Sequence[StatementFootprint],
    ) -> tuple[int, list[RaceFinding]]:
        """Verify in-group op reorderings: proofs present, barriers kept."""
        findings: list[RaceFinding] = []
        checked = 0
        ops = group.operations
        for i in range(len(ops)):
            for j in range(i + 1, len(ops)):
                if ops[i].sequence <= ops[j].sequence:
                    continue  # capture order preserved
                checked += 1
                if _is_barrier(ops[i]) or _is_barrier(ops[j]):
                    findings.append(
                        RaceFinding(
                            code="RACE004",
                            message=(
                                "a compaction barrier (non-deterministic "
                                "or hybrid op) was moved relative to "
                                "its neighbours; barriers must keep "
                                "exact capture order"
                            ),
                            table=ops[i].table or "",
                            txn_a=group.txn_id,
                            txn_b=group.txn_id,
                            op_a=correlation_id(ops[i]),
                            op_b=correlation_id(ops[j]),
                        )
                    )
                elif not self._commutes(footprints[i], footprints[j]):
                    findings.append(
                        RaceFinding(
                            code="RACE003",
                            message=(
                                "in-group operations were reordered "
                                "against capture sequence without a "
                                "commutativity proof"
                            ),
                            table=ops[i].table or "",
                            txn_a=group.txn_id,
                            txn_b=group.txn_id,
                            op_a=correlation_id(ops[i]),
                            op_b=correlation_id(ops[j]),
                        )
                    )
        return checked, findings

    # -- compaction obligations ---------------------------------------

    def verify_compaction(
        self,
        groups: Sequence[OpDeltaTransaction],
        obligations: Iterable[Any],
    ) -> Certificate:
        """Re-prove every coalescer reordering against the original window.

        ``obligations`` are the ``reorder_obligations`` a
        :class:`~repro.compaction.report.CompactionReport` collected: each
        records that a combining statement's effect commuted past an
        intervening op.  The certifier re-derives each proof from the
        *uncompacted* groups; a failed proof means the compactor reordered
        something it should not have.
        """
        groups = list(groups)
        ops_by_key: dict[tuple[int, int], OpDelta] = {
            (group.txn_id, op.sequence): op
            for group in groups
            for op in group.operations
        }
        findings: list[RaceFinding] = []
        checked = 0
        for obligation in obligations:
            checked += 1
            moved = ops_by_key.get(
                (obligation.txn_id, obligation.moved_sequence)
            )
            over = ops_by_key.get(
                (obligation.txn_id, obligation.over_sequence)
            )
            if moved is None or over is None:
                findings.append(
                    RaceFinding(
                        code="RACE005",
                        message=(
                            "reorder obligation references an op the "
                            "window does not contain"
                        ),
                        table=obligation.table,
                        txn_a=obligation.txn_id,
                        txn_b=obligation.txn_id,
                        op_a=obligation.moved,
                        op_b=obligation.over,
                    )
                )
                continue
            if _is_barrier(moved) or _is_barrier(over):
                findings.append(
                    RaceFinding(
                        code="RACE004",
                        message=(
                            "the coalescer moved an effect across a "
                            "compaction barrier"
                        ),
                        table=obligation.table,
                        txn_a=obligation.txn_id,
                        txn_b=obligation.txn_id,
                        op_a=correlation_id(moved),
                        op_b=correlation_id(over),
                    )
                )
                continue
            if not self._commutes(self._footprint(moved), self._footprint(over)):
                findings.append(
                    RaceFinding(
                        code="RACE003",
                        message=(
                            "coalescer reordering is not backed by a "
                            "commutativity proof"
                        ),
                        table=obligation.table,
                        txn_a=obligation.txn_id,
                        txn_b=obligation.txn_id,
                        op_a=correlation_id(moved),
                        op_b=correlation_id(over),
                    )
                )
        certificate = Certificate(
            lanes=0,
            transactions=len(groups),
            operations=len(ops_by_key),
            pairs_checked=checked,
            conflicting_pairs=len(findings),
            reorder_checks=checked,
            findings=tuple(findings),
        )
        registry = self._registry()
        registry.counter("analysis.certify.obligations_checked").inc(checked)
        if findings:
            registry.counter("analysis.certify.findings_raised").inc(
                len(findings)
            )
        return certificate

"""Static schedule certification + runtime interference sanitizing.

The conflict graph (:mod:`repro.analysis.conflict`) *constructs* orders
that are claimed equivalent to the source serial order; this package
independently *proves* a proposed parallel schedule serializable before
any delta is applied, and cross-checks the verdict at runtime:

* :mod:`~repro.analysis.certify.schedule` — the explicit lane-assignment
  model (:class:`LaneSchedule`), the deterministic LPT packer mirroring
  ``run_conflict_schedule``, and the ``swap-lane-ops`` fault planter used
  by the race drill.
* :mod:`~repro.analysis.certify.certifier` — :class:`ScheduleCertifier`
  re-derives every pairwise conflict from pinned statement footprints and
  emits positioned ``RACE001``–``RACE006`` findings (offending op pair,
  correlation ids, witness interleaving) when a schedule is not provably
  serializable; :class:`Certificate` carries the verdict and the
  commuting-pair statistics.
* :mod:`~repro.analysis.certify.sanitizer` — an opt-in
  :class:`InterferenceSanitizer` stamping per-lane vector clocks on every
  table write under virtual time and flagging unordered conflicting
  accesses (``RACE101``–``RACE103``) as they happen.
"""

from .certifier import Certificate, RaceFinding, ScheduleCertifier
from .sanitizer import InterferenceSanitizer, VectorClock
from .schedule import (
    LaneSchedule,
    lpt_schedule,
    plant_lane_swap,
    single_lane_schedule,
)

__all__ = [
    "Certificate",
    "InterferenceSanitizer",
    "LaneSchedule",
    "RaceFinding",
    "ScheduleCertifier",
    "VectorClock",
    "lpt_schedule",
    "plant_lane_swap",
    "single_lane_schedule",
]

"""Runtime interference sanitizer: vector clocks over parallel lanes.

The TSan-style dynamic cross-check of the static certificate.  When
enabled, every applied operation is *observed* with the lane it ran on;
the sanitizer stamps a per-lane :class:`VectorClock` on each table/row
write and flags unordered conflicting accesses the moment the second
access of a racy pair is observed:

* ``RACE101`` — lost update: concurrent writes to the same column where
  one side is a read-modify-write (``qty = qty + 1``); one increment is
  silently dropped under some interleaving.
* ``RACE102`` — write–write race: concurrent writes to overlapping rows
  and columns with no ordering between them.
* ``RACE103`` — read-of-uncommitted: a statement's predicate or inputs
  read rows a concurrent, unordered writer is mutating.

The sanitizer is pure data-in, data-out: timestamps arrive as ``at_ms``
arguments and it never touches the virtual clock, so enabling it costs
**zero virtual time** — the bench experiment asserts this.  Row overlap
is judged conservatively from predicate ranges: two accesses whose row
sets cannot be proven disjoint are treated as overlapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ...core.opdelta import OpDelta, OpDeltaTransaction
from ...obs.pipeline.context import ambient_pipeline
from ..rwsets import StatementFootprint
from ..safety import commutes, op_footprint
from .certifier import RaceFinding, correlation_id
from .schedule import LaneSchedule


@dataclass(frozen=True)
class VectorClock:
    """One logical timestamp per lane; the partial order of parallelism."""

    counts: tuple[int, ...]

    @classmethod
    def zero(cls, lanes: int) -> "VectorClock":
        return cls(counts=(0,) * lanes)

    def tick(self, lane: int) -> "VectorClock":
        counts = list(self.counts)
        counts[lane] += 1
        return VectorClock(counts=tuple(counts))

    def merge(self, other: "VectorClock") -> "VectorClock":
        return VectorClock(
            counts=tuple(
                max(a, b) for a, b in zip(self.counts, other.counts)
            )
        )

    def happens_before(self, other: "VectorClock") -> bool:
        return self != other and all(
            a <= b for a, b in zip(self.counts, other.counts)
        )

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.happens_before(other) and not other.happens_before(
            self
        )


@dataclass(frozen=True)
class _Access:
    """One observed table access: who, where, when (logically)."""

    lane: int
    clock: VectorClock
    op: OpDelta
    footprint: StatementFootprint
    at_ms: float


def _write_columns(footprint: StatementFootprint) -> frozenset[str] | None:
    """Columns the statement writes; ``None`` means *all* columns."""
    if footprint.writes_all_columns:
        return None
    return frozenset(footprint.writes)


def _read_columns(footprint: StatementFootprint) -> frozenset[str] | None:
    if footprint.reads_all_columns:
        return None
    return frozenset(footprint.reads)


def _columns_overlap(
    a: frozenset[str] | None, b: frozenset[str] | None
) -> frozenset[str]:
    """The overlapping column set; non-empty when a race is possible."""
    if a is None and b is None:
        return frozenset({"*"})
    if a is None:
        return b if b else frozenset()
    if b is None:
        return a if a else frozenset()
    return a & b


class InterferenceSanitizer:
    """Detect unordered conflicting accesses as operations are applied.

    ``observe(lane, op, at_ms)`` is the single seam: the integrator (or
    the :meth:`replay` driver) calls it for every operation it applies,
    in the order the operations actually run.  Accesses on the same lane
    are ordered by the lane's own clock; accesses on different lanes are
    ordered only if a :meth:`fence` joined the clocks in between —
    otherwise they are concurrent and conflicting pairs are races.
    """

    def __init__(
        self,
        lanes: int,
        *,
        key_columns: Mapping[str, str] | None = None,
        table_columns: Mapping[str, Sequence[str]] | None = None,
        structural: bool = True,
    ) -> None:
        self._lanes = lanes
        self._key_columns = key_columns
        self._table_columns = table_columns
        self._structural = structural
        self._clocks = [VectorClock.zero(lanes) for _ in range(lanes)]
        self._accesses: list[_Access] = []
        self._seen_pairs: set[tuple[str, str]] = set()
        self._findings: list[RaceFinding] = []

    @classmethod
    def for_analyzer(cls, lanes: int, analyzer: object) -> "InterferenceSanitizer":
        return cls(
            lanes,
            key_columns=getattr(analyzer, "key_columns", None) or None,
            table_columns=getattr(analyzer, "table_columns", None) or None,
        )

    @property
    def findings(self) -> tuple[RaceFinding, ...]:
        return tuple(self._findings)

    @property
    def clean(self) -> bool:
        return not self._findings

    # -- observation seam ---------------------------------------------

    def observe(self, lane: int, op: OpDelta, at_ms: float) -> None:
        """Record one applied operation and check it against history."""
        if not 0 <= lane < self._lanes:
            lane = lane % self._lanes if self._lanes else 0
        clock = self._clocks[lane].tick(lane)
        self._clocks[lane] = clock
        footprint = op_footprint(op, self._table_columns)
        access = _Access(
            lane=lane, clock=clock, op=op, footprint=footprint, at_ms=at_ms
        )
        for prior in self._accesses:
            if prior.lane == lane:
                continue  # same-lane accesses are program-ordered
            if not prior.clock.concurrent_with(clock):
                continue  # a fence ordered them
            self._check_pair(prior, access)
        self._accesses.append(access)

    def fence(self, lane: int, other: int) -> None:
        """Order two lanes: ``other`` observed everything ``lane`` did."""
        self._clocks[other] = self._clocks[other].merge(self._clocks[lane])

    # -- race classification ------------------------------------------

    def _check_pair(self, prior: _Access, current: _Access) -> None:
        fp_a, fp_b = prior.footprint, current.footprint
        if fp_a.table != fp_b.table:
            return
        # Unordered accesses that provably commute are not races: the
        # final state is the same whichever lane wins.  This keeps the
        # dynamic verdict aligned with the static certifier — a race is
        # an unordered *conflicting* access.  The prover is the sole
        # gate: row-disjoint pairs normally commute, and when the prover
        # still refuses (an INSERT a non-literal UPDATE's predicate
        # could capture, say) the pair stays a race — column overlap
        # below only picks the classification.
        if commutes(
            fp_a, fp_b, self._key_columns, structural=self._structural
        ):
            return
        writes_a = _write_columns(fp_a)
        writes_b = _write_columns(fp_b)
        write_overlap = _columns_overlap(writes_a, writes_b)
        finding: RaceFinding | None = None
        if write_overlap:
            reads_a = _read_columns(fp_a) or frozenset()
            reads_b = _read_columns(fp_b) or frozenset()
            rmw = bool(
                {c for c in write_overlap if c in reads_a or c in reads_b}
            ) or fp_a.reads_all_columns or fp_b.reads_all_columns
            if rmw:
                finding = self._finding(
                    "RACE101",
                    prior,
                    current,
                    "lost update: concurrent read-modify-write and write "
                    f"of column(s) {self._cols(write_overlap)} with no "
                    "ordering between the lanes",
                )
            else:
                finding = self._finding(
                    "RACE102",
                    prior,
                    current,
                    "write-write race: concurrent unordered writes to "
                    f"column(s) {self._cols(write_overlap)} of "
                    "overlapping rows",
                )
        else:
            read_write = _columns_overlap(_read_columns(fp_a), writes_b)
            write_read = _columns_overlap(writes_a, _read_columns(fp_b))
            if read_write or write_read:
                finding = self._finding(
                    "RACE103",
                    prior,
                    current,
                    "read-of-uncommitted: a concurrent unordered writer "
                    "mutates column(s) "
                    f"{self._cols(read_write or write_read)} this "
                    "statement reads",
                )
            else:
                finding = self._finding(
                    "RACE102",
                    prior,
                    current,
                    "conflicting unordered accesses: the commutativity "
                    "prover found a dependency between these statements "
                    "with no ordering between the lanes",
                )
        if finding is not None:
            self._record(finding, current.at_ms)

    @staticmethod
    def _cols(columns: frozenset[str]) -> str:
        return ", ".join(sorted(columns))

    def _finding(
        self, code: str, prior: _Access, current: _Access, message: str
    ) -> RaceFinding:
        return RaceFinding(
            code=code,
            message=message,
            table=prior.footprint.table or "",
            txn_a=prior.op.txn_id,
            txn_b=current.op.txn_id,
            op_a=correlation_id(prior.op),
            op_b=correlation_id(current.op),
            lane_a=prior.lane,
            lane_b=current.lane,
        )

    def _record(self, finding: RaceFinding, at_ms: float) -> None:
        pair = tuple(sorted((finding.op_a, finding.op_b)))
        key = (pair[0], pair[1])
        if key in self._seen_pairs:
            return
        self._seen_pairs.add(key)
        self._findings.append(finding)
        recorder = ambient_pipeline()
        if recorder is not None:
            recorder.record_race(
                code=finding.code,
                op_a=finding.op_a,
                op_b=finding.op_b,
                table=finding.table,
                at_ms=at_ms,
                detail=finding.message,
            )

    # -- deterministic replay driver ----------------------------------

    def replay(
        self,
        groups: Sequence[OpDeltaTransaction],
        schedule: LaneSchedule,
    ) -> tuple[RaceFinding, ...]:
        """Drive the sanitizer over a schedule's worst-case interleaving.

        Round-robins one operation at a time across the lanes (an
        interleaving every unsynchronised schedule admits), feeding each
        op's own capture timestamp as its observation time — fully
        deterministic and independent of any clock.
        """
        by_id = {g.txn_id: g for g in groups}
        streams: list[list[OpDelta]] = []
        for lane in schedule.lanes:
            ops: list[OpDelta] = []
            for txn_id in lane:
                group = by_id.get(txn_id)
                if group is not None:
                    ops.extend(group.operations)
            streams.append(ops)
        cursors = [0] * len(streams)
        progressed = True
        while progressed:
            progressed = False
            for lane_index, stream in enumerate(streams):
                cursor = cursors[lane_index]
                if cursor < len(stream):
                    op = stream[cursor]
                    self.observe(lane_index, op, at_ms=op.captured_at)
                    cursors[lane_index] = cursor + 1
                    progressed = True
        return self.findings

"""Verification findings: stable ``RULE*`` codes with counterexamples.

Every finding the delta-rule verifier emits carries a stable code (so
tests, the ``repro-bench --verify-plans`` JSON and CI can match on them),
a severity, the operation kind it was found under, and — for equivalence
violations — the concrete counterexample scenario that reproduces it:
the micro-database rows, the operation SQL and the captured before image.
A counterexample is replayable: feeding it back through
:meth:`~repro.analysis.verify.verifier.DeltaRuleVerifier.replay` executes
the same scenario concretely and must diverge again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ...semantics.diagnostics import Severity

#: Stable finding codes (catalogue: docs/semantic-analysis.md).
#: Rule/recompute divergence with a concrete counterexample database + op.
RULE_DIVERGENCE = "RULE001"
#: Plan classified self-maintainable, but the rule reads captured base
#: state (the apply path demanded before images the plan said it never
#: needs).
RULE_READS_BASE = "RULE002"
#: Hybrid/source-query plan whose source query is never consulted: every
#: in-scope scenario applied from captured information alone.
RULE_SOURCE_UNUSED = "RULE003"
#: Aggregate retraction error on empty or NULL groups.
RULE_AGG_RETRACT = "RULE004"
#: Rule is not idempotent under redelivery, despite the at-least-once
#: transport: re-applying the same op silently lands on a different state.
RULE_NOT_IDEMPOTENT = "RULE005"

#: Codes that refute a plan (ERROR severity).  RULE003/RULE005 are
#: warnings: an over-conservative plan and a rule that relies on
#: exactly-once delivery are both *sound* under the integrator's
#: per-transaction apply, just worth surfacing.
ERROR_CODES = frozenset({RULE_DIVERGENCE, RULE_READS_BASE, RULE_AGG_RETRACT})


@dataclass(frozen=True)
class Counterexample:
    """One concrete scenario that exhibits a finding.

    ``rows`` is the micro-database the base table was seeded with (full
    base-schema width, in insertion order), ``op_sql`` the operation that
    was applied, and ``before_image`` the rows captured for the hybrid
    path (``None`` when the op was delivered lean).  ``dim_rows`` seeds
    the joined dimension table for join views.
    """

    rows: tuple[tuple[Any, ...], ...]
    op_sql: str
    op_kind: str
    before_image: tuple[tuple[Any, ...], ...] | None = None
    dim_rows: tuple[tuple[Any, ...], ...] = ()
    #: What diverged: sorted view state vs sorted recomputed state, or the
    #: apply-path error message for crash counterexamples.
    observed: str = ""
    expected: str = ""
    error: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "rows": [list(row) for row in self.rows],
            "op_sql": self.op_sql,
            "op_kind": self.op_kind,
            "before_image": (
                [list(row) for row in self.before_image]
                if self.before_image is not None
                else None
            ),
            "dim_rows": [list(row) for row in self.dim_rows],
            "observed": self.observed,
            "expected": self.expected,
            "error": self.error,
        }

    def render(self) -> str:
        lines = [f"db={list(self.rows)!r} op={self.op_sql!r}"]
        if self.before_image is not None:
            lines.append(f"before_image={list(self.before_image)!r}")
        if self.error:
            lines.append(f"error: {self.error}")
        else:
            lines.append(f"rule applied : {self.observed}")
            lines.append(f"recomputed   : {self.expected}")
        return "\n".join(lines)


@dataclass(frozen=True)
class VerifyFinding:
    """One verification finding: code, severity, kind, counterexample."""

    code: str
    severity: Severity
    view: str
    kind: str  # operation kind value ("INSERT"/"UPDATE"/"DELETE"), or "*"
    message: str
    counterexample: Counterexample | None = field(default=None)

    @property
    def refutes(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self) -> str:
        head = (
            f"{self.code}: {self.severity.value}: view {self.view!r} "
            f"[{self.kind}]: {self.message}"
        )
        if self.counterexample is None:
            return head
        body = "\n".join(
            "    " + line for line in self.counterexample.render().splitlines()
        )
        return head + "\n" + body

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "view": self.view,
            "kind": self.kind,
            "message": self.message,
            "counterexample": (
                self.counterexample.to_dict()
                if self.counterexample is not None
                else None
            ),
        }

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def refuting(findings: tuple[VerifyFinding, ...]) -> tuple[VerifyFinding, ...]:
    """The subset of ``findings`` that refute the plan (ERROR severity)."""
    return tuple(f for f in findings if f.refutes)

"""Small-scope value domains and scenario enumeration.

The verifier does not reason symbolically over unbounded databases; it
enumerates *abstract micro-databases* over a finite value domain derived
from the view definition itself — the small-scope hypothesis (Jackson):
delta-rule bugs that exist at all show up on databases of a couple of
rows drawn from the predicate's boundary values, NULLs, duplicate group
keys and fresh keys.

Per column the domain is:

* every literal the view predicate compares the column against, plus a
  neighbouring value on each side for ordered comparisons (so both
  outcomes of every boundary are populated);
* for grouping columns and aggregate arguments, two distinct values (so
  duplicate keys and cross-group moves exist in scope);
* ``NULL`` whenever the column is nullable (NULL groups, NULL aggregate
  inputs, NULL predicate outcomes);
* a pinned default for every other column.

Row templates vary one active column at a time from a base row
(one-hot), micro-databases are the empty database, every single-template
database and boundary pairs (including a duplicated template, so groups
with count 2 exist), and the operation grid per kind covers full and
partial inserts, constant and self-referential (``c = c + 1``)
assignments, and WHERE shapes over every boundary (equality, the
``IS NULL`` branch, key-targeted, and unguarded).

Everything here is deterministic: same definition + schema + scope in,
byte-identical scenario list out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ...engine.schema import TableSchema
from ...sql import ast_nodes as ast
from ...sql.ast_nodes import sql_literal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.selfmaint import ViewDefinition
    from ...warehouse.aggregates import AggregateViewDefinition


@dataclass(frozen=True)
class ScopeConfig:
    """Bounds of the small scope; part of the certificate fingerprint."""

    #: Rows per micro-database (0..max_rows).
    max_rows: int = 2
    #: Micro-databases enumerated per view (excess dropped, recorded).
    max_databases: int = 14
    #: Operations per DML kind (excess dropped, recorded).
    max_ops_per_kind: int = 10
    #: Clean scenarios per kind that also get the redelivery (idempotence)
    #: probe.  The default exceeds the scenario count at the default
    #: scope, so effectively every clean scenario is probed.
    redelivery_probes: int = 150

    def signature(self) -> tuple[int, int, int, int]:
        return (
            self.max_rows,
            self.max_databases,
            self.max_ops_per_kind,
            self.redelivery_probes,
        )


@dataclass(frozen=True)
class MicroOp:
    """One operation of the grid: SQL text plus its kind."""

    sql: str
    kind: str  # OpKind value


@dataclass
class Scope:
    """The enumerated small scope for one view: databases and ops."""

    databases: tuple[tuple[tuple[Any, ...], ...], ...]
    ops_by_kind: dict[str, tuple[MicroOp, ...]]
    dim_rows: tuple[tuple[Any, ...], ...] = ()
    #: Enumeration that was cut by the scope caps, for honest reporting.
    truncated: dict[str, int] = field(default_factory=dict)

    @property
    def scenario_count(self) -> int:
        ops = sum(len(v) for v in self.ops_by_kind.values())
        return len(self.databases) * ops


#: Fresh key values for inserted rows — outside the seeded key range.
_INSERT_KEY_BASE = 90

_STRING_DEFAULT = "aa"
_STRING_OTHER = "zz"


def _column_defaults(column) -> Any:
    """The pinned value an inactive column takes in every row."""
    name = column.datatype.name
    if name == "INTEGER":
        return 0
    if name == "FLOAT":
        return 0.0
    if name == "TIMESTAMP":
        return None if column.nullable else 0.0
    return _STRING_DEFAULT  # CHAR


def _neighbours(value: Any) -> list[Any]:
    if isinstance(value, bool):  # pragma: no cover - no boolean columns
        return [value]
    if isinstance(value, int):
        return [value - 1, value, value + 1]
    if isinstance(value, float):
        return [value - 0.5, value, value + 0.5]
    return [value]


def _boundary_literals(
    predicate: ast.Expression | None,
) -> dict[str, list[Any]]:
    """Column -> literals the predicate compares it against (with
    neighbours for ordered comparisons)."""
    found: dict[str, list[Any]] = {}

    def note(column: str, values: Iterable[Any]) -> None:
        bucket = found.setdefault(column, [])
        for value in values:
            if value not in bucket:
                bucket.append(value)

    def walk(node: ast.Expression) -> None:
        if isinstance(node, ast.BinaryOp):
            pair = _column_literal_pair(node.left, node.right)
            if pair is not None:
                column, value = pair
                if node.op in ("<", "<=", ">", ">="):
                    note(column, _neighbours(value))
                else:
                    note(column, [value])
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.InList):
            if isinstance(node.expr, ast.ColumnRef):
                note(
                    node.expr.name,
                    [
                        item.value
                        for item in node.items
                        if isinstance(item, ast.Literal)
                    ],
                )
        elif isinstance(node, ast.Between):
            if isinstance(node.expr, ast.ColumnRef):
                for bound in (node.low, node.high):
                    if isinstance(bound, ast.Literal):
                        note(node.expr.name, _neighbours(bound.value))
        elif isinstance(node, ast.IsNull):
            pass  # nullability already contributes None to the domain

    if predicate is not None:
        walk(predicate)
    return found


def _column_literal_pair(
    left: ast.Expression, right: ast.Expression
) -> tuple[str, Any] | None:
    if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
        return left.name, right.value
    if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
        return right.name, left.value
    return None


def _alternative(value: Any, column) -> Any:
    """A value guaranteed distinct from ``value`` for the same column."""
    if isinstance(value, bool):  # pragma: no cover - no boolean columns
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.5
    if isinstance(value, str):
        return _STRING_OTHER if value != _STRING_OTHER else _STRING_DEFAULT
    return _column_defaults(column)


def column_domain(
    schema: TableSchema,
    name: str,
    boundaries: dict[str, list[Any]],
    *,
    cap: int = 3,
) -> tuple[Any, ...]:
    """The candidate values an active column ranges over (NULL last)."""
    column = schema.column(name)
    values: list[Any] = []
    for value in boundaries.get(name, []):
        if value not in values:
            values.append(value)
    if not values:
        base = _column_defaults(column)
        if base is None:  # nullable timestamp default
            base = 0.0
        values.append(base)
    if len(values) < 2:
        values.append(_alternative(values[0], column))
    values = values[:cap]
    if column.nullable and None not in values:
        values.append(None)
    return tuple(values)


@dataclass(frozen=True)
class ViewShape:
    """The scope-relevant structure of a view, SPJ or aggregate."""

    base_table: str
    key_column: str | None
    #: Columns whose values the enumeration varies.
    active_columns: tuple[str, ...]
    #: Boundary literals extracted from the view predicate.
    boundaries: dict[str, list[Any]]
    #: Join left column (SPJ join views) or None.
    join_left: str | None = None
    dim_schema: TableSchema | None = None
    dim_key: str | None = None


def spj_shape(
    definition: "ViewDefinition",
    schema: TableSchema,
    dim_schema: TableSchema | None = None,
) -> ViewShape:
    boundaries = _boundary_literals(definition.predicate_ast())
    active: list[str] = []

    def activate(name: str) -> None:
        if schema.has_column(name) and name != schema.primary_key:
            if name not in active:
                active.append(name)

    for name in sorted(boundaries):
        activate(name)
    # One projected non-predicate column (visible updates) and one hidden
    # column (ops over columns the view cannot see), when they exist.
    for name in definition.columns:
        if name not in boundaries and name != definition.key_column:
            activate(name)
            break
    for name in schema.column_names:
        if name not in definition.columns and name not in boundaries:
            activate(name)
            break
    join_left = None
    dim_key = None
    if definition.join is not None:
        join_left = definition.join.left_column
        dim_key = definition.join.right_column
        activate(join_left)
    return ViewShape(
        base_table=definition.base_table,
        key_column=definition.key_column or schema.primary_key,
        active_columns=tuple(active),
        boundaries=boundaries,
        join_left=join_left,
        dim_schema=dim_schema,
        dim_key=dim_key,
    )


def aggregate_shape(
    definition: "AggregateViewDefinition", schema: TableSchema
) -> ViewShape:
    boundaries = _boundary_literals(definition.predicate_ast())
    active: list[str] = []
    for name in (
        *definition.group_by,
        *(
            spec.argument
            for spec in definition.aggregates
            if spec.argument is not None
        ),
        *sorted(boundaries),
    ):
        if name != schema.primary_key and name not in active:
            active.append(name)
    return ViewShape(
        base_table=definition.base_table,
        key_column=schema.primary_key,
        active_columns=tuple(active),
        boundaries=boundaries,
    )


def enumerate_scope(
    shape: ViewShape, schema: TableSchema, config: ScopeConfig
) -> Scope:
    """Enumerate the micro-databases and operation grid for one view."""
    domains = {
        name: column_domain(schema, name, shape.boundaries)
        for name in shape.active_columns
    }
    key = shape.key_column
    truncated: dict[str, int] = {}

    # ---- row templates: base row + one-hot variants ---------------------
    def base_value(name: str) -> Any:
        if name in domains:
            return domains[name][0]
        return _column_defaults(schema.column(name))

    def make_row(key_value: int, overrides: dict[str, Any]) -> tuple:
        values = []
        for column in schema:
            if column.name == key:
                values.append(key_value)
            elif column.name in overrides:
                values.append(overrides[column.name])
            else:
                values.append(base_value(column.name))
        return tuple(values)

    templates: list[dict[str, Any]] = [{}]
    for name in shape.active_columns:
        for value in domains[name][1:]:
            if value is None and not schema.column(name).nullable:
                continue
            templates.append({name: value})

    # ---- micro-databases ------------------------------------------------
    databases: list[tuple[tuple[Any, ...], ...]] = [()]
    for template in templates:
        databases.append((make_row(1, template),))
    for template in templates[1:]:
        databases.append((make_row(1, {}), make_row(2, template)))
    # Duplicate contributions: two rows sharing every active value.
    databases.append((make_row(1, {}), make_row(2, {})))
    if len(databases) > config.max_databases:
        truncated["databases"] = len(databases) - config.max_databases
        databases = databases[: config.max_databases]

    # ---- operation grid -------------------------------------------------
    wheres: list[str | None] = [None]
    if key is not None:
        wheres.append(f"{key} = 1")
    for name in shape.active_columns:
        for value in domains[name]:
            if value is None:
                wheres.append(f"{name} IS NULL")
            else:
                wheres.append(f"{name} = {sql_literal(value)}")

    inserts: list[MicroOp] = []
    not_null = [c.name for c in schema if not c.nullable]
    for index, template in enumerate(templates):
        row = make_row(_INSERT_KEY_BASE + index, template)
        columns = ", ".join(schema.column_names)
        values = ", ".join(sql_literal(v) for v in row)
        inserts.append(
            MicroOp(
                f"INSERT INTO {schema.name} ({columns}) VALUES ({values})",
                "INSERT",
            )
        )
    # One partial insert: only the NOT NULL columns listed, the rest of
    # the row defaulting to NULL at both the base and the view.
    partial = make_row(_INSERT_KEY_BASE + len(templates), {})
    columns = ", ".join(not_null)
    values = ", ".join(
        sql_literal(partial[schema.column_index(name)]) for name in not_null
    )
    inserts.append(
        MicroOp(
            f"INSERT INTO {schema.name} ({columns}) VALUES ({values})",
            "INSERT",
        )
    )

    assignments: list[str] = []
    for name in shape.active_columns:
        column = schema.column(name)
        for value in domains[name]:
            if value is None and not column.nullable:
                continue
            assignments.append(f"{name} = {sql_literal(value)}")
        if column.datatype.name in ("INTEGER", "FLOAT"):
            assignments.append(f"{name} = {name} + 1")
    updates = [
        MicroOp(
            f"UPDATE {schema.name} SET {assignment}"
            + (f" WHERE {where}" if where is not None else ""),
            "UPDATE",
        )
        for assignment in assignments
        for where in (None, *([wheres[1]] if len(wheres) > 1 else []))
    ]
    # Boundary-targeted updates: first assignment against every WHERE.
    if assignments:
        updates.extend(
            MicroOp(
                f"UPDATE {schema.name} SET {assignments[0]} WHERE {where}",
                "UPDATE",
            )
            for where in wheres[2:]
        )
    deletes = [
        MicroOp(
            f"DELETE FROM {schema.name}"
            + (f" WHERE {where}" if where is not None else ""),
            "DELETE",
        )
        for where in wheres
    ]

    ops_by_kind: dict[str, tuple[MicroOp, ...]] = {}
    for kind, ops in (
        ("INSERT", inserts),
        ("UPDATE", updates),
        ("DELETE", deletes),
    ):
        deduped: list[MicroOp] = []
        seen: set[str] = set()
        for op in ops:
            if op.sql not in seen:
                seen.add(op.sql)
                deduped.append(op)
        if len(deduped) > config.max_ops_per_kind:
            truncated[f"ops_{kind.lower()}"] = (
                len(deduped) - config.max_ops_per_kind
            )
            deduped = deduped[: config.max_ops_per_kind]
        ops_by_kind[kind] = tuple(deduped)

    # ---- dimension rows for join views ----------------------------------
    # Only the first in-domain join-key value gets a dimension row, so the
    # scope covers both the matched and the dangling side of the join.
    dim_rows: tuple[tuple[Any, ...], ...] = ()
    if shape.join_left is not None and shape.dim_schema is not None:
        assert shape.dim_key is not None
        left_domain = domains.get(shape.join_left, (1,))
        matched = [v for v in left_domain if v is not None][:1]
        dim_rows = tuple(
            tuple(
                key_value if column.name == shape.dim_key
                else _column_defaults(column)
                for column in shape.dim_schema
            )
            for key_value in matched
        )

    return Scope(
        databases=tuple(databases),
        ops_by_kind=ops_by_kind,
        dim_rows=dim_rows,
        truncated=truncated,
    )

"""Plan certificates and the pay-once certificate cache.

A :class:`PlanCertificate` is the durable outcome of one bounded
model-checking pass over a compiled maintenance plan: the verdict, the
findings, and the fingerprints that scope its validity — the **view SQL
hash** (a canonical rendering of the view definition plus the compiled
rules and the scope bounds) and the **schema fingerprint** of the base
(and joined) table.  Re-verifying the same (view, schema) pair is a
cache hit: the :class:`CertificateCache` is keyed by exactly that pair,
so verification is pay-once per process — the integrator's pre-flight
and repeated ``repro-bench --verify-plans`` runs reuse the stored
certificate at zero virtual-time cost.

Any change that could invalidate the proof changes the key: editing the
view definition or the compiled rules changes the SQL hash; migrating
the base table changes the schema fingerprint; widening or narrowing the
scope changes the hash too (the scope signature is folded in).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ...engine.schema import TableSchema
from .domain import ScopeConfig
from .findings import VerifyFinding, refuting

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.selfmaint import ViewDefinition
    from ...semantics.planner import MaintenancePlan
    from ...warehouse.aggregates import AggregateViewDefinition

#: Certificate verdicts.
VERIFIED = "VERIFIED"
REFUTED = "REFUTED"


def view_sql(definition: "ViewDefinition | AggregateViewDefinition") -> str:
    """A canonical SQL-ish rendering of a view definition, for hashing."""
    # Duck-typed over the two definition dataclasses: SPJ views have
    # ``columns``; aggregate views have ``group_by``/``aggregates``.
    if hasattr(definition, "group_by"):
        aggregates = ", ".join(
            f"{spec.function}({spec.argument if spec.argument else '*'})"
            for spec in definition.aggregates
        )
        text = (
            f"SELECT {', '.join(definition.group_by)}, {aggregates} "
            f"FROM {definition.base_table}"
        )
        if definition.predicate:
            text += f" WHERE {definition.predicate}"
        return text + f" GROUP BY {', '.join(definition.group_by)}"
    text = f"SELECT {', '.join(definition.columns)} FROM {definition.base_table}"
    join = definition.join
    if join is not None:
        text += (
            f" JOIN {join.table} ON {join.left_column} = {join.right_column}"
            f" PROJECT ({', '.join(join.columns)})"
            f" LOCAL={join.available_at_warehouse}"
        )
    if definition.predicate:
        text += f" WHERE {definition.predicate}"
    if definition.key_column:
        text += f" KEY {definition.key_column}"
    return text


def view_sql_hash(
    definition: "ViewDefinition | AggregateViewDefinition",
    plan: "MaintenancePlan",
    scope: ScopeConfig,
    version: int,
) -> str:
    """Hash of everything the proof depends on besides the schema."""
    rules = ";".join(
        f"{r.kind.value}:{r.action.value}:{int(r.needs_before_image)}"
        for r in plan.rules
    )
    subject = "|".join(
        (
            view_sql(definition),
            plan.classification.value,
            rules,
            repr(scope.signature()),
            f"v{version}",
        )
    )
    return hashlib.sha256(subject.encode("utf-8")).hexdigest()


def schema_fingerprint(
    schema: TableSchema, dim_schema: TableSchema | None = None
) -> str:
    subject = repr(schema.signature())
    if dim_schema is not None:
        subject += "|" + repr(dim_schema.signature())
    return hashlib.sha256(subject.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PlanCertificate:
    """The outcome of verifying one maintenance plan in the small scope."""

    view: str
    verdict: str  # VERIFIED | REFUTED
    view_sql_hash: str
    schema_fingerprint: str
    findings: tuple[VerifyFinding, ...]
    #: Scenarios executed, total and per operation kind.
    scenarios: int
    scenarios_by_kind: tuple[tuple[str, int], ...]
    databases: int
    #: Enumeration cut by the scope caps ({} when exhaustive within scope).
    truncated: tuple[tuple[str, int], ...]
    scope: ScopeConfig = field(default_factory=ScopeConfig)

    @property
    def verified(self) -> bool:
        return self.verdict == VERIFIED

    @property
    def stamp(self) -> str:
        """Short certificate stamp for integration reports."""
        return f"{self.view_sql_hash[:12]}:{self.verdict}"

    @property
    def key(self) -> tuple[str, str]:
        return (self.view_sql_hash, self.schema_fingerprint)

    def render(self) -> str:
        lines = [
            f"view {self.view!r}: {self.verdict} "
            f"({self.scenarios} scenarios over {self.databases} databases; "
            f"certificate {self.stamp})"
        ]
        lines.extend(finding.render() for finding in self.findings)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "view": self.view,
            "verdict": self.verdict,
            "view_sql_hash": self.view_sql_hash,
            "schema_fingerprint": self.schema_fingerprint,
            "stamp": self.stamp,
            "scenarios": self.scenarios,
            "scenarios_by_kind": dict(self.scenarios_by_kind),
            "databases": self.databases,
            "truncated": dict(self.truncated),
            "scope": {
                "max_rows": self.scope.max_rows,
                "max_databases": self.scope.max_databases,
                "max_ops_per_kind": self.scope.max_ops_per_kind,
                "redelivery_probes": self.scope.redelivery_probes,
            },
            "findings": [finding.to_dict() for finding in self.findings],
        }


def verdict_for(findings: tuple[VerifyFinding, ...]) -> str:
    """VERIFIED unless some finding refutes the plan (ERROR severity)."""
    return REFUTED if refuting(findings) else VERIFIED


class CertificateCache:
    """Pay-once store keyed by (view SQL hash, schema fingerprint)."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], PlanCertificate] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, sql_hash: str, schema_fp: str
    ) -> PlanCertificate | None:
        certificate = self._entries.get((sql_hash, schema_fp))
        if certificate is not None:
            self.hits += 1
        else:
            self.misses += 1
        return certificate

    def store(self, certificate: PlanCertificate) -> PlanCertificate:
        self._entries[certificate.key] = certificate
        return certificate

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide default cache: every integrator construction and bench
#: pass that does not bring its own cache shares this one, so each
#: distinct (view, schema) pair is verified at most once per process.
DEFAULT_CERTIFICATE_CACHE = CertificateCache()

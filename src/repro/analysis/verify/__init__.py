"""Delta-rule verification: small-scope equivalence proofs for plans.

The :class:`DeltaRuleVerifier` independently re-proves what the
:class:`~repro.semantics.planner.ViewMaintenancePlanner` merely claims:
that applying each compiled per-OpKind delta rule to a materialised view
lands on exactly the state recomputation from the mutated base would.
The proof is bounded (the small-scope hypothesis: enumerate every
micro-database over the predicate's boundary values, NULLs, duplicate
keys and empty groups up to :class:`ScopeConfig` limits), the oracle is
the SQL executor (independent of the view's incremental machinery), and
the outcome is a cached :class:`PlanCertificate` the integrator demands
before it will drive a plan.

Findings carry stable codes RULE001..RULE005 — see
:mod:`~repro.analysis.verify.findings` and docs/semantic-analysis.md.
"""

from .certificate import (
    DEFAULT_CERTIFICATE_CACHE,
    REFUTED,
    VERIFIED,
    CertificateCache,
    PlanCertificate,
    schema_fingerprint,
    verdict_for,
    view_sql,
    view_sql_hash,
)
from .domain import (
    MicroOp,
    Scope,
    ScopeConfig,
    ViewShape,
    aggregate_shape,
    column_domain,
    enumerate_scope,
    spj_shape,
)
from .findings import (
    ERROR_CODES,
    RULE_AGG_RETRACT,
    RULE_DIVERGENCE,
    RULE_NOT_IDEMPOTENT,
    RULE_READS_BASE,
    RULE_SOURCE_UNUSED,
    Counterexample,
    VerifyFinding,
    refuting,
)
from .verifier import VERIFIER_VERSION, DeltaRuleVerifier

__all__ = [
    "DEFAULT_CERTIFICATE_CACHE",
    "REFUTED",
    "VERIFIED",
    "CertificateCache",
    "PlanCertificate",
    "schema_fingerprint",
    "verdict_for",
    "view_sql",
    "view_sql_hash",
    "MicroOp",
    "Scope",
    "ScopeConfig",
    "ViewShape",
    "aggregate_shape",
    "column_domain",
    "enumerate_scope",
    "spj_shape",
    "ERROR_CODES",
    "RULE_AGG_RETRACT",
    "RULE_DIVERGENCE",
    "RULE_NOT_IDEMPOTENT",
    "RULE_READS_BASE",
    "RULE_SOURCE_UNUSED",
    "Counterexample",
    "VerifyFinding",
    "refuting",
    "VERIFIER_VERSION",
    "DeltaRuleVerifier",
]

"""The delta-rule verifier: bounded equivalence proofs for compiled plans.

For each (view plan x operation kind) the verifier exhaustively runs the
small scope enumerated by :mod:`~repro.analysis.verify.domain`: it seeds
a scratch database with each abstract micro-database, captures the
operation exactly as the pipeline would (lean when the rule claims
op-only, with python-evaluated before images when the rule asks for
them), applies the compiled :class:`~repro.semantics.planner.DeltaRule`
through the real view maintenance code, recomputes the view from the
mutated base **via the SQL executor** — an oracle independent of the
view's own incremental machinery, so a corrupted apply path cannot
vouch for itself — and compares states.

Soundness of the verdict is scoped, not absolute: ``VERIFIED`` means *no
divergence exists within the enumerated scope* (every predicate
boundary, NULL, duplicate key, empty group and fresh key combination up
to ``max_rows``).  The maintenance rules under test are piecewise
per-row decisions over exactly those case splits, which is why the small
scope is where their bugs live; ``REFUTED`` is unconditional — it comes
with a concrete, replayable counterexample.

Scratch databases run on private virtual clocks by default, so
verification costs the pipeline zero virtual time; pass ``clock=`` to
meter the proof cost explicitly (the bench does, to show the pay-once
cache amortising it away).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ...clock import VirtualClock
from ...core.opdelta import OpDelta, OpKind
from ...engine.database import Database
from ...engine.schema import TableSchema
from ...engine.table import InsertMode
from ...errors import AnalysisError, ReproError, WarehouseError
from ...semantics.diagnostics import Severity
from ...sql.executor import Executor
from ...sql.expressions import evaluate, is_true
from ...sql.parser import parse
from .certificate import (
    DEFAULT_CERTIFICATE_CACHE,
    CertificateCache,
    PlanCertificate,
    schema_fingerprint,
    verdict_for,
    view_sql_hash,
)
from .domain import (
    MicroOp,
    Scope,
    ScopeConfig,
    aggregate_shape,
    enumerate_scope,
    spj_shape,
)
from .findings import (
    RULE_AGG_RETRACT,
    RULE_DIVERGENCE,
    RULE_NOT_IDEMPOTENT,
    RULE_READS_BASE,
    RULE_SOURCE_UNUSED,
    Counterexample,
    VerifyFinding,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.selfmaint import ViewDefinition
    from ...semantics.planner import DeltaRule, MaintenancePlan
    from ...warehouse.aggregates import AggregateViewDefinition

#: Bump on any change to the scenario semantics: stored certificates for
#: older verifier versions must not satisfy the new pre-flight.
VERIFIER_VERSION = 1

#: ``(database, definition, base_schema) -> view object`` construction
#: hooks.  The defaults build the production view classes; the bench's
#: corrupt-delta-rule drill swaps in a deliberately broken subclass.
ViewFactory = Callable[[Database, Any, TableSchema], Any]


def _default_view_factory(
    database: Database, definition: Any, schema: TableSchema
) -> Any:
    from ...warehouse.views import MaterializedView

    return MaterializedView(database, definition, schema)


def _default_aggregate_factory(
    database: Database, definition: Any, schema: TableSchema
) -> Any:
    from ...warehouse.aggregates import MaterializedAggregateView

    return MaterializedAggregateView(database, definition, schema)


def _sort_key(row: tuple) -> tuple:
    """Total order over heterogeneous rows (None/number/str mix)."""
    key = []
    for value in row:
        if value is None:
            key.append((2, 0.0, ""))
        elif isinstance(value, (int, float)):
            key.append((0, float(value), ""))
        else:
            key.append((1, 0.0, str(value)))
    return tuple(key)


def _norm_number(value: Any) -> Any:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return round(float(value), 9)
    return value


@dataclass
class _ScenarioOutcome:
    """What one (micro-database, op) scenario did."""

    skipped: bool = False  # the base itself rejected the op
    crashed: bool = False
    needs_image_crash: bool = False
    source_query_crash: bool = False
    diverged: bool = False
    redelivery_diverged: bool = False
    error: str = ""
    observed: str = ""
    expected: str = ""
    before_image: tuple[tuple[Any, ...], ...] | None = None
    #: Aggregate scenarios: a group emptied or a NULL contribution moved.
    empty_or_null_group: bool = False

    @property
    def clean(self) -> bool:
        return not (self.skipped or self.crashed or self.diverged)


class _Subject:
    """One view under test: definition, schema, factory, oracle shape."""

    def __init__(
        self,
        plan: "MaintenancePlan",
        definition: Any,
        schema: TableSchema,
        dim_schema: TableSchema | None,
        view_factory: ViewFactory,
        aggregate_factory: ViewFactory,
    ) -> None:
        self.plan = plan
        self.definition = definition
        self.schema = schema
        self.dim_schema = dim_schema
        self.is_aggregate = plan.view_kind == "aggregate"
        self.factory = aggregate_factory if self.is_aggregate else view_factory
        if self.is_aggregate:
            self.shape = aggregate_shape(definition, schema)
        else:
            self.shape = spj_shape(definition, schema, dim_schema)

    @property
    def group_sensitive_columns(self) -> tuple[int, ...]:
        """Base-row positions whose NULLs make aggregate retraction hard."""
        if not self.is_aggregate:
            return ()
        positions = [
            self.schema.column_index(name)
            for name in self.definition.group_by
        ]
        positions.extend(
            self.schema.column_index(spec.argument)
            for spec in self.definition.aggregates
            if spec.argument is not None
        )
        return tuple(dict.fromkeys(positions))


class DeltaRuleVerifier:
    """Small-scope bounded model checker for maintenance plans."""

    def __init__(
        self,
        *,
        scope: ScopeConfig | None = None,
        cache: CertificateCache | None = None,
        clock: VirtualClock | None = None,
        view_factory: ViewFactory | None = None,
        aggregate_factory: ViewFactory | None = None,
    ) -> None:
        self._scope = scope if scope is not None else ScopeConfig()
        self.cache = cache if cache is not None else DEFAULT_CERTIFICATE_CACHE
        self._clock = clock
        self._view_factory = (
            view_factory if view_factory is not None else _default_view_factory
        )
        self._aggregate_factory = (
            aggregate_factory
            if aggregate_factory is not None
            else _default_aggregate_factory
        )

    # ------------------------------------------------------------ certifying
    def certify_plan(
        self,
        plan: "MaintenancePlan",
        definition: "ViewDefinition | AggregateViewDefinition",
        schema: TableSchema,
        *,
        dim_schema: TableSchema | None = None,
    ) -> PlanCertificate:
        """Verify one compiled plan; cached by (SQL hash, schema print)."""
        if not plan.valid:
            raise AnalysisError(
                f"plan for view {plan.view!r} is semantically invalid; "
                "fix its diagnostics before asking for a certificate"
            )
        sql_hash = view_sql_hash(definition, plan, self._scope, VERIFIER_VERSION)
        schema_fp = schema_fingerprint(schema, dim_schema)
        cached = self.cache.lookup(sql_hash, schema_fp)
        if cached is not None:
            return cached

        subject = _Subject(
            plan,
            definition,
            schema,
            dim_schema,
            self._view_factory,
            self._aggregate_factory,
        )
        scope = enumerate_scope(subject.shape, schema, self._scope)
        findings, counts, databases_run = self._check_subject(subject, scope)
        certificate = PlanCertificate(
            view=plan.view,
            verdict=verdict_for(tuple(findings)),
            view_sql_hash=sql_hash,
            schema_fingerprint=schema_fp,
            findings=tuple(findings),
            scenarios=sum(counts.values()),
            scenarios_by_kind=tuple(sorted(counts.items())),
            databases=databases_run,
            truncated=tuple(sorted(scope.truncated.items())),
            scope=self._scope,
        )
        return self.cache.store(certificate)

    def certify_catalog(
        self,
        plans: Mapping[str, "MaintenancePlan"],
        definitions: Mapping[str, Any],
        schemas: Mapping[str, TableSchema],
    ) -> dict[str, PlanCertificate]:
        """Certify every plan; ``definitions`` is keyed by view name and
        ``schemas`` by table name (joined dimension schemas included)."""
        certificates: dict[str, PlanCertificate] = {}
        for name, plan in plans.items():
            definition = definitions[name]
            schema = schemas[plan.base_table]
            dim_schema = None
            join = getattr(definition, "join", None)
            if join is not None and join.columns:
                dim_schema = schemas.get(join.table)
            certificates[name] = self.certify_plan(
                plan, definition, schema, dim_schema=dim_schema
            )
        return certificates

    def replay(
        self,
        plan: "MaintenancePlan",
        definition: "ViewDefinition | AggregateViewDefinition",
        schema: TableSchema,
        finding: VerifyFinding,
        *,
        dim_schema: TableSchema | None = None,
    ) -> bool:
        """Re-execute a finding's counterexample concretely.

        Returns whether the scenario misbehaves again (diverges, crashes,
        or — for RULE005 — diverges under redelivery).  A counterexample
        that replays clean would mean the finding was spurious.
        """
        example = finding.counterexample
        if example is None:
            raise AnalysisError(f"finding {finding.code} has no counterexample")
        subject = _Subject(
            plan,
            definition,
            schema,
            dim_schema,
            self._view_factory,
            self._aggregate_factory,
        )
        rule = self._rule_under_test(subject, OpKind(example.op_kind))
        context = self._build_context(subject, example.rows, example.dim_rows)
        outcome = self._run_scenario(
            subject,
            context,
            MicroOp(example.op_sql, example.op_kind),
            rule,
            probe_redelivery=finding.code == RULE_NOT_IDEMPOTENT,
        )
        if finding.code == RULE_NOT_IDEMPOTENT:
            return outcome.redelivery_diverged
        return outcome.crashed or outcome.diverged

    # --------------------------------------------------------------- checking
    def _rule_under_test(
        self, subject: _Subject, kind: OpKind
    ) -> "DeltaRule | None":
        """The rule a scenario applies: ``None`` probes the per-statement
        fallback (how source-query plans are checked for RULE003)."""
        from ...semantics.planner import RuleAction, ViewClass

        if subject.plan.classification is ViewClass.SOURCE_QUERY_NEEDED:
            return None
        rule = subject.plan.rule_for(kind)
        if rule.action is RuleAction.SOURCE_QUERY:  # pragma: no cover
            return None
        return rule

    def _check_subject(
        self, subject: _Subject, scope: Scope
    ) -> tuple[list[VerifyFinding], dict[str, int], int]:
        from ...semantics.planner import ViewClass

        source_query_plan = (
            subject.plan.classification is ViewClass.SOURCE_QUERY_NEEDED
        )
        findings: list[VerifyFinding] = []
        emitted: set[tuple[str, str]] = set()
        dead_kinds: set[str] = set()
        counts: dict[str, int] = {kind: 0 for kind in scope.ops_by_kind}
        probes: dict[str, int] = {kind: 0 for kind in scope.ops_by_kind}
        source_consulted = False
        fallback_unclean = False
        databases_run = 0

        def emit(
            code: str,
            kind: str,
            message: str,
            example: Counterexample | None,
            severity: Severity,
        ) -> None:
            if (code, kind) in emitted:
                return
            emitted.add((code, kind))
            findings.append(
                VerifyFinding(
                    code=code,
                    severity=severity,
                    view=subject.plan.view,
                    kind=kind,
                    message=message,
                    counterexample=example,
                )
            )

        for rows in scope.databases:
            databases_run += 1
            for kind, ops in scope.ops_by_kind.items():
                if kind in dead_kinds:
                    continue
                rule = self._rule_under_test(subject, OpKind(kind))
                for op in ops:
                    probe = (
                        rule is not None
                        and probes[kind] < self._scope.redelivery_probes
                        and (RULE_NOT_IDEMPOTENT, kind) not in emitted
                    )
                    # Every scenario gets a pristine scratch database:
                    # abort-compensated storage is never reused, so one
                    # scenario can never contaminate the next.
                    try:
                        context = self._build_context(
                            subject, rows, scope.dim_rows
                        )
                    except ReproError as exc:
                        emit(
                            RULE_DIVERGENCE,
                            "*",
                            f"scope database could not be built: {exc}",
                            Counterexample(
                                rows=rows, op_sql="", op_kind="*",
                                error=str(exc),
                            ),
                            Severity.ERROR,
                        )
                        return findings, counts, databases_run
                    outcome = self._run_scenario(
                        subject, context, op, rule, probe_redelivery=probe
                    )
                    if outcome.skipped:
                        continue
                    counts[kind] += 1
                    if probe:
                        probes[kind] += 1
                    example = Counterexample(
                        rows=rows,
                        op_sql=op.sql,
                        op_kind=kind,
                        before_image=outcome.before_image,
                        dim_rows=scope.dim_rows,
                        observed=outcome.observed,
                        expected=outcome.expected,
                        error=outcome.error,
                    )
                    if outcome.source_query_crash:
                        source_consulted = True
                        continue
                    if rule is None and not outcome.clean:
                        # Fallback probing of a source-query plan: an
                        # unclean fallback is not a refutation (the plan
                        # never claimed the fallback works), but it does
                        # mean "never consulted" cannot be concluded.
                        fallback_unclean = True
                        continue
                    if outcome.needs_image_crash:
                        emit(
                            RULE_READS_BASE,
                            kind,
                            "plan claims this kind applies from the "
                            "operation alone, but the rule demanded "
                            "captured base state (before images)",
                            example,
                            Severity.ERROR,
                        )
                        dead_kinds.add(kind)
                    elif outcome.crashed or outcome.diverged:
                        retraction = (
                            subject.is_aggregate
                            and kind != "INSERT"
                            and outcome.empty_or_null_group
                        )
                        emit(
                            RULE_AGG_RETRACT if retraction else RULE_DIVERGENCE,
                            kind,
                            (
                                "aggregate retraction mishandles an empty "
                                "or NULL group"
                                if retraction
                                else "rule-maintained state diverges from "
                                "recomputation"
                            )
                            + (
                                f" (apply crashed: {outcome.error})"
                                if outcome.crashed
                                else ""
                            ),
                            example,
                            Severity.ERROR,
                        )
                        dead_kinds.add(kind)
                    elif outcome.redelivery_diverged:
                        emit(
                            RULE_NOT_IDEMPOTENT,
                            kind,
                            "re-applying the same operation silently lands "
                            "on a different state; at-least-once transport "
                            "redelivery relies on the integrator's "
                            "per-transaction dedup",
                            example,
                            Severity.WARNING,
                        )

        if (
            source_query_plan
            and not source_consulted
            and not fallback_unclean
            and any(counts.values())
        ):
            emit(
                RULE_SOURCE_UNUSED,
                "*",
                "plan is classified source-query-needed, but every "
                "in-scope scenario applied from captured information "
                "alone; the classification is over-conservative",
                None,
                Severity.WARNING,
            )
        return findings, counts, databases_run

    # ------------------------------------------------------------- scenarios
    def _build_context(
        self,
        subject: _Subject,
        rows: tuple[tuple[Any, ...], ...],
        dim_rows: tuple[tuple[Any, ...], ...],
    ) -> dict[str, Any]:
        """One scratch database seeded with a micro-database + the view."""
        clock = self._clock if self._clock is not None else VirtualClock()
        database = Database(f"verify-{subject.plan.view}", clock=clock)
        table = database.create_table(subject.schema)
        join = getattr(subject.definition, "join", None)
        if join is not None and subject.dim_schema is not None:
            dim_table = database.create_table(subject.dim_schema)
            txn = database.begin()
            for row in dim_rows:
                dim_table.insert(txn, row, mode=InsertMode.BULK_INTERNAL)
            database.commit(txn)
        txn = database.begin()
        for row in rows:
            table.insert(txn, row, mode=InsertMode.BULK_INTERNAL)
        database.commit(txn)
        view = subject.factory(database, subject.definition, subject.schema)
        txn = database.begin()
        view.initialize(list(rows), txn)
        database.commit(txn)
        return {
            "database": database,
            "table": table,
            "view": view,
            "session": database.internal_session(),
            "executor": Executor(database),
        }

    def _run_scenario(
        self,
        subject: _Subject,
        context: dict[str, Any],
        op: MicroOp,
        rule: "DeltaRule | None",
        *,
        probe_redelivery: bool,
    ) -> _ScenarioOutcome:
        session = context["session"]
        database: Database = context["database"]
        view = context["view"]
        outcome = _ScenarioOutcome()
        kind = OpKind(op.kind)

        pre_rows = [values for _rid, values in context["table"].scan()]
        delta = OpDelta(
            statement_text=op.sql,
            table=subject.schema.name,
            kind=kind,
            txn_id=1,
            sequence=1,
            captured_at=database.clock.now,
        )
        wants_image = kind is not OpKind.INSERT and (
            subject.is_aggregate if rule is None else rule.needs_before_image
        )
        if rule is None and not subject.is_aggregate:
            # Fallback probing classifies per statement; capture hybrid so
            # whichever path it picks has what it needs.
            wants_image = kind is not OpKind.INSERT
        if wants_image:
            image = self._before_image(subject.schema, pre_rows, delta)
            delta = OpDelta(
                statement_text=op.sql,
                table=subject.schema.name,
                kind=kind,
                txn_id=1,
                sequence=1,
                captured_at=database.clock.now,
                before_image=image,
            )
            outcome.before_image = tuple(image)

        pre_keys = (
            set(view.groups().keys()) if subject.is_aggregate else set()
        )
        session.begin()
        txn = session.current_transaction
        try:
            try:
                session.execute(op.sql)
            except ReproError:
                outcome.skipped = True  # the base itself rejects this op
                return outcome
            try:
                if subject.is_aggregate:
                    view.apply_operation(delta, txn)
                else:
                    view.apply_operation(delta, txn, rule=rule)
            except WarehouseError as exc:
                self._classify_crash(outcome, str(exc))
            except ReproError as exc:
                outcome.crashed = True
                outcome.error = str(exc)
            if outcome.crashed:
                self._note_group_shape(
                    subject, outcome, pre_keys, post_keys=None
                )
                return outcome
            observed, expected, post_keys = self._compare(
                subject, context, txn
            )
            if observed != expected:
                outcome.diverged = True
                outcome.observed = repr(observed)
                outcome.expected = repr(expected)
                self._note_group_shape(subject, outcome, pre_keys, post_keys)
                return outcome
            if probe_redelivery:
                self._probe_redelivery(
                    subject, view, delta, rule, txn, outcome, expected
                )
            return outcome
        finally:
            if session.in_transaction:
                session.rollback()

    def _classify_crash(self, outcome: _ScenarioOutcome, message: str) -> None:
        outcome.crashed = True
        outcome.error = message
        if "needs before images" in message:
            outcome.needs_image_crash = True
        if "querying the sources" in message or "without querying" in message:
            outcome.source_query_crash = True

    def _note_group_shape(
        self,
        subject: _Subject,
        outcome: _ScenarioOutcome,
        pre_keys: set,
        post_keys: set | None,
    ) -> None:
        if not subject.is_aggregate:
            return
        sensitive = subject.group_sensitive_columns
        null_contribution = any(
            row[position] is None
            for row in (outcome.before_image or ())
            for position in sensitive
        )
        emptied = bool(pre_keys) and (
            post_keys is None or bool(pre_keys - post_keys)
        )
        outcome.empty_or_null_group = null_contribution or emptied

    def _probe_redelivery(
        self,
        subject: _Subject,
        view: Any,
        delta: OpDelta,
        rule: "DeltaRule | None",
        txn: Any,
        outcome: _ScenarioOutcome,
        expected: Any,
    ) -> None:
        """Apply the same op again (view only): silent drift is RULE005."""
        try:
            if subject.is_aggregate:
                view.apply_operation(delta, txn)
            else:
                view.apply_operation(delta, txn, rule=rule)
        except ReproError:
            return  # redelivery fails loudly: safe under retries
        redelivered = self._view_state(subject, view)
        if redelivered != expected:
            outcome.redelivery_diverged = True
            outcome.observed = repr(redelivered)
            outcome.expected = repr(expected)

    # ----------------------------------------------------------- comparison
    def _before_image(
        self,
        schema: TableSchema,
        rows: list[tuple[Any, ...]],
        delta: OpDelta,
    ) -> list[tuple[Any, ...]]:
        where = delta.statement.where  # type: ignore[union-attr]
        if where is None:
            return list(rows)
        matched = []
        for row in rows:
            env = dict(zip(schema.column_names, row))
            if is_true(evaluate(where, env)):
                matched.append(row)
        return matched

    def _view_state(self, subject: _Subject, view: Any) -> Any:
        if subject.is_aggregate:
            return {
                key: {
                    label: _norm_number(value)
                    for label, value in entry.items()
                }
                for key, entry in view.groups().items()
            }
        rows = [values for _rid, values in view.table.scan()]
        return sorted(rows, key=_sort_key)

    def _compare(
        self, subject: _Subject, context: dict[str, Any], txn: Any
    ) -> tuple[Any, Any, set | None]:
        """(view state, executor-recomputed state, post-op group keys)."""
        observed = self._view_state(subject, context["view"])
        executor: Executor = context["executor"]
        if subject.is_aggregate:
            expected = self._oracle_aggregate(subject, executor, txn)
            return observed, expected, set(expected.keys())
        expected = self._oracle_spj(subject, context, executor, txn)
        return observed, expected, None

    def _oracle_spj(
        self,
        subject: _Subject,
        context: dict[str, Any],
        executor: Executor,
        txn: Any,
    ) -> list[tuple[Any, ...]]:
        definition = subject.definition
        columns = list(definition.columns)
        join = definition.join
        if join is not None and join.columns:
            if join.left_column not in columns:
                columns.append(join.left_column)
        select = f"SELECT {', '.join(columns)} FROM {subject.schema.name}"
        if definition.predicate:
            select += f" WHERE {definition.predicate}"
        rows = executor.execute(parse(select), txn).rows
        if join is not None and join.columns:
            assert subject.dim_schema is not None
            dim_by_key = {
                row[subject.dim_schema.column_index(join.right_column)]: row
                for _rid, row in context["database"].table(join.table).scan()
            }
            width = len(definition.columns)
            left_at = columns.index(join.left_column)
            joined = []
            for row in rows:
                dim = dim_by_key.get(row[left_at])
                extras = tuple(
                    dim[subject.dim_schema.column_index(name)]
                    if dim is not None
                    else None
                    for name in join.columns
                )
                joined.append(tuple(row[:width]) + extras)
            rows = joined
        return sorted((tuple(row) for row in rows), key=_sort_key)

    def _oracle_aggregate(
        self, subject: _Subject, executor: Executor, txn: Any
    ) -> dict[tuple, dict[str, Any]]:
        definition = subject.definition
        group_by = ", ".join(definition.group_by)
        items = [group_by, "COUNT(*)"]
        for spec in definition.aggregates:
            argument = spec.argument if spec.argument is not None else "*"
            items.append(f"{spec.function}({argument})")
        select = f"SELECT {', '.join(items)} FROM {subject.schema.name}"
        if definition.predicate:
            select += f" WHERE {definition.predicate}"
        select += f" GROUP BY {group_by}"
        width = len(definition.group_by)
        out: dict[tuple, dict[str, Any]] = {}
        for row in executor.execute(parse(select), txn).rows:
            key = tuple(row[:width])
            entry: dict[str, Any] = {"count": row[width]}
            for position, spec in enumerate(definition.aggregates):
                entry[spec.label] = _norm_number(row[width + 1 + position])
            out[key] = entry
        return out

"""Op-Delta: the paper's primary contribution (§4).

Capture operations (SQL statements) at the COTS/wrapper level instead of
row images; store them in a database table or a flat file; ship the
transaction groups to the warehouse; transform and replay each group as a
self-contained warehouse transaction.
"""

from .apply import ApplyReport, OpDeltaApplier, replay_equivalence_check
from .capture import CaptureEverythingLean, OpDeltaCapture, StatementAnalyzer
from .hybrid import AlwaysHybridPolicy, ViewAwareHybridPolicy
from .opdelta import OpDelta, OpDeltaTransaction, OpKind, classify_statement
from .selfmaint import (
    JoinSpec,
    Maintainability,
    ViewDefinition,
    classify_operation,
    classify_static,
    combined_requirement,
)
from .stores import DatabaseLogStore, FileLogStore, OpDeltaStore
from .transform import StatementTransformer, TableMapping, identity_mapping

__all__ = [
    "OpDelta",
    "OpDeltaTransaction",
    "OpKind",
    "classify_statement",
    "OpDeltaCapture",
    "CaptureEverythingLean",
    "StatementAnalyzer",
    "OpDeltaStore",
    "DatabaseLogStore",
    "FileLogStore",
    "ViewDefinition",
    "JoinSpec",
    "Maintainability",
    "classify_operation",
    "classify_static",
    "combined_requirement",
    "ViewAwareHybridPolicy",
    "AlwaysHybridPolicy",
    "StatementTransformer",
    "TableMapping",
    "identity_mapping",
    "OpDeltaApplier",
    "ApplyReport",
    "replay_equivalence_check",
]

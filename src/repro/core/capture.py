"""Op-Delta capture: the COTS/wrapper-level interception (paper §4.2).

The capture point is a session :data:`~repro.engine.session.Session.capture_hooks`
hook — the statement is observed "right before it is submitted to the DBMS",
exactly the seam a COTS vendor or a third-party wrapper would use.  No
application changes, no triggers, no log access.

Capture cost structure (what Figure 3 / Table 4 measure):

* the operation text goes to the configured :class:`OpDeltaStore`
  (database table or file);
* when a :class:`HybridPolicy` says the warehouse cannot maintain its
  views from the operation alone, the wrapper additionally runs the
  operation's predicate as a SELECT to capture the **before images** —
  "in the worst case, the operation description has to be augmented with
  the before image of the state change".  The after image is *never*
  captured: the operation derives it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from ..engine.session import Session
from ..engine.transactions import Transaction
from ..errors import OpDeltaError
from ..obs.pipeline.context import ambient_pipeline
from ..sql import ast_nodes as ast
from .opdelta import OpDelta, OpKind, classify_statement, seed_parse_cache
from .stores import OpDeltaStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.analyzer import AnalysisRecord
    from ..semantics.checker import CheckResult


class StatementAnalyzer(Protocol):
    """Capture-time static analysis (see :mod:`repro.analysis`).

    Structural so that :mod:`repro.core` never imports the analysis layer
    at runtime — the dependency points the other way.
    """

    def analyze_statement(self, statement: ast.Statement) -> "AnalysisRecord": ...


class StatementChecker(Protocol):
    """Capture-time semantic validation (see :mod:`repro.semantics`).

    Structural for the same reason as :class:`StatementAnalyzer`: the
    semantics layer depends on core, never the other way around.
    """

    def check_statement(self, statement: ast.Statement) -> "CheckResult": ...


class HybridPolicy(Protocol):
    """Decides when an operation must be augmented with before images."""

    def requires_before_image(self, table: str, kind: OpKind) -> bool: ...


class CaptureEverythingLean:
    """Default policy: the operation alone is always enough (pure Op-Delta)."""

    def requires_before_image(self, table: str, kind: OpKind) -> bool:
        return False


class OpDeltaCapture:
    """Wraps a session, recording every DML statement as an Op-Delta."""

    def __init__(
        self,
        session: Session,
        store: OpDeltaStore,
        tables: set[str] | None = None,
        hybrid_policy: HybridPolicy | None = None,
        analyzer: StatementAnalyzer | None = None,
        checker: StatementChecker | None = None,
        source: str | None = None,
    ) -> None:
        self.session = session
        self.store = store
        #: Lineage source name: the ``<source>`` half of every stamped
        #: correlation id.  Defaults to the captured database's name.
        self.source = source if source is not None else session.database.name
        self._tables = tables
        self._policy: HybridPolicy = (
            hybrid_policy if hybrid_policy is not None else CaptureEverythingLean()
        )
        self._analyzer = analyzer
        self._checker = checker
        self._sequence = 0
        #: Ops of each open transaction, for lineage commit stamping.
        self._txn_ops: dict[int, list[OpDelta]] = {}
        self._attached = False
        self.operations_captured = 0
        self.before_images_captured = 0
        self.statements_rejected = 0
        # An internal session for before-image reads: same database, no
        # capture hooks (the wrapper's own reads must not be captured).
        self._reader = session.database.internal_session()
        metrics = session.database.metrics
        self._m_statements = metrics.counter("capture.opdelta.statements")
        self._m_before_images = metrics.counter("capture.opdelta.before_images")
        self._m_overhead = metrics.counter("capture.opdelta.overhead_ms")
        self._m_analyzed = metrics.counter("capture.opdelta.analyzed")
        self._m_checked = metrics.counter("capture.opdelta.checked")
        self._m_rejected = metrics.counter("capture.opdelta.rejected")

    # ------------------------------------------------------------------ wiring
    def attach(self) -> None:
        """Start capturing on the wrapped session."""
        if self._attached:
            raise OpDeltaError("capture is already attached")
        self.session.capture_hooks.append(self._on_statement)
        manager = self.session.database.transactions
        manager.commit_listeners.append(self._on_commit)
        manager.abort_listeners.append(self._on_abort)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        self.session.capture_hooks.remove(self._on_statement)
        manager = self.session.database.transactions
        manager.commit_listeners.remove(self._on_commit)
        manager.abort_listeners.remove(self._on_abort)
        self._attached = False

    @property
    def is_attached(self) -> bool:
        return self._attached

    # ------------------------------------------------------------------- hooks
    def _on_statement(
        self, statement: ast.Statement, sql_text: str, session: Session
    ) -> None:
        kind, table = classify_statement(statement)
        if self._tables is not None and table not in self._tables:
            return
        tracer = session.database.tracer
        with tracer.span(
            "capture.opdelta.statement", table=table, source=self.source
        ):
            self._capture_statement(statement, sql_text, session, kind, table)

    def _capture_statement(
        self,
        statement: ast.Statement,
        sql_text: str,
        session: Session,
        kind: OpKind,
        table: str,
    ) -> None:
        capture_started = session.database.clock.now
        recorder = ambient_pipeline()
        if self._checker is not None:
            # Semantic validation at the wrapper seam: a malformed statement
            # is rejected here — before execution, before it is recorded —
            # instead of failing at warehouse apply.  Raising aborts the
            # user's statement (capture hooks fire pre-execution).
            with session.database.tracer.span(
                "capture.check.statement", table=table, source=self.source
            ):
                result = self._checker.check_statement(statement)
            self._m_checked.inc()
            if not result.ok:
                self.statements_rejected += 1
                self._m_rejected.inc()
                if recorder is not None:
                    recorder.record_rejected_statement(
                        self.source,
                        table,
                        session.database.clock.now,
                        "; ".join(e.code for e in result.errors),
                    )
                result.raise_if_errors(sql_text)
        txn = session.current_transaction
        if txn is None:
            # Autocommit: the session has not begun the wrapping transaction
            # yet at hook time; hooks fire after the txn is created, so this
            # is unreachable in practice — guard for misuse.
            raise OpDeltaError("capture hook fired outside a transaction")
        before_image = None
        if self._policy.requires_before_image(table, kind):
            before_image = self._fetch_before_image(statement, table, kind)
        self._sequence += 1
        # The wrapper already holds the parsed statement; seeding the shared
        # cache means no later consumer of this text ever re-parses it.
        seed_parse_cache(sql_text, statement)
        op = OpDelta(
            statement_text=sql_text,
            table=table,
            kind=kind,
            txn_id=txn.txn_id,
            sequence=self._sequence,
            captured_at=session.database.clock.now,
            before_image=before_image,
            lineage_id=f"{self.source}:{self._sequence}",
            _parsed=statement,
        )
        if self._analyzer is not None:
            op.analysis = self._analyzer.analyze_statement(statement)
            self._m_analyzed.inc()
        self.store.record(op, txn)
        self.operations_captured += 1
        self._m_statements.inc()
        if recorder is not None:
            recorder.record_captured(
                op, source=self.source, at_ms=session.database.clock.now
            )
            if self._checker is not None:
                recorder.record_checked(op, at_ms=session.database.clock.now)
            self._txn_ops.setdefault(txn.txn_id, []).append(op)
        # Virtual time the wrapper added to the user's statement — the
        # store write plus any before-image read (Figure 3's overhead).
        self._m_overhead.inc(session.database.clock.now - capture_started)

    def _fetch_before_image(
        self, statement: ast.Statement, table: str, kind: OpKind
    ) -> list[tuple] | None:
        """Read the affected rows' current state (hybrid capture).

        Inserts never need a before image; update/delete predicates are
        re-run as a SELECT through the wrapper's internal session.
        """
        if kind is OpKind.INSERT:
            return None
        where = statement.where  # type: ignore[union-attr]
        select = ast.SelectStmt(
            items=(ast.SelectItem(ast.Star()),), table=table, where=where
        )
        result = self._reader.execute_statement(select)
        self.before_images_captured += 1
        self._m_before_images.inc()
        return [tuple(row) for row in result.rows]

    def _on_commit(self, txn: Transaction) -> None:
        committed_at = self.session.database.clock.now
        self.store.mark_committed(txn, committed_at)
        ops = self._txn_ops.pop(txn.txn_id, None)
        recorder = ambient_pipeline()
        if recorder is not None and ops:
            recorder.record_committed(ops, committed_at)

    def _on_abort(self, txn: Transaction) -> None:
        ops = self._txn_ops.pop(txn.txn_id, None)
        recorder = ambient_pipeline()
        if recorder is not None and ops:
            # An aborted source transaction's ops never enter transport:
            # settle them as pruned so lineage conservation still closes.
            now = self.session.database.clock.now
            for op in ops:
                recorder.record_pruned(op, now, stage="aborted")
        self.store.mark_aborted(txn)

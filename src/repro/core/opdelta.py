"""Op-Delta records (paper §4).

An Op-Delta captures *the operation that caused the change* — the SQL
statement itself — instead of the per-row before/after images that value
deltas carry.  The consequences the paper derives, all observable on these
objects:

* **size** — a DELETE/UPDATE Op-Delta is the statement text (~70 bytes)
  regardless of how many rows it affects; an INSERT Op-Delta carries the
  inserted data, so it is about as big as the equivalent value delta;
* **transaction boundaries** — Op-Deltas are grouped per source
  transaction (:class:`OpDeltaTransaction`), so the warehouse can apply
  each group as a self-contained transaction, concurrently with queries;
* **hybrid capture** — when a target view is not self-maintainable from
  the operation alone, the Op-Delta is augmented with the *before images*
  of the affected rows (``before_image``), and nothing more — the after
  image never needs capturing because the operation derives it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import OpDeltaError
from ..sql import ast_nodes as ast
from ..sql.parser import parse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.analyzer import AnalysisRecord


class OpKind(enum.Enum):
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"


@dataclass
class OpDelta:
    """One captured operation."""

    statement_text: str
    table: str
    kind: OpKind
    txn_id: int
    sequence: int
    captured_at: float
    #: Full before images of the affected rows (hybrid capture only).
    before_image: list[tuple[Any, ...]] | None = None
    #: Static-analysis record attached at capture time when the capture
    #: pipeline runs with an :class:`~repro.analysis.OpDeltaAnalyzer`.
    analysis: "AnalysisRecord | None" = field(
        default=None, repr=False, compare=False
    )
    _parsed: ast.Statement | None = field(default=None, repr=False, compare=False)

    @property
    def statement(self) -> ast.Statement:
        """The parsed statement (lazily re-parsed from the captured text)."""
        if self._parsed is None:
            self._parsed = parse(self.statement_text)
        return self._parsed

    @property
    def size_bytes(self) -> int:
        """Transport volume: statement text + header + optional before image."""
        size = len(self.statement_text) + 24  # header: txn, seq, table ref
        if self.before_image is not None:
            size += sum(
                sum(len(str(v)) + 1 for v in row) for row in self.before_image
            )
        return size

    @property
    def is_hybrid(self) -> bool:
        return self.before_image is not None


def classify_statement(statement: ast.Statement) -> tuple[OpKind, str]:
    """Return the operation kind and target table of a DML statement."""
    if isinstance(statement, ast.InsertStmt):
        return OpKind.INSERT, statement.table
    if isinstance(statement, ast.UpdateStmt):
        return OpKind.UPDATE, statement.table
    if isinstance(statement, ast.DeleteStmt):
        return OpKind.DELETE, statement.table
    raise OpDeltaError(
        f"only DML statements produce Op-Deltas, got {type(statement).__name__}"
    )


@dataclass
class OpDeltaTransaction:
    """The Op-Deltas of one committed source transaction, in order.

    This is the unit of application at the warehouse: each group becomes
    one warehouse transaction, preserving the source boundary — the
    property that lets maintenance interleave with OLAP queries (§4.1).
    """

    txn_id: int
    operations: list[OpDelta] = field(default_factory=list)
    committed_at: float | None = None

    def __len__(self) -> int:
        return len(self.operations)

    @property
    def size_bytes(self) -> int:
        return sum(op.size_bytes for op in self.operations)

    def tables(self) -> set[str]:
        return {op.table for op in self.operations}

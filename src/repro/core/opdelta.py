"""Op-Delta records (paper §4).

An Op-Delta captures *the operation that caused the change* — the SQL
statement itself — instead of the per-row before/after images that value
deltas carry.  The consequences the paper derives, all observable on these
objects:

* **size** — a DELETE/UPDATE Op-Delta is the statement text (~70 bytes)
  regardless of how many rows it affects; an INSERT Op-Delta carries the
  inserted data, so it is about as big as the equivalent value delta;
* **transaction boundaries** — Op-Deltas are grouped per source
  transaction (:class:`OpDeltaTransaction`), so the warehouse can apply
  each group as a self-contained transaction, concurrently with queries;
* **hybrid capture** — when a target view is not self-maintainable from
  the operation alone, the Op-Delta is augmented with the *before images*
  of the affected rows (``before_image``), and nothing more — the after
  image never needs capturing because the operation derives it.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import OpDeltaError
from ..obs.context import ambient_metrics
from ..sql import ast_nodes as ast
from ..sql.parser import parse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.analyzer import AnalysisRecord


class OpKind(enum.Enum):
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"


#: Serialized size of an Op-Delta's fixed header (see
#: :attr:`OpDelta.size_bytes` for the full wire-format accounting):
#: ``txn_id`` (8) + ``sequence`` (8) + ``captured_at`` (4, ms relative to
#: the shipment epoch) + table reference (2, an id into the shipped table
#: catalog) + kind/flags (2) = 24 bytes.
OPDELTA_HEADER_BYTES = 24


class ParseCache:
    """Process-wide bounded LRU of parsed statements, keyed by text.

    OLTP workloads repeat a small set of statement templates; without a
    shared cache every :class:`OpDelta` instance re-parses its text the
    first time ``.statement`` is read — once at capture, once again after
    the record crosses the wire, once more in any analysis pass that only
    has the text.  Parsed statements are frozen dataclasses, so sharing
    one AST between records is safe.

    Hit/miss totals are kept on the cache itself and mirrored into the
    ambient metrics registry (``core.opdelta.parse_cache_hits`` /
    ``..._misses``) when one is active.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise OpDeltaError(f"parse cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, ast.Statement] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, statement_text: str) -> ast.Statement | None:
        """The cached parse of ``statement_text``, or ``None`` (counted)."""
        statement = self._entries.get(statement_text)
        registry = ambient_metrics()
        if statement is not None:
            self._entries.move_to_end(statement_text)
            self.hits += 1
            if registry is not None:
                registry.counter("core.opdelta.parse_cache_hits").inc()
            return statement
        self.misses += 1
        if registry is not None:
            registry.counter("core.opdelta.parse_cache_misses").inc()
        return None

    def seed(self, statement_text: str, statement: ast.Statement) -> None:
        """Install an already-parsed statement (capture-time warm-up)."""
        self._entries[statement_text] = statement
        self._entries.move_to_end(statement_text)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def parse(self, statement_text: str) -> ast.Statement:
        """The parsed statement, from cache when possible."""
        statement = self.lookup(statement_text)
        if statement is None:
            statement = parse(statement_text)
            self.seed(statement_text, statement)
        return statement

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: The shared process-wide cache :attr:`OpDelta.statement` reads through.
PARSE_CACHE = ParseCache()


def seed_parse_cache(statement_text: str, statement: ast.Statement) -> None:
    """Warm the shared cache with a statement parsed elsewhere (capture)."""
    PARSE_CACHE.seed(statement_text, statement)


@dataclass
class OpDelta:
    """One captured operation."""

    statement_text: str
    table: str
    kind: OpKind
    txn_id: int
    sequence: int
    captured_at: float
    #: Full before images of the affected rows (hybrid capture only).
    before_image: list[tuple[Any, ...]] | None = None
    #: Pipeline correlation id, ``<source>:<sequence>``, stamped by
    #: :class:`~repro.core.capture.OpDeltaCapture` for end-to-end lineage
    #: (:mod:`repro.obs.pipeline`).  Derivable from the header's source and
    #: sequence fields, so it adds no wire bytes and stays out of equality.
    lineage_id: str | None = field(default=None, repr=False, compare=False)
    #: Static-analysis record attached at capture time when the capture
    #: pipeline runs with an :class:`~repro.analysis.OpDeltaAnalyzer`.
    analysis: "AnalysisRecord | None" = field(
        default=None, repr=False, compare=False
    )
    _parsed: ast.Statement | None = field(default=None, repr=False, compare=False)

    @property
    def statement(self) -> ast.Statement:
        """The parsed statement (lazily parsed via the shared cache).

        Workload statements repeat a small set of templates, so the parse
        goes through the process-wide :data:`PARSE_CACHE` — each distinct
        text is parsed once no matter how many :class:`OpDelta` instances
        carry it.
        """
        if self._parsed is None:
            self._parsed = PARSE_CACHE.parse(self.statement_text)
        return self._parsed

    @property
    def size_bytes(self) -> int:
        """Transport volume of this record's wire encoding.

        The wire format is ``header + statement text + optional before
        image``:

        * a fixed :data:`OPDELTA_HEADER_BYTES`-byte header (txn id,
          sequence, capture timestamp, table reference, kind/flags);
        * the statement text, verbatim;
        * for hybrid captures, each before-image row's values rendered
          with a one-byte separator.

        The ``analysis`` record and the ``_parsed`` AST are process-local
        annotations — they are recomputed (or cache-shared) on the
        consuming side and **never serialized**, so neither contributes
        here.  Compaction savings are therefore measured against a stable
        per-op baseline of ``len(statement_text) + OPDELTA_HEADER_BYTES``.
        """
        size = len(self.statement_text) + OPDELTA_HEADER_BYTES
        if self.before_image is not None:
            size += sum(
                sum(len(str(v)) + 1 for v in row) for row in self.before_image
            )
        return size

    @property
    def is_hybrid(self) -> bool:
        return self.before_image is not None


def classify_statement(statement: ast.Statement) -> tuple[OpKind, str]:
    """Return the operation kind and target table of a DML statement."""
    if isinstance(statement, ast.InsertStmt):
        return OpKind.INSERT, statement.table
    if isinstance(statement, ast.UpdateStmt):
        return OpKind.UPDATE, statement.table
    if isinstance(statement, ast.DeleteStmt):
        return OpKind.DELETE, statement.table
    raise OpDeltaError(
        f"only DML statements produce Op-Deltas, got {type(statement).__name__}"
    )


@dataclass
class OpDeltaTransaction:
    """The Op-Deltas of one committed source transaction, in order.

    This is the unit of application at the warehouse: each group becomes
    one warehouse transaction, preserving the source boundary — the
    property that lets maintenance interleave with OLAP queries (§4.1).
    """

    txn_id: int
    operations: list[OpDelta] = field(default_factory=list)
    committed_at: float | None = None

    def __len__(self) -> int:
        return len(self.operations)

    @property
    def size_bytes(self) -> int:
        return sum(op.size_bytes for op in self.operations)

    def tables(self) -> set[str]:
        return {op.table for op in self.operations}

"""Applying Op-Deltas at the warehouse (paper §4.1).

Each :class:`~repro.core.opdelta.OpDeltaTransaction` becomes one warehouse
transaction: ``BEGIN``, replay every (transformed) operation, ``COMMIT``.
This preserves the source transaction boundaries, which is what lets
maintenance interleave with OLAP queries instead of requiring an outage —
and it is why a 10,000-row source UPDATE costs the warehouse one statement
instead of 10,000 deletes plus 10,000 inserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..engine.session import Session
from ..errors import OpDeltaError, WarehouseError
from .opdelta import OpDeltaTransaction
from .transform import StatementTransformer


@dataclass
class ApplyReport:
    """Outcome of applying a run of Op-Delta transactions."""

    transactions_applied: int = 0
    operations_applied: int = 0
    rows_affected: int = 0
    elapsed_ms: float = 0.0
    per_transaction_ms: list[float] = field(default_factory=list)

    @property
    def mean_transaction_ms(self) -> float:
        if not self.per_transaction_ms:
            return 0.0
        return sum(self.per_transaction_ms) / len(self.per_transaction_ms)


class OpDeltaApplier:
    """Replays committed Op-Delta transactions onto warehouse tables."""

    def __init__(
        self,
        session: Session,
        transformer: StatementTransformer | None = None,
    ) -> None:
        self._session = session
        self._transformer = (
            transformer if transformer is not None else StatementTransformer()
        )

    @property
    def session(self) -> Session:
        return self._session

    def apply_transaction(self, group: OpDeltaTransaction) -> float:
        """Apply one source transaction as one warehouse transaction.

        Returns the elapsed virtual milliseconds.  On any failure the
        warehouse transaction rolls back and the error propagates —
        partial application of a source transaction is never visible.
        """
        if not group.operations:
            return 0.0
        clock = self._session.database.clock
        started = clock.now
        self._session.begin()
        try:
            for op in group.operations:
                statement = self._transformer.transform(op.statement)
                self._session.execute_statement(statement)
        except Exception as exc:
            # A failed statement in an explicit transaction already rolled
            # the whole transaction back at the session level.
            if self._session.in_transaction:
                self._session.rollback()
            raise WarehouseError(
                f"applying source transaction {group.txn_id} failed: {exc}"
            ) from exc
        self._session.commit()
        return clock.now - started

    def apply_all(self, groups: Iterable[OpDeltaTransaction]) -> ApplyReport:
        """Apply many transactions, keeping per-transaction timings."""
        report = ApplyReport()
        clock = self._session.database.clock
        started = clock.now
        for group in groups:
            elapsed = self.apply_transaction(group)
            report.per_transaction_ms.append(elapsed)
            report.transactions_applied += 1
            report.operations_applied += len(group)
        report.elapsed_ms = clock.now - started
        return report


def replay_equivalence_check(
    groups: Iterable[OpDeltaTransaction], expected_tables: dict[str, list[tuple]],
    session: Session,
) -> None:
    """Verify that replaying ``groups`` produced the expected table states.

    Test helper: after :meth:`OpDeltaApplier.apply_all`, the warehouse
    mirror tables must match the source tables row-for-row (compared as
    key-less multisets).  Raises :class:`OpDeltaError` on divergence.
    """
    for table_name, expected_rows in expected_tables.items():
        actual = sorted(
            values for _rid, values in session.database.table(table_name).scan()
        )
        if sorted(expected_rows) != actual:
            raise OpDeltaError(
                f"replay divergence on {table_name!r}: expected "
                f"{len(expected_rows)} rows, warehouse has {len(actual)}"
            )

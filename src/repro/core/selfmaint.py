"""Self-maintainability of SPJ views with respect to Op-Delta (paper §4.1).

The paper (building on its reference [8]) identifies sufficient conditions
under which the Op-Delta *alone* refreshes a warehouse view, and cases where
a hybrid — the operation plus the **before image** of the affected rows —
is needed.  The after image is never needed: the operation derives it.

The rules implemented here, for select-project(-join) views:

* **INSERT** — always maintainable from the operation alone: the statement
  carries the new rows; apply the view's selection and projection to them.
* **DELETE** — maintainable from the operation alone when the view keeps
  the base table's key *and* the delete predicate only references
  projected columns (then the predicate can be rewritten onto the view).
  Otherwise the before image identifies the disappearing rows.
* **UPDATE** — maintainable from the operation alone when the predicate
  and every assigned column are projected by the view *and* no assigned
  column participates in the view's selection predicate (no row can enter
  or leave the view).  Otherwise the before image is required: leaving
  rows are found by key; entering rows' full after-images are derived as
  ``apply(assignments, before_image)``.
* **Join views** — maintainable only when the warehouse holds the joined
  (dimension) table locally; otherwise integration would have to query
  back to the sources, which violates requirement 1 of §2.3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from ..errors import SelfMaintenanceError
from ..sql import ast_nodes as ast
from ..sql.expressions import referenced_columns
from ..sql.parser import parse_expression
from .opdelta import OpDelta, OpKind


class Maintainability(enum.Enum):
    """How much captured information a view needs for one operation kind."""

    OP_ONLY = "op-only"
    NEEDS_BEFORE_IMAGE = "needs-before-image"
    NOT_SELF_MAINTAINABLE = "not-self-maintainable"


@dataclass(frozen=True)
class JoinSpec:
    """An equi-join against a (dimension) table."""

    table: str
    left_column: str   # column of the view's base table
    right_column: str  # column of the joined table
    #: Columns of the joined table the view projects.
    columns: tuple[str, ...] = ()
    #: Whether the warehouse holds a local copy of the joined table.
    available_at_warehouse: bool = True


@dataclass(frozen=True)
class ViewDefinition:
    """A select-project(-join) view over one base table.

    ``predicate`` is SQL text over the base table's columns (or ``None``
    for select-all); ``columns`` are the projected base-table columns.
    """

    name: str
    base_table: str
    columns: tuple[str, ...]
    predicate: str | None = None
    key_column: str | None = None
    join: JoinSpec | None = None
    #: All columns of the base table, when known.  Static capture-time
    #: analysis uses this to decide whether the view is a full-width
    #: mirror; ``None`` means unknown (assume narrower than the base).
    base_columns: tuple[str, ...] | None = None

    def predicate_ast(self) -> ast.Expression | None:
        return parse_expression(self.predicate) if self.predicate else None

    def predicate_columns(self) -> set[str]:
        expr = self.predicate_ast()
        return referenced_columns(expr) if expr is not None else set()

    @property
    def key_projected(self) -> bool:
        return self.key_column is not None and self.key_column in self.columns

    def __post_init__(self) -> None:
        if not self.columns:
            raise SelfMaintenanceError(f"view {self.name!r} projects no columns")
        missing = self.predicate_columns() - set(self.columns)
        # A predicate over non-projected columns is legal (it is evaluated
        # against base rows, not view rows) — nothing to validate here, but
        # touching predicate_columns early surfaces parse errors at
        # definition time rather than at apply time.
        del missing


def classify_operation(view: ViewDefinition, op: OpDelta) -> Maintainability:
    """Per-statement analysis: what does *this* operation need for *this* view?"""
    if (
        view.join is not None
        and view.join.columns
        and not view.join.available_at_warehouse
    ):
        # Only joins that actually project dimension attributes force a
        # source query; a bare key-consistency join with no projected
        # columns never needs the dimension table at integration time.
        return Maintainability.NOT_SELF_MAINTAINABLE
    if op.kind is OpKind.INSERT:
        return Maintainability.OP_ONLY
    where = op.statement.where  # type: ignore[union-attr]
    where_columns = referenced_columns(where) if where is not None else set()
    projected = set(view.columns)
    if op.kind is OpKind.DELETE:
        # The rewrite-onto-the-view path evaluates both the statement's
        # WHERE and the view's own selection predicate against view rows,
        # so the predicate columns must be projected too.
        if (
            view.key_projected
            and where_columns <= projected
            and view.predicate_columns() <= projected
        ):
            return Maintainability.OP_ONLY
        return Maintainability.NEEDS_BEFORE_IMAGE
    # UPDATE
    assert op.kind is OpKind.UPDATE
    assignments = op.statement.assignments  # type: ignore[union-attr]
    assigned = {a.column for a in assignments}
    assignment_inputs: set[str] = set()
    for assignment in assignments:
        assignment_inputs |= referenced_columns(assignment.expr)
    membership_affected = bool(assigned & view.predicate_columns())
    if (
        view.join is not None
        and view.join.columns
        and view.join.left_column in assigned
    ):
        # Reassigning the join key invalidates the materialised dimension
        # attributes; re-projection (which needs the before image) is
        # required.  A join projecting no dimension columns materialises
        # nothing that could go stale.
        membership_affected = True
    everything_visible = (
        where_columns <= projected
        and assigned <= projected
        and assignment_inputs <= projected
        and view.predicate_columns() <= projected
    )
    if everything_visible and not membership_affected:
        return Maintainability.OP_ONLY
    return Maintainability.NEEDS_BEFORE_IMAGE


def classify_static(view: ViewDefinition, kind: OpKind) -> Maintainability:
    """Capture-time analysis: the statement is unknown, so be conservative.

    This is what the hybrid capture policy evaluates when deciding whether
    to fetch before images for a table's updates/deletes.
    """
    if (
        view.join is not None
        and view.join.columns
        and not view.join.available_at_warehouse
    ):
        return Maintainability.NOT_SELF_MAINTAINABLE
    if kind is OpKind.INSERT:
        return Maintainability.OP_ONLY
    if kind is OpKind.DELETE:
        # Any base column could appear in a future DELETE's WHERE; the view
        # is safe for every possible statement only if it keeps the key and
        # projects the full base row.
        if view.key_projected and _projects_full_row(view):
            return Maintainability.OP_ONLY
        return Maintainability.NEEDS_BEFORE_IMAGE
    # UPDATE: additionally, a future statement could assign one of the
    # view's selection-predicate columns (moving rows in or out of the
    # view) or the join key (invalidating materialised dimension columns).
    if (
        view.predicate is None
        and view.join is None
        and view.key_projected
        and _projects_full_row(view)
    ):
        return Maintainability.OP_ONLY
    return Maintainability.NEEDS_BEFORE_IMAGE


def _projects_full_row(view: ViewDefinition) -> bool:
    """Whether the view provably projects every base-table column."""
    if view.base_columns is None:
        return False
    return set(view.columns) >= set(view.base_columns)


def combined_requirement(
    views: Sequence[ViewDefinition], table: str, kind: OpKind
) -> Maintainability:
    """The strongest requirement any view on ``table`` imposes for ``kind``."""
    requirement = Maintainability.OP_ONLY
    for view in views:
        if view.base_table != table:
            continue
        level = classify_static(view, kind)
        if level is Maintainability.NOT_SELF_MAINTAINABLE:
            return level
        if level is Maintainability.NEEDS_BEFORE_IMAGE:
            requirement = level
    return requirement

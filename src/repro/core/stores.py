"""Op-Delta log stores (paper §4.2, Figure 3 and Table 4).

Two places the captured operations can go, with the exact trade-off the
paper measures:

* :class:`DatabaseLogStore` — the Op-Delta is written *transactionally*
  into a table of the source database, inside the user's transaction.
  Aborting the user transaction automatically removes its Op-Deltas.
  Statement text is chunked into fixed-width rows, so an INSERT's capture
  cost is proportional to its data volume (Figure 3's ~66% insert
  overhead) while DELETE/UPDATE captures stay one-row cheap.
* :class:`FileLogStore` — the Op-Delta is appended to an OS file; much
  cheaper ("using a file log significantly improves the original
  transaction response time"), but not transactional: aborted
  transactions' entries remain in the file, and the reader must filter by
  the commit markers the store appends at commit time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..engine.database import Database
from ..engine.schema import Column, TableSchema
from ..engine.table import InsertMode
from ..engine.transactions import Transaction
from ..engine.types import INTEGER, char
from ..errors import OpDeltaError
from .opdelta import OpDelta, OpDeltaTransaction

#: Fixed chunk width for statement text stored in the database log table.
DB_LOG_CHUNK_CHARS = 100

#: Schema of the database Op-Delta log table.
OPLOG_COLUMNS = (
    Column("op_seq", INTEGER, nullable=False),
    Column("op_txn", INTEGER, nullable=False),
    Column("op_part", INTEGER, nullable=False),
    Column("op_table", char(24), nullable=False),
    Column("op_kind", char(6), nullable=False),
    Column("op_text", char(DB_LOG_CHUNK_CHARS), nullable=False),
)


class OpDeltaStore(ABC):
    """Where captured operations are kept until shipped to the warehouse."""

    def __init__(self) -> None:
        self._open_txns: dict[int, list[OpDelta]] = {}
        self._committed: list[OpDeltaTransaction] = []

    # ------------------------------------------------------------------ write
    def record(self, op: OpDelta, txn: Transaction) -> None:
        """Persist one Op-Delta inside (or alongside) the user transaction."""
        if not txn.is_active:
            raise OpDeltaError(
                f"cannot record an Op-Delta on {txn.state.value} transaction "
                f"{txn.txn_id}"
            )
        self._persist(op, txn)
        self._open_txns.setdefault(txn.txn_id, []).append(op)

    def mark_committed(self, txn: Transaction, committed_at: float) -> None:
        """Seal the transaction's group; called from the commit listener."""
        ops = self._open_txns.pop(txn.txn_id, None)
        if not ops:
            return
        self._persist_commit(txn)
        self._committed.append(
            OpDeltaTransaction(txn.txn_id, ops, committed_at=committed_at)
        )

    def mark_aborted(self, txn: Transaction) -> None:
        """Discard the transaction's pending group."""
        pending = self._open_txns.pop(txn.txn_id, None)
        if pending:
            self._discard(txn, pending)

    # ------------------------------------------------------------------- read
    def drain(self) -> list[OpDeltaTransaction]:
        """Remove and return the committed groups, in commit order."""
        groups, self._committed = self._committed, []
        self._truncate_persisted()
        return groups

    def peek(self) -> list[OpDeltaTransaction]:
        return list(self._committed)

    @property
    def pending_transactions(self) -> int:
        return len(self._open_txns)

    # ------------------------------------------------------------- subclasses
    @abstractmethod
    def _persist(self, op: OpDelta, txn: Transaction) -> None: ...

    def _persist_commit(self, txn: Transaction) -> None:
        """Durably mark the commit (file store appends a marker)."""

    def _discard(self, txn: Transaction, ops: list[OpDelta]) -> None:
        """React to an abort (database store rows roll back by themselves)."""

    def _truncate_persisted(self) -> None:
        """Clear the persisted backlog after a drain."""


class DatabaseLogStore(OpDeltaStore):
    """Transactional Op-Delta log in a table of the source database."""

    def __init__(self, database: Database, table_name: str = "opdelta_log") -> None:
        super().__init__()
        self._database = database
        self.table_name = table_name
        if not database.has_table(table_name):
            database.create_table(TableSchema(table_name, OPLOG_COLUMNS))
        self._table = database.table(table_name)
        self._next_seq = 1

    def _persist(self, op: OpDelta, txn: Transaction) -> None:
        # The wrapper submits the log insert as one extra client statement
        # in the same transaction: per-statement overhead once, then a
        # bulk array insert of the text chunks.
        self._database.clock.advance(self._database.costs.stmt_overhead)
        seq = self._next_seq
        self._next_seq += 1
        text = op.statement_text
        chunks = [
            text[start : start + DB_LOG_CHUNK_CHARS]
            for start in range(0, len(text), DB_LOG_CHUNK_CHARS)
        ] or [""]
        for part, chunk in enumerate(chunks):
            self._table.insert(
                txn,
                (seq, txn.txn_id, part, op.table, op.kind.value, chunk),
                mode=InsertMode.BULK_CLIENT,
                fire_triggers=False,
            )
        if op.before_image is not None:
            # Hybrid capture: the before image rides along as extra chunks.
            for row_no, row in enumerate(op.before_image):
                rendered = "|".join(str(v) for v in row)[:DB_LOG_CHUNK_CHARS]
                self._table.insert(
                    txn,
                    (seq, txn.txn_id, len(chunks) + row_no, op.table, "BIMG", rendered),
                    mode=InsertMode.BULK_CLIENT,
                    fire_triggers=False,
                )

    def _truncate_persisted(self) -> None:
        self._table.truncate()

    @property
    def persisted_rows(self) -> int:
        return self._table.num_rows


@dataclass
class _FileEntry:
    txn_id: int
    payload: str


class FileLogStore(OpDeltaStore):
    """Append-only OS-file Op-Delta log (non-transactional)."""

    def __init__(self, database: Database) -> None:
        super().__init__()
        self._database = database
        self._entries: list[_FileEntry] = []
        self.bytes_written = 0
        database.clock.advance(database.costs.file_open)

    def _persist(self, op: OpDelta, txn: Transaction) -> None:
        costs = self._database.costs
        payload = f"{txn.txn_id}\t{op.kind.value}\t{op.table}\t{op.statement_text}"
        if op.before_image is not None:
            for row in op.before_image:
                payload += "\nBIMG\t" + "|".join(str(v) for v in row)
        self._database.clock.advance(
            costs.ascii_format_row + costs.file_write(len(payload) + 1)
        )
        self.bytes_written += len(payload) + 1
        self._entries.append(_FileEntry(txn.txn_id, payload))

    def _persist_commit(self, txn: Transaction) -> None:
        costs = self._database.costs
        marker = f"{txn.txn_id}\tCOMMIT"
        self._database.clock.advance(
            costs.file_write(len(marker) + 1) + costs.file_sync
        )
        self.bytes_written += len(marker) + 1
        self._entries.append(_FileEntry(txn.txn_id, marker))

    def _discard(self, txn: Transaction, ops) -> None:
        # Nothing to do: the file keeps the aborted entries, and drain()
        # only returns groups that reached mark_committed.  The raw file
        # (``uncommitted_garbage``) shows the non-transactionality.
        return

    def _truncate_persisted(self) -> None:
        self._entries.clear()

    @property
    def file_lines(self) -> list[str]:
        return [entry.payload for entry in self._entries]

    def uncommitted_garbage(self) -> int:
        """File entries belonging to transactions with no commit marker."""
        committed = {
            entry.txn_id for entry in self._entries if entry.payload.endswith("COMMIT")
        }
        return sum(
            1
            for entry in self._entries
            if entry.txn_id not in committed and not entry.payload.endswith("COMMIT")
        )

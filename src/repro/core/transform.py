"""Transformation rules: source statements → warehouse statements (§4.1).

"The data warehouse schema is typically an aggregation of the source
database schema unlike a recovering database, so appropriate
transformations need to be applied" — and, unlike log shipping, Op-Delta
does not require the destination schema to equal the source schema.

A :class:`TableMapping` declares how one source table appears in the
warehouse: a target table name, a column-rename map, and optionally a
projection (source columns with no mapping are dropped; INSERTs are
rewritten with explicit target column lists so dropped columns simply
disappear).  :class:`StatementTransformer` rewrites whole statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import OpDeltaError
from ..sql import ast_nodes as ast


@dataclass(frozen=True)
class TableMapping:
    """How one source table maps onto the warehouse schema."""

    source_table: str
    target_table: str
    #: source column -> target column.  Source columns absent from the map
    #: are dropped by the transformation (projection).
    column_map: Mapping[str, str] = field(default_factory=dict)
    #: Source column order, required to transform positional INSERTs.
    source_columns: tuple[str, ...] = ()

    def target_column(self, source_column: str) -> str | None:
        if not self.column_map:
            return source_column
        return self.column_map.get(source_column)

    def require_target_column(self, source_column: str) -> str:
        target = self.target_column(source_column)
        if target is None:
            raise OpDeltaError(
                f"column {self.source_table}.{source_column} is dropped by "
                "the warehouse mapping but the statement references it"
            )
        return target


def identity_mapping(table: str, target_table: str | None = None) -> TableMapping:
    """Mapping that only renames the table (columns pass through)."""
    return TableMapping(table, target_table if target_table else table)


class StatementTransformer:
    """Rewrites captured DML onto the warehouse schema."""

    def __init__(self, mappings: Mapping[str, TableMapping] | None = None) -> None:
        self._mappings = dict(mappings) if mappings else {}

    def add(self, mapping: TableMapping) -> None:
        self._mappings[mapping.source_table] = mapping

    def mapping_for(self, table: str) -> TableMapping:
        return self._mappings.get(table, identity_mapping(table))

    # --------------------------------------------------------------- statements
    def transform(self, statement: ast.Statement) -> ast.Statement:
        if isinstance(statement, ast.InsertStmt):
            return self._transform_insert(statement)
        if isinstance(statement, ast.UpdateStmt):
            return self._transform_update(statement)
        if isinstance(statement, ast.DeleteStmt):
            return self._transform_delete(statement)
        raise OpDeltaError(
            f"only DML statements are transformed, got {type(statement).__name__}"
        )

    def _transform_insert(self, stmt: ast.InsertStmt) -> ast.InsertStmt:
        mapping = self.mapping_for(stmt.table)
        if stmt.select is not None:
            raise OpDeltaError(
                "INSERT..SELECT Op-Deltas cannot be transformed: the SELECT "
                "reads source state the warehouse does not have"
            )
        source_columns = stmt.columns
        if source_columns is None:
            if mapping.column_map and not mapping.source_columns:
                raise OpDeltaError(
                    f"mapping for {stmt.table!r} projects columns but has no "
                    "source column order; cannot transform a positional INSERT"
                )
            source_columns = mapping.source_columns or None
        if source_columns is None:
            # Pure rename: keep the positional form.
            return ast.InsertStmt(mapping.target_table, None, rows=stmt.rows)
        kept_positions = []
        target_columns = []
        for position, name in enumerate(source_columns):
            target = mapping.target_column(name)
            if target is not None:
                kept_positions.append(position)
                target_columns.append(target)
        new_rows = []
        for row in stmt.rows:
            if len(row) != len(source_columns):
                raise OpDeltaError(
                    f"INSERT row has {len(row)} values for "
                    f"{len(source_columns)} columns"
                )
            new_rows.append(tuple(row[position] for position in kept_positions))
        return ast.InsertStmt(
            mapping.target_table, tuple(target_columns), rows=tuple(new_rows)
        )

    def _transform_update(self, stmt: ast.UpdateStmt) -> ast.UpdateStmt:
        mapping = self.mapping_for(stmt.table)
        assignments = []
        for assignment in stmt.assignments:
            target = mapping.target_column(assignment.column)
            if target is None:
                continue  # assignment to a dropped column vanishes
            assignments.append(
                ast.Assignment(target, self._transform_expr(assignment.expr, mapping))
            )
        if not assignments:
            raise OpDeltaError(
                f"UPDATE on {stmt.table!r} only assigns columns the warehouse "
                "drops; nothing to apply"
            )
        where = (
            self._transform_expr(stmt.where, mapping) if stmt.where is not None else None
        )
        return ast.UpdateStmt(mapping.target_table, tuple(assignments), where)

    def _transform_delete(self, stmt: ast.DeleteStmt) -> ast.DeleteStmt:
        mapping = self.mapping_for(stmt.table)
        where = (
            self._transform_expr(stmt.where, mapping) if stmt.where is not None else None
        )
        return ast.DeleteStmt(mapping.target_table, where)

    # -------------------------------------------------------------- expressions
    def _transform_expr(
        self, expr: ast.Expression, mapping: TableMapping
    ) -> ast.Expression:
        if isinstance(expr, ast.Literal):
            return expr
        if isinstance(expr, ast.ColumnRef):
            return ast.ColumnRef(mapping.require_target_column(expr.name))
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                expr.op,
                self._transform_expr(expr.left, mapping),
                self._transform_expr(expr.right, mapping),
            )
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, self._transform_expr(expr.operand, mapping))
        if isinstance(expr, ast.InList):
            return ast.InList(
                self._transform_expr(expr.expr, mapping),
                tuple(self._transform_expr(item, mapping) for item in expr.items),
                expr.negated,
            )
        if isinstance(expr, ast.Between):
            return ast.Between(
                self._transform_expr(expr.expr, mapping),
                self._transform_expr(expr.low, mapping),
                self._transform_expr(expr.high, mapping),
                expr.negated,
            )
        if isinstance(expr, ast.Like):
            return ast.Like(
                self._transform_expr(expr.expr, mapping), expr.pattern, expr.negated
            )
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(
                self._transform_expr(expr.expr, mapping), expr.negated
            )
        raise OpDeltaError(
            f"cannot transform expression node {type(expr).__name__}"
        )

"""Hybrid capture policy: when to augment the operation with before images.

Built from the warehouse's view definitions via the static
self-maintainability analysis.  The policy is evaluated at capture time —
before the statement runs — so it is conservative: if *any* view on the
table might need before images for this kind of operation, they are
fetched.  Per-statement refinement happens at apply time
(:func:`repro.core.selfmaint.classify_operation`).
"""

from __future__ import annotations

from typing import Iterable

from ..errors import SelfMaintenanceError
from .opdelta import OpKind
from .selfmaint import Maintainability, ViewDefinition, combined_requirement


class ViewAwareHybridPolicy:
    """Fetch before images exactly when some warehouse view needs them."""

    def __init__(self, views: Iterable[ViewDefinition],
                 fail_on_unmaintainable: bool = True) -> None:
        self._views = list(views)
        self._fail = fail_on_unmaintainable
        self._cache: dict[tuple[str, OpKind], bool] = {}

    def requires_before_image(self, table: str, kind: OpKind) -> bool:
        key = (table, kind)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        requirement = combined_requirement(self._views, table, kind)
        if requirement is Maintainability.NOT_SELF_MAINTAINABLE and self._fail:
            raise SelfMaintenanceError(
                f"a view over {table!r} is not self-maintainable even with "
                "before images (its join side is not available at the "
                "warehouse); integration would have to query the sources"
            )
        needed = requirement is Maintainability.NEEDS_BEFORE_IMAGE
        self._cache[key] = needed
        return needed

    @property
    def views(self) -> list[ViewDefinition]:
        return list(self._views)


class AlwaysHybridPolicy:
    """Worst-case policy: capture before images for every update/delete.

    Used by the ablation benchmarks to bound the extra capture cost of
    hybrid Op-Delta ("in the worst case, the operation description has to
    be augmented with the before image").
    """

    def requires_before_image(self, table: str, kind: OpKind) -> bool:
        return kind in (OpKind.UPDATE, OpKind.DELETE)

"""Deterministic virtual-time accounting.

Every storage-engine primitive charges time to a :class:`VirtualClock`
instead of consuming wall-clock time.  This is the central substitution the
reproduction makes for the paper's 300 MHz NT testbed: experiments become
deterministic, laptop-fast and independent of the host machine, while the
*relative* costs still emerge from the real mechanics (page I/O, log forces,
triggered statements, ...) because every one of those mechanics charges the
clock through the calibrated :class:`repro.engine.costs.CostModel`.

The clock measures **virtual milliseconds**.  A :class:`Stopwatch` is the
idiomatic way to measure the cost of a region of code::

    with clock.stopwatch() as watch:
        table.insert(row)
    elapsed_ms = watch.elapsed

When the measurement should be *kept* rather than consumed on the spot,
use a :class:`repro.obs.Tracer` span instead — spans are stamped from this
same clock, nest hierarchically, and export to Chrome-trace JSON, so a
whole experiment's cost breakdown stays attributable after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class VirtualClock:
    """A monotonically increasing virtual-millisecond counter.

    The clock also hands out monotonically increasing *timestamps* for
    ``last_modified``-style columns so that timestamp-based extraction is
    deterministic: two successive calls to :meth:`timestamp` never return
    the same value even if no cost was charged in between.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = float(start_ms)
        self._timestamp_seq = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance(self, milliseconds: float) -> float:
        """Charge ``milliseconds`` of virtual time and return the new time.

        Negative charges are rejected: virtual time is monotonic.
        """
        if milliseconds < 0:
            raise ValueError(f"cannot advance clock by {milliseconds} ms")
        self._now += milliseconds
        return self._now

    def timestamp(self) -> float:
        """Return a unique, strictly increasing virtual timestamp.

        The fractional tie-breaker keeps timestamps unique even when many
        rows are stamped at the same virtual instant, which mirrors how a
        real DBMS timestamp has sub-millisecond resolution.
        """
        self._timestamp_seq += 1
        return self._now + self._timestamp_seq * 1e-9

    def stopwatch(self) -> "Stopwatch":
        """Return a context manager measuring elapsed virtual time."""
        return Stopwatch(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.3f}ms)"


@dataclass
class Stopwatch:
    """Measures elapsed virtual time over a ``with`` block."""

    clock: VirtualClock
    started_at: float = field(default=0.0, init=False)
    stopped_at: float | None = field(default=None, init=False)

    def __enter__(self) -> "Stopwatch":
        self.started_at = self.clock.now
        self.stopped_at = None
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stopped_at = self.clock.now

    @property
    def elapsed(self) -> float:
        """Virtual milliseconds elapsed (live if the block is still open)."""
        end = self.stopped_at if self.stopped_at is not None else self.clock.now
        return end - self.started_at


def format_duration(milliseconds: float) -> str:
    """Render virtual milliseconds the way the paper's tables do.

    Examples: ``"117 ms"``, ``"3 min"``, ``"1 hr 32 min"``.
    """
    if milliseconds < 0:
        raise ValueError("duration cannot be negative")
    seconds = milliseconds / 1000.0
    if seconds < 1:
        return f"{milliseconds:.0f} ms"
    if seconds < 120:
        return f"{seconds:.1f} s"
    minutes = seconds / 60.0
    if minutes < 60:
        return f"{minutes:.0f} min"
    hours = int(minutes // 60)
    rem_minutes = int(round(minutes - hours * 60))
    if rem_minutes == 60:
        hours += 1
        rem_minutes = 0
    if rem_minutes == 0:
        return f"{hours} hr"
    return f"{hours} hr {rem_minutes} min"

"""Method-call capture at the integration-middleware level (paper §2.4).

"Deltas can also be captured in the integration infrastructure (CORBA, DCE,
and DCOM) between the COTS software.  The message channel exit points can
be tapped to capture the deltas.  Deltas here will be (most likely) in the
form of high-level object method calls, instead of SQL statements ...
A customized mapping mechanism is now required to map each object's methods
(including semantics) into an equivalent method applicable to the data
warehouse — something that may not be always feasible."

Two capture points are modelled:

* the application/COTS boundary — every business API call on a
  :class:`~repro.sources.cots.CotsSystem`;
* the integration layer — cross-system business transactions on an
  :class:`~repro.sources.enterprise.IntegratedEnterprise`.

A :class:`MethodCallMapper` holds the per-method translation into warehouse
statements; methods without a mapping raise — the §2.4 feasibility caveat
made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..engine.session import Session
from ..errors import ExtractionError, WarehouseError
from .cots import CotsSystem
from .enterprise import IntegratedEnterprise


@dataclass(frozen=True)
class MethodDelta:
    """One captured high-level method call."""

    sequence: int
    level: str              # "cots-api" or "integration-layer"
    system: str | None      # None for integration-layer calls
    method: str
    arguments: tuple[Any, ...]
    captured_at: float

    @property
    def size_bytes(self) -> int:
        """Transport volume: method id + rendered arguments."""
        return (
            16 + len(self.method)
            + sum(len(str(argument)) + 1 for argument in self.arguments)
        )


class MiddlewareCapture:
    """Taps business-method invocations at one or both capture levels."""

    def __init__(self) -> None:
        self._sequence = 0
        self._captured: list[MethodDelta] = []
        self._detachers: list[Callable[[], None]] = []

    # ------------------------------------------------------------------ wiring
    def tap_system(self, system: CotsSystem) -> None:
        """Capture every business API call of one COTS system."""

        def listener(method: str, arguments: tuple[Any, ...]) -> None:
            self._record("cots-api", system.name, method, arguments,
                         system.clock.now)

        system.method_listeners.append(listener)
        self._detachers.append(
            lambda: system.method_listeners.remove(listener)
        )

    def tap_enterprise(self, enterprise: IntegratedEnterprise) -> None:
        """Capture cross-system business transactions at the middleware."""

        def listener(method: str, arguments: tuple[Any, ...]) -> None:
            self._record("integration-layer", None, method, arguments,
                         enterprise.clock.now)

        enterprise.method_listeners.append(listener)
        self._detachers.append(
            lambda: enterprise.method_listeners.remove(listener)
        )

    def detach(self) -> None:
        for detacher in self._detachers:
            detacher()
        self._detachers.clear()

    # ------------------------------------------------------------------ access
    def _record(self, level: str, system: str | None, method: str,
                arguments: tuple[Any, ...], at: float) -> None:
        self._sequence += 1
        self._captured.append(
            MethodDelta(self._sequence, level, system, method,
                        tuple(arguments), at)
        )

    def drain(self) -> list[MethodDelta]:
        captured, self._captured = self._captured, []
        return captured

    def peek(self) -> list[MethodDelta]:
        return list(self._captured)

    def __len__(self) -> int:
        return len(self._captured)


#: A mapping entry: builds warehouse SQL statements from call arguments.
MethodTranslation = Callable[[tuple[Any, ...]], Sequence[str]]


class MethodCallMapper:
    """The "customized mapping mechanism" of §2.4.

    Maps each captured method (by ``level:method`` or just ``method``) to
    the warehouse statements that reproduce its effect.  Unmapped methods
    raise :class:`ExtractionError` — capturing at this level is only as
    complete as the mapping, which "may not be always feasible".
    """

    def __init__(self) -> None:
        self._translations: dict[str, MethodTranslation] = {}

    def register(self, method: str, translation: MethodTranslation) -> None:
        if method in self._translations:
            raise ExtractionError(f"method {method!r} is already mapped")
        self._translations[method] = translation

    def is_mapped(self, method: str) -> bool:
        return method in self._translations

    def translate(self, delta: MethodDelta) -> list[str]:
        translation = self._translations.get(delta.method)
        if translation is None:
            raise ExtractionError(
                f"no warehouse mapping for method {delta.method!r} "
                f"(captured at the {delta.level}); §2.4: such a mapping "
                "'may not be always feasible'"
            )
        return list(translation(delta.arguments))


class MethodDeltaApplier:
    """Applies captured method calls to the warehouse through a mapper."""

    def __init__(self, session: Session, mapper: MethodCallMapper) -> None:
        self._session = session
        self._mapper = mapper
        self.calls_applied = 0
        self.statements_executed = 0

    def apply(self, deltas: Iterable[MethodDelta]) -> None:
        """One warehouse transaction per captured call (boundary preserved)."""
        for delta in deltas:
            statements = self._mapper.translate(delta)
            self._session.begin()
            try:
                for sql in statements:
                    self._session.execute(sql)
                    self.statements_executed += 1
            except Exception as exc:
                if self._session.in_transaction:
                    self._session.rollback()
                raise WarehouseError(
                    f"applying method call {delta.method!r} failed: {exc}"
                ) from exc
            self._session.commit()
            self.calls_applied += 1

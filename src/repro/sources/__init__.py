"""Source-system architectures: COTS encapsulation, replication,
distribution, heterogeneity, and delta reconciliation (paper §2)."""

from .cots import CotsSystem
from .enterprise import IntegratedEnterprise, Partition
from .reconcile import ReconciliationConflict, ReconciliationResult, Reconciler
from .middleware import (
    MethodCallMapper,
    MethodDelta,
    MethodDeltaApplier,
    MiddlewareCapture,
)
from .replication import ReplicationLink

__all__ = [
    "CotsSystem",
    "ReplicationLink",
    "MiddlewareCapture",
    "MethodDelta",
    "MethodCallMapper",
    "MethodDeltaApplier",
    "IntegratedEnterprise",
    "Partition",
    "Reconciler",
    "ReconciliationResult",
    "ReconciliationConflict",
]

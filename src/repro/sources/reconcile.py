"""Reconciling deltas extracted from replicated sources (§2.2, §4.1).

Database-level extraction (triggers, logs, timestamps) sees a replicated
change once per replica.  Before integration, those copies must be
reconciled into one authoritative delta stream: duplicates dropped,
divergences detected.  "The farther away from the data sources, the less
knowledge there is about the semantics of replications, and more
challenging the reconciliation process becomes" — Op-Delta avoids the whole
problem by capturing above the replication layer, which the tests
demonstrate by comparing both pipelines on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ExtractionError
from ..extraction.deltas import DeltaBatch, DeltaRecord


@dataclass(frozen=True)
class ReconciliationConflict:
    """Replicas disagree about one key's net change."""

    key: Any
    authoritative_system: str
    conflicting_system: str
    authoritative_effect: str
    conflicting_effect: str


@dataclass
class ReconciliationResult:
    """Outcome of reconciling one logical table's replicated deltas."""

    batch: DeltaBatch
    duplicates_dropped: int = 0
    conflicts: list[ReconciliationConflict] = field(default_factory=list)
    missing_at_replicas: int = 0

    @property
    def clean(self) -> bool:
        return not self.conflicts


class Reconciler:
    """Merges per-replica delta batches into one authoritative batch."""

    def __init__(self, authoritative_system: str) -> None:
        self.authoritative_system = authoritative_system

    def reconcile(self, batches: dict[str, DeltaBatch]) -> ReconciliationResult:
        """Reconcile replica batches keyed by system name.

        The authoritative system's batch is taken verbatim; every other
        replica's records count as duplicates when their per-key net effect
        agrees, as conflicts when it disagrees, and as replica lag
        (``missing_at_replicas``) when absent.
        """
        if self.authoritative_system not in batches:
            raise ExtractionError(
                f"no batch from the authoritative system "
                f"{self.authoritative_system!r}"
            )
        authoritative = batches[self.authoritative_system]
        result = ReconciliationResult(
            batch=DeltaBatch(
                authoritative.table, authoritative.schema,
                list(authoritative.records),
            )
        )
        ts_index = (
            authoritative.schema.column_index(authoritative.schema.timestamp_column)
            if authoritative.schema.timestamp_column is not None
            else None
        )
        reference = {
            key: self._effect_signature(record, ts_index)
            for key, record in authoritative.net_effect().items()
        }
        for system, batch in batches.items():
            if system == self.authoritative_system:
                continue
            if batch.table != authoritative.table:
                raise ExtractionError(
                    f"system {system!r} delivered deltas for {batch.table!r}, "
                    f"expected {authoritative.table!r}"
                )
            replica_effects = {
                key: self._effect_signature(record, ts_index)
                for key, record in batch.net_effect().items()
            }
            for key, signature in replica_effects.items():
                expected = reference.get(key)
                if expected is None:
                    result.conflicts.append(
                        ReconciliationConflict(
                            key, self.authoritative_system, system,
                            "<no change>", signature,
                        )
                    )
                elif expected == signature:
                    result.duplicates_dropped += 1
                else:
                    result.conflicts.append(
                        ReconciliationConflict(
                            key, self.authoritative_system, system,
                            expected, signature,
                        )
                    )
            result.missing_at_replicas += sum(
                1 for key in reference if key not in replica_effects
            )
        return result

    @staticmethod
    def _effect_signature(record: DeltaRecord, ts_index: int | None) -> str:
        """A comparable rendering of a record's net effect on its key.

        The timestamp column is excluded: replicas stamp rows from their
        own clocks, so it legitimately differs for the same logical change.
        """
        if record.after is None:
            after = "·"
        else:
            values = tuple(
                value
                for index, value in enumerate(record.after)
                if index != ts_index
            )
            after = repr(values)
        return f"{record.kind.value}:{after}"

"""An integrated enterprise: distributed, heterogeneous, non-serializable (§2).

Multiple COTS systems connected by integration middleware:

* **Distribution** — the PARTS key space is range-partitioned across
  systems; business transactions can span partitions.
* **Heterogeneity** — systems may run different DBMS products/versions,
  which breaks Export/Import and log shipping between them.
* **No global serializability** — "Global serializability is often not
  enforced in the COTS software systems for incompatibility and performance
  reasons."  Cross-system business transactions commit locally per system
  with no global coordinator; :meth:`IntegratedEnterprise.interleaved_transfers`
  reproduces a globally non-serializable execution from two locally
  serializable ones.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ..clock import VirtualClock
from ..errors import ReproError
from ..sql.ast_nodes import sql_literal
from .cots import CotsSystem


@dataclass
class Partition:
    """One key range hosted by one system (half-open: [low, high))."""

    low: int
    high: int
    system: CotsSystem


class IntegratedEnterprise:
    """COTS systems glued together by (simulated) integration middleware."""

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._partitions: list[Partition] = []
        self.systems: dict[str, CotsSystem] = {}
        self.global_transactions = 0
        #: Observers of cross-system business transactions — the
        #: integration-layer capture point of §2.4 (sources.middleware).
        self.method_listeners: list = []

    # ------------------------------------------------------------------- setup
    def add_system(self, system: CotsSystem, key_low: int, key_high: int) -> None:
        if key_high <= key_low:
            raise ReproError(f"empty partition [{key_low}, {key_high})")
        for partition in self._partitions:
            if key_low < partition.high and partition.low < key_high:
                raise ReproError(
                    f"partition [{key_low}, {key_high}) overlaps "
                    f"[{partition.low}, {partition.high})"
                )
        self.systems[system.name] = system
        self._partitions.append(Partition(key_low, key_high, system))
        self._partitions.sort(key=lambda p: p.low)

    def system_for(self, part_id: int) -> CotsSystem:
        lows = [p.low for p in self._partitions]
        position = bisect_right(lows, part_id) - 1
        if position < 0 or part_id >= self._partitions[position].high:
            raise ReproError(f"no partition hosts part id {part_id}")
        return self._partitions[position].system

    def load(self, parts_per_system: int) -> None:
        """Populate every partition with its share of parts."""
        for partition in self._partitions:
            count = min(parts_per_system, partition.high - partition.low)
            partition.system.load_parts(count, start_id=partition.low)

    # ------------------------------------------------------ business processes
    def transfer_quantity(
        self, from_part: int, to_part: int, amount: int
    ) -> None:
        """Move stock between two parts — possibly across systems.

        Executed as *two local transactions* (decrement, then increment)
        because the middleware provides no global atomicity.  A crash or an
        interleaving between the halves is globally visible.
        """
        self.global_transactions += 1
        self._notify("transfer_quantity", (from_part, to_part, amount))
        self._adjust(from_part, -amount)
        self._adjust(to_part, amount)

    def _adjust(self, part_id: int, delta: int) -> None:
        system = self.system_for(part_id)
        session = system.wrapper_session
        session.execute(
            f"UPDATE parts SET quantity = quantity + {sql_literal(delta)} "
            f"WHERE part_id = {part_id}"
        )

    def interleaved_transfers(
        self, part_a: int, part_b: int, amount_one: int, amount_two: int
    ) -> None:
        """Two concurrent transfers interleaved without global ordering.

        Transfer 1 moves ``amount_one`` from A to B; transfer 2 moves
        ``amount_two`` from B to A.  The halves execute in the order
        1a, 2b, 2a, 1b — each system sees a serializable local history, but
        no global serial order of the two transfers produces the observed
        intermediate states.  Database-level extraction that timestamps or
        logs per system cannot reconstruct a single consistent global
        ordering, which is the §2.1 challenge.
        """
        self.global_transactions += 2
        self._notify("transfer_quantity", (part_a, part_b, amount_one))
        self._notify("transfer_quantity", (part_b, part_a, amount_two))
        self._adjust(part_a, -amount_one)  # transfer 1, first half
        self._adjust(part_b, -amount_two)  # transfer 2, first half
        self._adjust(part_a, amount_two)   # transfer 2, second half
        self._adjust(part_b, amount_one)   # transfer 1, second half

    def _notify(self, method: str, arguments: tuple) -> None:
        for listener in self.method_listeners:
            listener(method, arguments)

    # --------------------------------------------------------------- inventory
    def total_quantity(self, part_ids: list[int]) -> int:
        total = 0
        for part_id in part_ids:
            system = self.system_for(part_id)
            rows = system.wrapper_session.query(
                f"SELECT quantity FROM parts WHERE part_id = {part_id}"
            )
            if not rows:
                raise ReproError(f"part {part_id} does not exist")
            total += rows[0][0]
        return total

    def is_heterogeneous(self) -> bool:
        """Whether the systems span more than one DBMS product/version."""
        identities = {
            (s.vendor_database().product, s.vendor_database().product_version)
            for s in self.systems.values()
        }
        return len(identities) > 1

"""COTS software systems: encapsulated databases behind business APIs (§2.1).

"The COTS software often encapsulate their underlying databases and they
only expose APIs through which to access the encapsulated data."  A
:class:`CotsSystem` owns a database that outsiders are not supposed to
touch: delta extraction must either negotiate vendor cooperation
(``allows_triggers`` / ``allows_log_access``) or attach at the wrapper
seam — the COTS session's capture hooks, which is where Op-Delta lives.

Business API methods issue SQL through the internal session and forward
the same logical changes to replicas (COTS-controlled replication, §2.2:
"the COTS software control the replication logic and the DBMSs are
essentially unaware of the replication").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..clock import VirtualClock
from ..engine.costs import DEFAULT_COST_MODEL, CostModel
from ..engine.database import Database
from ..engine.session import Session
from ..engine.table import InsertMode
from ..errors import ExtractionError
from ..sql import ast_nodes as ast
from ..sql.ast_nodes import sql_literal
from ..workloads.records import PartsGenerator, parts_schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .replication import ReplicationLink


class CotsSystem:
    """One vertical application: encapsulated DBMS + business API."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock | None = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        product: str = "ReproDB",
        product_version: str = "1.0",
        allows_triggers: bool = False,
        allows_log_access: bool = False,
        archive_mode: bool = False,
        seed: int = 1,
    ) -> None:
        self.name = name
        self._db = Database(
            f"{name}-db", clock=clock, costs=costs,
            product=product, product_version=product_version,
            archive_mode=archive_mode,
        )
        self.allows_triggers = allows_triggers
        self.allows_log_access = allows_log_access
        self._db.create_table(parts_schema(), auto_timestamp=True)
        self._session = self._db.internal_session()
        self._generator = PartsGenerator(seed=seed)
        self.replication_links: list["ReplicationLink"] = []
        self.business_operations = 0
        #: Observers of business API invocations — the application/COTS
        #: boundary capture point of §2.4 (see sources.middleware).
        self.method_listeners: list[Callable[[str, tuple], None]] = []

    # -------------------------------------------------------------- the seams
    @property
    def wrapper_session(self) -> Session:
        """The COTS session — the seam where Op-Delta capture attaches.

        Attaching hooks here requires no change to user applications and
        no database privileges, exactly the wrapper approach of §2.4/§4.
        """
        return self._session

    @property
    def clock(self) -> VirtualClock:
        return self._db.clock

    def vendor_database(self) -> Database:
        """Vendor-only access to the encapsulated database.

        Extraction code must go through :meth:`open_database_for_triggers`
        or :meth:`open_database_for_logs`, which enforce the vendor's
        cooperation flags.
        """
        return self._db

    def open_database_for_triggers(self) -> Database:
        if not self.allows_triggers:
            raise ExtractionError(
                f"COTS system {self.name!r} does not permit triggers inside "
                "its encapsulated database (source autonomy, §3.1.3)"
            )
        return self._db

    def open_database_for_logs(self) -> Database:
        if not self.allows_log_access:
            raise ExtractionError(
                f"COTS system {self.name!r} does not expose its database "
                "logs (proprietary internals, §3.1.4)"
            )
        return self._db

    # ------------------------------------------------------------ business API
    def load_parts(self, count: int, start_id: int = 0) -> int:
        """Initial load (vendor utility path, not captured as business ops)."""
        table = self._db.table("parts")
        txn = self._db.begin()
        for row in self._generator.rows(count, start_id=start_id):
            table.insert(txn, row, mode=InsertMode.BULK_INTERNAL)
        self._db.commit(txn)
        return count

    def create_part(self, part_id: int) -> None:
        """Business operation: register one new part."""
        self._notify("create_part", (part_id,))
        row = self._generator.row(part_id)
        literals = ", ".join(sql_literal(v) for v in row)
        self._business(f"INSERT INTO parts VALUES ({literals})")

    def revise_parts(self, low_ref: int, high_ref: int, status: str = "revised") -> int:
        """Business operation: mark a contiguous range of parts revised."""
        self._notify("revise_parts", (low_ref, high_ref, status))
        return self._business(
            f"UPDATE parts SET status = '{status}' "
            f"WHERE part_ref >= {low_ref} AND part_ref < {high_ref}"
        )

    def reprice_supplier(self, supplier_id: int, factor: float) -> int:
        """Business operation: adjust all of one supplier's prices."""
        self._notify("reprice_supplier", (supplier_id, factor))
        return self._business(
            f"UPDATE parts SET price = price * {factor!r} "
            f"WHERE supplier_id = {supplier_id}"
        )

    def retire_parts(self, low_ref: int, high_ref: int) -> int:
        """Business operation: remove a contiguous range of parts."""
        self._notify("retire_parts", (low_ref, high_ref))
        return self._business(
            f"DELETE FROM parts WHERE part_ref >= {low_ref} AND part_ref < {high_ref}"
        )

    def part_count(self) -> int:
        return self._db.table("parts").num_rows

    def part_rows(self) -> list[tuple]:
        return sorted(values for _rid, values in self._db.table("parts").scan())

    # --------------------------------------------------------------- internals
    def _notify(self, method: str, arguments: tuple) -> None:
        for listener in self.method_listeners:
            listener(method, arguments)

    def _business(self, sql: str) -> int:
        """Run one business statement locally, then replicate it.

        Replication is COTS-level: the same *statement* is forwarded to each
        replica database over its link, outside any global transaction —
        which is why replicas can briefly (or, after a failure, durably)
        diverge, and why database-level extraction sees the change once per
        replica.
        """
        self.business_operations += 1
        result = self._session.execute(sql)
        for link in self.replication_links:
            link.forward(sql)
        return result.rows_affected


def same_statement_on(statement: ast.Statement, session: Session):
    """Helper: run a parsed statement on another system's session."""
    return session.execute_statement(statement)

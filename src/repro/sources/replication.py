"""COTS-controlled (dynamic) replication between systems (§2.2).

"When multiple representations exist for the same information in source
systems, an extraction method should be able to extract an authoritative
value ... Solutions based on database replication products often do not
apply because the COTS software control the replication logic and the
DBMSs are essentially unaware of the replication."

A :class:`ReplicationLink` forwards each business statement from the owning
system to a replica database over a costed link.  The link can *lag*
(``max_lag`` statements buffered) and *drop* statements deterministically
(``drop_every``), producing the replica divergence that makes naive
database-level extraction yield conflicting deltas — the problem the
reconciler (:mod:`repro.sources.reconcile`) and, more fundamentally,
Op-Delta's capture-above-replication solve.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..engine.remote import LinkKind, RemoteSession, open_remote

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cots import CotsSystem


class ReplicationLink:
    """Statement-based replication from one system's table to another's."""

    def __init__(
        self,
        source: "CotsSystem",
        replica: "CotsSystem",
        link: LinkKind = LinkKind.LAN,
        max_lag: int = 0,
        drop_every: int | None = None,
    ) -> None:
        self.source = source
        self.replica = replica
        self._remote: RemoteSession = open_remote(
            source.vendor_database(), replica.vendor_database(), link
        )
        self.max_lag = max_lag
        self.drop_every = drop_every
        self._buffer: deque[str] = deque()
        self.statements_forwarded = 0
        self.statements_dropped = 0
        source.replication_links.append(self)

    def forward(self, sql: str) -> None:
        """Queue (and possibly apply) one statement at the replica."""
        self.statements_forwarded += 1
        if self.drop_every and self.statements_forwarded % self.drop_every == 0:
            self.statements_dropped += 1
            return
        self._buffer.append(sql)
        while len(self._buffer) > self.max_lag:
            self._remote.execute(self._buffer.popleft())

    def flush(self) -> int:
        """Apply everything still lagging; returns statements applied."""
        applied = 0
        while self._buffer:
            self._remote.execute(self._buffer.popleft())
            applied += 1
        return applied

    @property
    def lagging(self) -> int:
        return len(self._buffer)

    def is_consistent(self) -> bool:
        """Whether source and replica hold the same logical rows.

        Timestamps are excluded: each database stamps rows from its own
        clock position, so they legitimately differ between replicas.
        """
        from ..workloads.records import parts_schema, strip_timestamp

        schema = parts_schema()
        return strip_timestamp(schema, self.source.part_rows()) == strip_timestamp(
            schema, self.replica.part_rows()
        )

"""Expression evaluation with SQL three-valued logic.

Rows are presented to the evaluator as flat mappings that contain both the
bare column names and their qualified ``alias.column`` spellings; the
executor builds these environments.  Comparisons involving NULL yield
``None`` (unknown); AND/OR follow Kleene logic; a WHERE clause keeps a row
only when the predicate is exactly ``True``.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Mapping

from ..errors import SqlAnalysisError
from . import ast_nodes as ast


def evaluate(expr: ast.Expression, env: Mapping[str, Any]) -> Any:
    """Evaluate ``expr`` against a row environment."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return _resolve(expr, env)
    if isinstance(expr, ast.BinaryOp):
        return _binary(expr, env)
    if isinstance(expr, ast.UnaryOp):
        return _unary(expr, env)
    if isinstance(expr, ast.InList):
        return _in_list(expr, env)
    if isinstance(expr, ast.Between):
        return _between(expr, env)
    if isinstance(expr, ast.Like):
        return _like(expr, env)
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.expr, env)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, ast.FuncCall):
        return _func_call(expr, env)
    if isinstance(expr, ast.Star):
        raise SqlAnalysisError("'*' is only valid directly in a select list")
    if isinstance(expr, ast.Aggregate):
        raise SqlAnalysisError(
            f"aggregate {expr.function} is only valid in a select list "
            "or HAVING context"
        )
    raise SqlAnalysisError(f"cannot evaluate expression node {type(expr).__name__}")


def is_true(value: Any) -> bool:
    """SQL WHERE semantics: only an exact True keeps the row."""
    return value is True


def _resolve(ref: ast.ColumnRef, env: Mapping[str, Any]) -> Any:
    key = f"{ref.table}.{ref.name}" if ref.table else ref.name
    try:
        return env[key]
    except KeyError:
        raise SqlAnalysisError(f"unknown column {key!r}") from None


def _binary(expr: ast.BinaryOp, env: Mapping[str, Any]) -> Any:
    op = expr.op
    if op == "AND":
        left = evaluate(expr.left, env)
        if left is False:
            return False
        right = evaluate(expr.right, env)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return _truth(left) and _truth(right)
    if op == "OR":
        left = evaluate(expr.left, env)
        if left is True:
            return True
        right = evaluate(expr.right, env)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return _truth(left) or _truth(right)

    left = evaluate(expr.left, env)
    right = evaluate(expr.right, env)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        if left is None or right is None:
            return None
        _check_comparable(left, right, op)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    if op in ("+", "-", "*", "/"):
        if left is None or right is None:
            return None
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            raise SqlAnalysisError(
                f"arithmetic {op!r} requires numbers, got {left!r} and {right!r}"
            )
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise SqlAnalysisError("division by zero")
        return left / right
    raise SqlAnalysisError(f"unknown binary operator {op!r}")


def _unary(expr: ast.UnaryOp, env: Mapping[str, Any]) -> Any:
    value = evaluate(expr.operand, env)
    if expr.op == "NOT":
        if value is None:
            return None
        return not _truth(value)
    if expr.op == "-":
        if value is None:
            return None
        if not isinstance(value, (int, float)):
            raise SqlAnalysisError(f"unary minus requires a number, got {value!r}")
        return -value
    raise SqlAnalysisError(f"unknown unary operator {expr.op!r}")


def _in_list(expr: ast.InList, env: Mapping[str, Any]) -> Any:
    value = evaluate(expr.expr, env)
    if value is None:
        return None
    saw_null = False
    for item in expr.items:
        candidate = evaluate(item, env)
        if candidate is None:
            saw_null = True
        elif candidate == value and type(candidate) is not bool:
            return not expr.negated
        elif candidate == value:
            return not expr.negated
    if saw_null:
        return None
    return expr.negated


def _between(expr: ast.Between, env: Mapping[str, Any]) -> Any:
    value = evaluate(expr.expr, env)
    low = evaluate(expr.low, env)
    high = evaluate(expr.high, env)
    if value is None or low is None or high is None:
        return None
    _check_comparable(value, low, "BETWEEN")
    _check_comparable(value, high, "BETWEEN")
    result = low <= value <= high
    return (not result) if expr.negated else result


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> re.Pattern[str]:
    regex = ["^"]
    for ch in pattern:
        if ch == "%":
            regex.append(".*")
        elif ch == "_":
            regex.append(".")
        else:
            regex.append(re.escape(ch))
    regex.append("$")
    return re.compile("".join(regex), re.DOTALL)


def _like(expr: ast.Like, env: Mapping[str, Any]) -> Any:
    value = evaluate(expr.expr, env)
    if value is None:
        return None
    if not isinstance(value, str):
        raise SqlAnalysisError(f"LIKE requires a string, got {value!r}")
    matched = _like_regex(expr.pattern).match(value) is not None
    return (not matched) if expr.negated else matched


#: Environment keys under which the executor exposes session state to
#: volatile functions.  ``__now__`` is the statement's virtual start time;
#: ``__random__`` is a zero-argument draw from the session's seeded RNG;
#: ``__user__`` identifies the session.  Evaluating a volatile function
#: without its key raises: the expression genuinely cannot be computed
#: from the row alone, which is exactly what the static analyzer flags.
NOW_KEY = "__now__"
RANDOM_KEY = "__random__"
USER_KEY = "__user__"


def _func_call(expr: ast.FuncCall, env: Mapping[str, Any]) -> Any:
    name = expr.function
    if name in ast.TIME_FUNCTIONS:
        if NOW_KEY not in env:
            raise SqlAnalysisError(
                f"{name}() needs session time context (volatile function)"
            )
        return env[NOW_KEY]
    if name == "RANDOM":
        draw = env.get(RANDOM_KEY)
        if draw is None:
            raise SqlAnalysisError("RANDOM() needs session randomness (volatile)")
        return draw()
    if name in ("SESSION_USER", "CURRENT_USER"):
        user = env.get(USER_KEY)
        if user is None:
            raise SqlAnalysisError(f"{name}() needs a session context (volatile)")
        return user
    args = [evaluate(arg, env) for arg in expr.args]
    return apply_scalar_function(name, args)


def apply_scalar_function(name: str, args: list[Any]) -> Any:
    """Apply a *pure* scalar function to already-evaluated arguments.

    Shared between the tree-walking evaluator and the columnar closure
    compiler (:mod:`repro.columnar.kernels`) so both paths agree on
    every edge case.  Volatile functions (NOW, RANDOM, session user)
    never reach here — they need session context and are handled by the
    caller.
    """
    if name == "COALESCE":
        if not args:
            raise SqlAnalysisError("COALESCE needs at least one argument")
        for value in args:
            if value is not None:
                return value
        return None
    if len(args) != 1:
        raise SqlAnalysisError(f"{name} takes exactly one argument, got {len(args)}")
    value = args[0]
    if value is None:
        return None
    if name == "ABS":
        if not isinstance(value, (int, float)):
            raise SqlAnalysisError(f"ABS requires a number, got {value!r}")
        return abs(value)
    if name == "ROUND":
        if not isinstance(value, (int, float)):
            raise SqlAnalysisError(f"ROUND requires a number, got {value!r}")
        return round(value)
    if name in ("UPPER", "LOWER", "LENGTH"):
        if not isinstance(value, str):
            raise SqlAnalysisError(f"{name} requires a string, got {value!r}")
        if name == "UPPER":
            return value.upper()
        if name == "LOWER":
            return value.lower()
        return len(value)
    raise SqlAnalysisError(f"unknown function {name!r}")


def _truth(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    raise SqlAnalysisError(f"expected a boolean condition, got {value!r}")


def _check_comparable(left: Any, right: Any, op: str) -> None:
    numeric = (int, float)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return
    if isinstance(left, str) and isinstance(right, str):
        return
    raise SqlAnalysisError(
        f"cannot compare {type(left).__name__} with {type(right).__name__} using {op!r}"
    )


# Public seams for the columnar closure compiler: the compiled kernels
# must reproduce this module's three-valued logic bit-for-bit, so they
# call the *same* helpers instead of re-implementing them.
sql_truth = _truth
check_comparable = _check_comparable
like_regex = _like_regex


def referenced_columns(expr: ast.Expression) -> set[str]:
    """All column names referenced by an expression (unqualified spellings)."""
    found: set[str] = set()

    def walk(node: ast.Expression) -> None:
        if isinstance(node, ast.ColumnRef):
            found.add(node.name)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.InList):
            walk(node.expr)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.expr)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, (ast.Like, ast.IsNull)):
            walk(node.expr)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.Aggregate) and node.argument is not None:
            walk(node.argument)

    walk(expr)
    return found


def referenced_functions(expr: ast.Expression | None) -> set[str]:
    """All scalar function names invoked anywhere in an expression."""
    found: set[str] = set()

    def walk(node: ast.Expression) -> None:
        if isinstance(node, ast.FuncCall):
            found.add(node.function)
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.InList):
            walk(node.expr)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.expr)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, (ast.Like, ast.IsNull)):
            walk(node.expr)
        elif isinstance(node, ast.Aggregate) and node.argument is not None:
            walk(node.argument)

    if expr is not None:
        walk(expr)
    return found


def split_conjuncts(expr: ast.Expression | None) -> list[ast.Expression]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]

"""SQL abstract syntax tree.

Expression and statement nodes are plain frozen dataclasses.  Every node can
render itself back to SQL text (``to_sql``) — Op-Delta relies on this: a
captured operation is *the statement*, and transformation rules rewrite the
AST and re-render it for the warehouse schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def sql_literal(value: Any) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


# --------------------------------------------------------------- expressions
class Expression:
    """Marker base class for expression nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    value: Any
    #: Source position (character offset in the statement text) when the
    #: node came from the parser; ``None`` for synthesised nodes.  Excluded
    #: from equality/hashing so rewrites compare structurally.
    pos: int | None = field(default=None, compare=False, repr=False)

    def to_sql(self) -> str:
        return sql_literal(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str
    table: str | None = None
    pos: int | None = field(default=None, compare=False, repr=False)

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison, AND/OR.  ``op`` is the SQL spelling."""

    op: str
    left: Expression
    right: Expression

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # "NOT" or "-"
    operand: Expression

    def to_sql(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.to_sql()})"
        return f"({self.op}{self.operand.to_sql()})"


@dataclass(frozen=True)
class InList(Expression):
    expr: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def to_sql(self) -> str:
        items = ", ".join(item.to_sql() for item in self.items)
        negation = "NOT " if self.negated else ""
        return f"({self.expr.to_sql()} {negation}IN ({items}))"


@dataclass(frozen=True)
class Between(Expression):
    expr: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def to_sql(self) -> str:
        negation = "NOT " if self.negated else ""
        return (
            f"({self.expr.to_sql()} {negation}BETWEEN "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class Like(Expression):
    expr: Expression
    pattern: str
    negated: bool = False

    def to_sql(self) -> str:
        negation = "NOT " if self.negated else ""
        return f"({self.expr.to_sql()} {negation}LIKE {sql_literal(self.pattern)})"


@dataclass(frozen=True)
class IsNull(Expression):
    expr: Expression
    negated: bool = False

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.expr.to_sql()} {suffix})"


AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

#: Functions whose value depends on hidden session state rather than on
#: their arguments.  The *time* functions are **pinnable**: a captured
#: statement can be replayed deterministically by substituting the capture
#: timestamp.  The rest are not recoverable after the fact.
TIME_FUNCTIONS = ("NOW", "CURRENT_TIMESTAMP")
VOLATILE_FUNCTIONS = TIME_FUNCTIONS + ("RANDOM", "SESSION_USER", "CURRENT_USER")

#: Deterministic scalar functions: value is a pure function of the inputs.
DETERMINISTIC_FUNCTIONS = ("ABS", "UPPER", "LOWER", "LENGTH", "ROUND", "COALESCE")

SCALAR_FUNCTIONS = DETERMINISTIC_FUNCTIONS + VOLATILE_FUNCTIONS


@dataclass(frozen=True)
class FuncCall(Expression):
    """A scalar function call, e.g. ``NOW()`` or ``ABS(delta)``.

    ``function`` is stored upper-cased; whether it is volatile is a property
    of the name (see :data:`VOLATILE_FUNCTIONS`), which is what the static
    analyzer keys on.
    """

    function: str
    args: tuple[Expression, ...] = ()
    pos: int | None = field(default=None, compare=False, repr=False)

    @property
    def is_volatile(self) -> bool:
        return self.function in VOLATILE_FUNCTIONS

    def to_sql(self) -> str:
        return f"{self.function}({', '.join(a.to_sql() for a in self.args)})"


@dataclass(frozen=True)
class Aggregate(Expression):
    """``COUNT(*)`` or ``SUM/AVG/MIN/MAX/COUNT(column)``."""

    function: str
    argument: ColumnRef | None  # None means COUNT(*)
    pos: int | None = field(default=None, compare=False, repr=False)

    def to_sql(self) -> str:
        arg = "*" if self.argument is None else self.argument.to_sql()
        return f"{self.function}({arg})"


@dataclass(frozen=True)
class Star(Expression):
    """``*`` in a select list."""

    def to_sql(self) -> str:
        return "*"


# ----------------------------------------------------------------- statements
class Statement:
    """Marker base class for statement nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SelectItem:
    expr: Expression
    alias: str | None = None

    def to_sql(self) -> str:
        rendered = self.expr.to_sql()
        return f"{rendered} AS {self.alias}" if self.alias else rendered


@dataclass(frozen=True)
class Join:
    table: str
    alias: str | None
    left: ColumnRef
    right: ColumnRef

    def to_sql(self) -> str:
        alias = f" {self.alias}" if self.alias else ""
        return f"JOIN {self.table}{alias} ON {self.left.to_sql()} = {self.right.to_sql()}"


@dataclass(frozen=True)
class OrderItem:
    expr: Expression
    ascending: bool = True

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class SelectStmt(Statement):
    items: tuple[SelectItem, ...]
    table: str | None = None
    alias: str | None = None
    joins: tuple[Join, ...] = ()
    where: Expression | None = None
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    table_pos: int | None = field(default=None, compare=False, repr=False)

    def to_sql(self) -> str:
        parts = ["SELECT " + ", ".join(item.to_sql() for item in self.items)]
        if self.table:
            alias = f" {self.alias}" if self.alias else ""
            parts.append(f"FROM {self.table}{alias}")
        for join in self.joins:
            parts.append(join.to_sql())
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(c.to_sql() for c in self.group_by))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclass(frozen=True)
class InsertStmt(Statement):
    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[Expression, ...], ...] = ()
    select: SelectStmt | None = None
    table_pos: int | None = field(default=None, compare=False, repr=False)

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        if self.select is not None:
            return f"INSERT INTO {self.table}{cols} {self.select.to_sql()}"
        rows = ", ".join(
            "(" + ", ".join(expr.to_sql() for expr in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{cols} VALUES {rows}"


@dataclass(frozen=True)
class Assignment:
    column: str
    expr: Expression
    pos: int | None = field(default=None, compare=False, repr=False)

    def to_sql(self) -> str:
        return f"{self.column} = {self.expr.to_sql()}"


@dataclass(frozen=True)
class UpdateStmt(Statement):
    table: str
    assignments: tuple[Assignment, ...]
    where: Expression | None = None
    table_pos: int | None = field(default=None, compare=False, repr=False)

    def to_sql(self) -> str:
        sets = ", ".join(a.to_sql() for a in self.assignments)
        where = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"UPDATE {self.table} SET {sets}{where}"


@dataclass(frozen=True)
class DeleteStmt(Statement):
    table: str
    where: Expression | None = None
    table_pos: int | None = field(default=None, compare=False, repr=False)

    def to_sql(self) -> str:
        where = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"DELETE FROM {self.table}{where}"


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    type_arg: int | None = None
    not_null: bool = False
    primary_key: bool = False

    def to_sql(self) -> str:
        type_text = (
            f"{self.type_name}({self.type_arg})" if self.type_arg is not None
            else self.type_name
        )
        suffix = ""
        if self.primary_key:
            suffix = " PRIMARY KEY"
        elif self.not_null:
            suffix = " NOT NULL"
        return f"{self.name} {type_text}{suffix}"


@dataclass(frozen=True)
class CreateTableStmt(Statement):
    table: str
    columns: tuple[ColumnDef, ...]

    def to_sql(self) -> str:
        cols = ", ".join(c.to_sql() for c in self.columns)
        return f"CREATE TABLE {self.table} ({cols})"


@dataclass(frozen=True)
class CreateIndexStmt(Statement):
    name: str
    table: str
    column: str
    unique: bool = False
    kind: str = "btree"

    def to_sql(self) -> str:
        unique = "UNIQUE " if self.unique else ""
        using = f" USING {self.kind.upper()}" if self.kind != "btree" else ""
        return f"CREATE {unique}INDEX {self.name} ON {self.table} ({self.column}){using}"


@dataclass(frozen=True)
class DropTableStmt(Statement):
    table: str

    def to_sql(self) -> str:
        return f"DROP TABLE {self.table}"


@dataclass(frozen=True)
class TruncateStmt(Statement):
    table: str

    def to_sql(self) -> str:
        return f"TRUNCATE TABLE {self.table}"


@dataclass(frozen=True)
class BeginStmt(Statement):
    def to_sql(self) -> str:
        return "BEGIN"


@dataclass(frozen=True)
class CommitStmt(Statement):
    def to_sql(self) -> str:
        return "COMMIT"


@dataclass(frozen=True)
class RollbackStmt(Statement):
    def to_sql(self) -> str:
        return "ROLLBACK"


def node_pos(expr: Expression | None) -> int | None:
    """The first known source position in an expression subtree.

    Rewritten/synthesised nodes have no position; this walks down to the
    nearest parsed descendant so diagnostics can still point somewhere.
    """
    if expr is None:
        return None
    direct = getattr(expr, "pos", None)
    if direct is not None:
        return direct
    children: Sequence[Expression] = ()
    if isinstance(expr, BinaryOp):
        children = (expr.left, expr.right)
    elif isinstance(expr, UnaryOp):
        children = (expr.operand,)
    elif isinstance(expr, InList):
        children = (expr.expr, *expr.items)
    elif isinstance(expr, Between):
        children = (expr.expr, expr.low, expr.high)
    elif isinstance(expr, (Like, IsNull)):
        children = (expr.expr,)
    elif isinstance(expr, FuncCall):
        children = expr.args
    elif isinstance(expr, Aggregate) and expr.argument is not None:
        children = (expr.argument,)
    for child in children:
        pos = node_pos(child)
        if pos is not None:
            return pos
    return None


#: Statements that change data (the ones Op-Delta capture cares about).
DML_STATEMENTS = (InsertStmt, UpdateStmt, DeleteStmt)


def is_dml(statement: Statement) -> bool:
    return isinstance(statement, DML_STATEMENTS)

"""Planner and executor.

The planner implements exactly the access-path behaviour the paper leans on
in §3.1.1: an equality predicate on an indexed column uses the index; a
range predicate uses a B-tree index only when the optimizer's statistics
say the range is selective (default threshold 5% of the table), otherwise
it falls back to a full table scan — "indices may not be used by the query
optimizer if the deltas form a significant portion of the table".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..engine.database import Database
from ..engine.rows import RowId
from ..engine.schema import Column, TableSchema
from ..engine.table import InsertMode, Table
from ..engine.transactions import Transaction
from ..engine.types import type_from_sql
from ..errors import SqlAnalysisError
from . import ast_nodes as ast
from .expressions import (
    NOW_KEY,
    RANDOM_KEY,
    USER_KEY,
    evaluate,
    is_true,
    split_conjuncts,
)

#: Ranges matching more than this fraction of the table fall back to a scan.
INDEX_SELECTIVITY_THRESHOLD = 0.05

_RANGE_OPS = {"<": ("high", False), "<=": ("high", True),
              ">": ("low", False), ">=": ("low", True)}


@dataclass
class Result:
    """Outcome of one statement."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    rows_affected: int = 0
    plan: str = ""

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlAnalysisError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class _AccessPath:
    """How the planner decided to read a table."""

    description: str
    row_ids: Iterable[RowId] | None  # None means full scan


class Executor:
    """Executes parsed statements against one :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self._db = database
        # Session randomness for RANDOM(): a *seeded* stream so whole runs
        # stay deterministic, while the value still depends on how many
        # draws preceded it — exactly the volatility the analyzer flags.
        self._rng = random.Random(0x5EED)
        self._stmt_env: dict[str, Any] = {}

    # ------------------------------------------------------------------ entry
    def execute(self, statement: ast.Statement, txn: Transaction) -> Result:
        # Session context for volatile functions, fixed per statement:
        # NOW() is the statement's virtual start time (SQL semantics).
        self._stmt_env = {
            NOW_KEY: self._db.clock.now,
            RANDOM_KEY: self._rng.random,
            USER_KEY: self._db.name,
        }
        if isinstance(statement, ast.SelectStmt):
            return self._select(statement)
        if isinstance(statement, ast.InsertStmt):
            return self._insert(statement, txn)
        if isinstance(statement, ast.UpdateStmt):
            return self._update(statement, txn)
        if isinstance(statement, ast.DeleteStmt):
            return self._delete(statement, txn)
        if isinstance(statement, ast.CreateTableStmt):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateIndexStmt):
            return self._create_index(statement)
        if isinstance(statement, ast.DropTableStmt):
            self._db.drop_table(statement.table)
            return Result(plan="drop")
        if isinstance(statement, ast.TruncateStmt):
            removed = self._db.table(statement.table).truncate()
            return Result(rows_affected=removed, plan="truncate")
        raise SqlAnalysisError(
            f"executor cannot handle {type(statement).__name__} "
            "(transaction-control statements are handled by the session)"
        )

    # ----------------------------------------------------------------- SELECT
    def _select(self, stmt: ast.SelectStmt) -> Result:
        if stmt.table is None:
            # Constant SELECT (e.g. SELECT 1 + 1): no row columns in scope.
            row = tuple(
                evaluate(item.expr, self._stmt_env) for item in stmt.items
            )
            columns = [self._item_name(item) for item in stmt.items]
            return Result(columns=columns, rows=[row], plan="const")

        base = self._db.table(stmt.table)
        base_alias = stmt.alias or stmt.table
        path = self._choose_path(base, base_alias, stmt.where)
        envs = self._table_rows(base, base_alias, path)
        plan_parts = [f"{stmt.table}:{path.description}"]

        for join in stmt.joins:
            right = self._db.table(join.table)
            right_alias = join.alias or join.table
            envs = self._hash_join(envs, base_alias, right, right_alias, join)
            plan_parts.append(f"join({join.table}:hash)")

        if stmt.where is not None:
            envs = (env for env in envs if is_true(evaluate(stmt.where, env)))

        aggregated = any(
            isinstance(item.expr, ast.Aggregate) for item in stmt.items
        ) or bool(stmt.group_by)
        if aggregated:
            rows, columns = self._aggregate(stmt, envs)
        else:
            rows, columns = self._project(stmt, envs, base, base_alias)

        if stmt.order_by:
            rows = self._order(rows, columns, stmt)
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        return Result(columns=columns, rows=rows, plan=" ".join(plan_parts))

    def _choose_path(
        self, table: Table, alias: str, where: ast.Expression | None
    ) -> _AccessPath:
        """Pick index lookup, index range scan, or full scan."""
        for conjunct in split_conjuncts(where):
            simple = self._simple_comparison(conjunct, table, alias)
            if simple is None:
                continue
            column, op, value = simple
            index = table.index_on(column)
            if index is None:
                continue
            if op == "=":
                return _AccessPath(f"index({index.name})", index.lookup(value))
            if op in _RANGE_OPS and index.supports_range:
                bound, inclusive = _RANGE_OPS[op]
                low = value if bound == "low" else None
                high = value if bound == "high" else None
                matching = index.estimate_range(
                    low, high,
                    include_low=inclusive if bound == "low" else True,
                    include_high=inclusive if bound == "high" else True,
                )
                total = max(1, table.num_rows)
                if matching / total <= INDEX_SELECTIVITY_THRESHOLD:
                    row_ids = index.range_scan(
                        low, high,
                        include_low=inclusive if bound == "low" else True,
                        include_high=inclusive if bound == "high" else True,
                    )
                    return _AccessPath(f"index-range({index.name})", row_ids)
        return _AccessPath("scan", None)

    def _simple_comparison(
        self, expr: ast.Expression, table: Table, alias: str
    ) -> tuple[str, str, Any] | None:
        """Match ``column OP literal`` (either operand order) on this table."""
        if not isinstance(expr, ast.BinaryOp):
            return None
        if expr.op not in ("=", "<", "<=", ">", ">="):
            return None
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
        candidates = [
            (expr.left, expr.op, expr.right),
            (expr.right, flip[expr.op], expr.left),
        ]
        for column_side, op, value_side in candidates:
            if not isinstance(column_side, ast.ColumnRef):
                continue
            if column_side.table not in (None, alias, table.name):
                continue
            if not isinstance(value_side, ast.Literal):
                continue
            if not table.schema.has_column(column_side.name):
                continue
            return column_side.name, op, value_side.value
        return None

    def _table_rows(
        self, table: Table, alias: str, path: _AccessPath
    ) -> Iterator[dict[str, Any]]:
        if path.row_ids is None:
            for _row_id, values in table.scan():
                yield self._env(table.schema, alias, values)
        else:
            for row_id in path.row_ids:
                values = table.read(row_id)
                yield self._env(table.schema, alias, values)

    def _env(
        self, schema: TableSchema, alias: str, values: tuple[Any, ...]
    ) -> dict[str, Any]:
        env: dict[str, Any] = dict(self._stmt_env)
        for name, value in zip(schema.column_names, values):
            env[name] = value
            env[f"{alias}.{name}"] = value
        env[f"__row__{alias}"] = values
        return env

    def _hash_join(
        self,
        left_envs: Iterable[dict[str, Any]],
        base_alias: str,
        right: Table,
        right_alias: str,
        join: ast.Join,
    ) -> Iterator[dict[str, Any]]:
        left_key, right_key = self._join_sides(join, right_alias)
        build: dict[Any, list[tuple[Any, ...]]] = {}
        key_position = right.schema.column_index(right_key.name)
        for _row_id, values in right.scan():
            build.setdefault(values[key_position], []).append(values)
        probe_cpu = self._db.costs.row_scan_cpu
        clock = self._db.clock
        for env in left_envs:
            clock.advance(probe_cpu)
            key = evaluate(left_key, env)
            for values in build.get(key, ()):
                merged = dict(env)
                merged.update(self._env(right.schema, right_alias, values))
                yield merged

    @staticmethod
    def _join_sides(join: ast.Join, right_alias: str) -> tuple[ast.ColumnRef, ast.ColumnRef]:
        """Split the ON equality into (probe-side ref, build-side ref)."""
        left, right = join.left, join.right
        if left.table == right_alias and right.table != right_alias:
            left, right = right, left
        if right.table not in (None, right_alias):
            raise SqlAnalysisError(
                f"join condition must reference the joined table {right_alias!r}"
            )
        return left, right

    def _project(
        self,
        stmt: ast.SelectStmt,
        envs: Iterable[dict[str, Any]],
        base: Table,
        base_alias: str,
    ) -> tuple[list[tuple[Any, ...]], list[str]]:
        star_aliases = [base_alias] + [j.alias or j.table for j in stmt.joins]
        star_schemas = [base.schema] + [self._db.table(j.table).schema for j in stmt.joins]
        columns: list[str] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                for schema in star_schemas:
                    columns.extend(schema.column_names)
            else:
                columns.append(self._item_name(item))
        rows = []
        for env in envs:
            out: list[Any] = []
            for item in stmt.items:
                if isinstance(item.expr, ast.Star):
                    for alias in star_aliases:
                        out.extend(env[f"__row__{alias}"])
                else:
                    out.append(evaluate(item.expr, env))
            rows.append(tuple(out))
        return rows, columns

    def _aggregate(
        self, stmt: ast.SelectStmt, envs: Iterable[dict[str, Any]]
    ) -> tuple[list[tuple[Any, ...]], list[str]]:
        for item in stmt.items:
            if not isinstance(item.expr, (ast.Aggregate, ast.ColumnRef)):
                raise SqlAnalysisError(
                    "aggregate queries may only select aggregates and "
                    "grouping columns"
                )
            if isinstance(item.expr, ast.ColumnRef) and item.expr not in stmt.group_by:
                grouped_names = {ref.name for ref in stmt.group_by}
                if item.expr.name not in grouped_names:
                    raise SqlAnalysisError(
                        f"column {item.expr.name!r} must appear in GROUP BY"
                    )
        groups: dict[tuple, list[dict[str, Any]]] = {}
        for env in envs:
            key = tuple(evaluate(ref, env) for ref in stmt.group_by)
            groups.setdefault(key, []).append(env)
        if not stmt.group_by and not groups:
            groups[()] = []  # global aggregate over an empty input
        columns = [self._item_name(item) for item in stmt.items]
        rows = []
        for key, members in groups.items():
            out: list[Any] = []
            for item in stmt.items:
                if isinstance(item.expr, ast.Aggregate):
                    out.append(self._aggregate_value(item.expr, members))
                else:
                    position = [ref.name for ref in stmt.group_by].index(
                        item.expr.name  # type: ignore[union-attr]
                    )
                    out.append(key[position])
            rows.append(tuple(out))
        return rows, columns

    @staticmethod
    def _aggregate_value(agg: ast.Aggregate, members: list[dict[str, Any]]) -> Any:
        if agg.argument is None:
            return len(members)
        values = [
            evaluate(agg.argument, env)
            for env in members
        ]
        values = [v for v in values if v is not None]
        if agg.function == "COUNT":
            return len(values)
        if not values:
            return None
        if agg.function == "SUM":
            return sum(values)
        if agg.function == "AVG":
            return sum(values) / len(values)
        if agg.function == "MIN":
            return min(values)
        if agg.function == "MAX":
            return max(values)
        raise SqlAnalysisError(f"unknown aggregate {agg.function!r}")

    def _order(
        self,
        rows: list[tuple[Any, ...]],
        columns: list[str],
        stmt: ast.SelectStmt,
    ) -> list[tuple[Any, ...]]:
        self._db.clock.advance(self._db.costs.row_scan_cpu * len(rows))
        for order in reversed(stmt.order_by):
            position = self._order_position(order.expr, columns)
            rows.sort(
                key=lambda row: (row[position] is None, row[position]),
                reverse=not order.ascending,
            )
        return rows

    @staticmethod
    def _order_position(expr: ast.Expression, columns: list[str]) -> int:
        if isinstance(expr, ast.ColumnRef):
            name = expr.name
            if name in columns:
                return columns.index(name)
        rendered = expr.to_sql()
        if rendered in columns:
            return columns.index(rendered)
        raise SqlAnalysisError(
            f"ORDER BY expression {rendered!r} is not in the select list"
        )

    @staticmethod
    def _item_name(item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        return item.expr.to_sql()

    # -------------------------------------------------------------------- DML
    def _insert(self, stmt: ast.InsertStmt, txn: Transaction) -> Result:
        table = self._db.table(stmt.table)
        if stmt.select is not None:
            selected = self._select(stmt.select)
            count = 0
            for row in selected.rows:
                values = self._arrange(table.schema, stmt.columns, row)
                table.insert(txn, values, mode=InsertMode.BULK_INTERNAL)
                count += 1
            return Result(rows_affected=count, plan="insert-select")
        mode = InsertMode.BULK_CLIENT if len(stmt.rows) > 1 else InsertMode.STATEMENT
        count = 0
        for expr_row in stmt.rows:
            literal_row = tuple(
                evaluate(expr, self._stmt_env) for expr in expr_row
            )
            values = self._arrange(table.schema, stmt.columns, literal_row)
            table.insert(txn, values, mode=mode)
            count += 1
        return Result(rows_affected=count, plan="insert")

    @staticmethod
    def _arrange(
        schema: TableSchema, columns: tuple[str, ...] | None, row: tuple[Any, ...]
    ) -> tuple[Any, ...]:
        if columns is None:
            return row
        if len(columns) != len(row):
            raise SqlAnalysisError(
                f"INSERT names {len(columns)} columns but supplies {len(row)} values"
            )
        return schema.values_from_mapping(dict(zip(columns, row)))

    def _update(self, stmt: ast.UpdateStmt, txn: Transaction) -> Result:
        table = self._db.table(stmt.table)
        alias = stmt.table
        path = self._choose_path(table, alias, stmt.where)
        matches: list[tuple[RowId, dict[str, Any]]] = []
        if path.row_ids is None:
            for row_id, values in table.scan():
                env = self._env(table.schema, alias, values)
                if stmt.where is None or is_true(evaluate(stmt.where, env)):
                    matches.append((row_id, env))
        else:
            for row_id in path.row_ids:
                values = table.read(row_id)
                env = self._env(table.schema, alias, values)
                if stmt.where is None or is_true(evaluate(stmt.where, env)):
                    matches.append((row_id, env))
        for row_id, env in matches:
            assignments = {
                a.column: evaluate(a.expr, env) for a in stmt.assignments
            }
            table.update(txn, row_id, assignments)
        return Result(rows_affected=len(matches), plan=f"update:{path.description}")

    def _delete(self, stmt: ast.DeleteStmt, txn: Transaction) -> Result:
        table = self._db.table(stmt.table)
        alias = stmt.table
        path = self._choose_path(table, alias, stmt.where)
        matches: list[RowId] = []
        if path.row_ids is None:
            for row_id, values in table.scan():
                env = self._env(table.schema, alias, values)
                if stmt.where is None or is_true(evaluate(stmt.where, env)):
                    matches.append(row_id)
        else:
            for row_id in path.row_ids:
                values = table.read(row_id)
                env = self._env(table.schema, alias, values)
                if stmt.where is None or is_true(evaluate(stmt.where, env)):
                    matches.append(row_id)
        for row_id in matches:
            table.delete(txn, row_id)
        return Result(rows_affected=len(matches), plan=f"delete:{path.description}")

    # -------------------------------------------------------------------- DDL
    def _create_table(self, stmt: ast.CreateTableStmt) -> Result:
        columns = []
        primary_key = None
        for definition in stmt.columns:
            datatype = type_from_sql(definition.type_name, definition.type_arg)
            nullable = not (definition.not_null or definition.primary_key)
            columns.append(Column(definition.name, datatype, nullable))
            if definition.primary_key:
                if primary_key is not None:
                    raise SqlAnalysisError(
                        f"table {stmt.table!r} declares multiple primary keys"
                    )
                primary_key = definition.name
        schema = TableSchema(stmt.table, columns, primary_key=primary_key)
        self._db.create_table(schema)
        return Result(plan="create-table")

    def _create_index(self, stmt: ast.CreateIndexStmt) -> Result:
        table = self._db.table(stmt.table)
        table.create_index(stmt.name, stmt.column, unique=stmt.unique, kind=stmt.kind)
        return Result(plan="create-index")

"""SQL front end: lexer, parser, AST, expression evaluation, executor."""

from . import ast_nodes
from .executor import Executor, Result
from .lexer import Token, TokenKind, tokenize
from .parser import parse, parse_expression

__all__ = [
    "ast_nodes",
    "Executor",
    "Result",
    "Token",
    "TokenKind",
    "tokenize",
    "parse",
    "parse_expression",
]

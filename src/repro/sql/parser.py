"""Recursive-descent SQL parser.

Grammar (informal)::

    statement   := select | insert | update | delete | create_table
                 | create_index | drop_table | truncate | begin | commit | rollback
    select      := SELECT select_items [FROM ident [alias] join* [WHERE expr]
                   [GROUP BY columns] [ORDER BY order_items] [LIMIT int]]
    join        := [INNER] JOIN ident [alias] ON column = column
    insert      := INSERT INTO ident [(cols)] (VALUES rows | select)
    update      := UPDATE ident SET assignment (, assignment)* [WHERE expr]
    delete      := DELETE FROM ident [WHERE expr]
    expr        := or_expr with the usual precedence
                   (OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < +- < */ < unary)
"""

from __future__ import annotations

from ..errors import SqlSyntaxError
from . import ast_nodes as ast
from .lexer import Token, TokenKind, tokenize

_COMPARISONS = ("=", "!=", "<>", "<=", ">=", "<", ">")
_TYPE_KEYWORDS = (
    "CHAR", "VARCHAR", "INTEGER", "INT", "BIGINT",
    "FLOAT", "DOUBLE", "REAL", "TIMESTAMP",
)
_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def parse(sql: str) -> ast.Statement:
    """Parse a single SQL statement (optional trailing ``;``)."""
    return _Parser(tokenize(sql), sql).parse_statement()


def parse_expression(sql: str) -> ast.Expression:
    """Parse a bare expression (used by tests and view predicates)."""
    parser = _Parser(tokenize(sql), sql)
    expr = parser._expression()
    parser._expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token], sql: str) -> None:
        self._tokens = tokens
        self._sql = sql
        self._pos = 0

    # ---------------------------------------------------------------- plumbing
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _check(self, kind: TokenKind, text: str | None = None) -> bool:
        return self._peek().matches(kind, text)

    def _accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            actual = self._peek()
            wanted = text or kind.value
            raise SqlSyntaxError(
                f"expected {wanted} but found {actual.text or 'end of input'!r} "
                f"at position {actual.position} in: {self._sql!r}"
            )
        return token

    def _expect_eof(self) -> None:
        self._accept(TokenKind.SYMBOL, ";")
        if not self._check(TokenKind.EOF):
            token = self._peek()
            raise SqlSyntaxError(
                f"unexpected trailing input {token.text!r} at position "
                f"{token.position} in: {self._sql!r}"
            )

    def _identifier(self) -> str:
        return self._expect(TokenKind.IDENT).text

    def _table_name(self) -> Token:
        """A table name: ``ident`` or a qualified ``schema.ident``.

        Qualified names (``sys.events``) are folded into a single dotted
        string — the engine resolves them as flat table names, so the
        parser never needs a notion of namespaces.  The returned token
        carries the position of the first part for diagnostics.
        """
        first = self._expect(TokenKind.IDENT)
        if self._check(TokenKind.SYMBOL, ".") and self._tokens[
            self._pos + 1
        ].kind is TokenKind.IDENT:
            self._advance()
            second = self._expect(TokenKind.IDENT)
            return Token(
                TokenKind.IDENT, f"{first.text}.{second.text}", first.position
            )
        return first

    # -------------------------------------------------------------- statements
    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.kind is not TokenKind.KEYWORD:
            raise SqlSyntaxError(
                f"statement must start with a keyword, found {token.text!r}"
            )
        dispatch = {
            "SELECT": self._select,
            "INSERT": self._insert,
            "UPDATE": self._update,
            "DELETE": self._delete,
            "CREATE": self._create,
            "DROP": self._drop,
            "TRUNCATE": self._truncate,
            "BEGIN": self._begin,
            "COMMIT": self._commit,
            "ROLLBACK": self._rollback,
        }
        handler = dispatch.get(token.text)
        if handler is None:
            raise SqlSyntaxError(f"unsupported statement keyword {token.text!r}")
        statement = handler()
        self._expect_eof()
        return statement

    def _select(self) -> ast.SelectStmt:
        self._expect(TokenKind.KEYWORD, "SELECT")
        items = self._select_items()
        table = alias = None
        joins: list[ast.Join] = []
        where = None
        group_by: list[ast.ColumnRef] = []
        order_by: list[ast.OrderItem] = []
        limit = None
        table_pos = None
        if self._accept(TokenKind.KEYWORD, "FROM"):
            table_token = self._table_name()
            table = table_token.text
            table_pos = table_token.position
            alias = self._optional_alias()
            while self._check(TokenKind.KEYWORD, "JOIN") or self._check(
                TokenKind.KEYWORD, "INNER"
            ):
                self._accept(TokenKind.KEYWORD, "INNER")
                self._expect(TokenKind.KEYWORD, "JOIN")
                join_table = self._table_name().text
                join_alias = self._optional_alias()
                self._expect(TokenKind.KEYWORD, "ON")
                left = self._column_ref()
                self._expect(TokenKind.SYMBOL, "=")
                right = self._column_ref()
                joins.append(ast.Join(join_table, join_alias, left, right))
            if self._accept(TokenKind.KEYWORD, "WHERE"):
                where = self._expression()
            if self._accept(TokenKind.KEYWORD, "GROUP"):
                self._expect(TokenKind.KEYWORD, "BY")
                group_by.append(self._column_ref())
                while self._accept(TokenKind.SYMBOL, ","):
                    group_by.append(self._column_ref())
            if self._accept(TokenKind.KEYWORD, "ORDER"):
                self._expect(TokenKind.KEYWORD, "BY")
                order_by.append(self._order_item())
                while self._accept(TokenKind.SYMBOL, ","):
                    order_by.append(self._order_item())
            if self._accept(TokenKind.KEYWORD, "LIMIT"):
                limit = int(self._expect(TokenKind.INTEGER).text)
        return ast.SelectStmt(
            items=tuple(items), table=table, alias=alias, joins=tuple(joins),
            where=where, group_by=tuple(group_by), order_by=tuple(order_by),
            limit=limit, table_pos=table_pos,
        )

    def _select_items(self) -> list[ast.SelectItem]:
        items = [self._select_item()]
        while self._accept(TokenKind.SYMBOL, ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.SelectItem:
        if self._accept(TokenKind.SYMBOL, "*"):
            return ast.SelectItem(ast.Star())
        expr = self._expression()
        alias = None
        if self._accept(TokenKind.KEYWORD, "AS"):
            alias = self._identifier()
        elif self._check(TokenKind.IDENT):
            alias = self._advance().text
        return ast.SelectItem(expr, alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._expression()
        ascending = True
        if self._accept(TokenKind.KEYWORD, "DESC"):
            ascending = False
        else:
            self._accept(TokenKind.KEYWORD, "ASC")
        return ast.OrderItem(expr, ascending)

    def _optional_alias(self) -> str | None:
        if self._accept(TokenKind.KEYWORD, "AS"):
            return self._identifier()
        if self._check(TokenKind.IDENT):
            return self._advance().text
        return None

    def _insert(self) -> ast.InsertStmt:
        self._expect(TokenKind.KEYWORD, "INSERT")
        self._expect(TokenKind.KEYWORD, "INTO")
        table_token = self._table_name()
        table = table_token.text
        columns: tuple[str, ...] | None = None
        if self._accept(TokenKind.SYMBOL, "("):
            names = [self._identifier()]
            while self._accept(TokenKind.SYMBOL, ","):
                names.append(self._identifier())
            self._expect(TokenKind.SYMBOL, ")")
            columns = tuple(names)
        if self._check(TokenKind.KEYWORD, "SELECT"):
            select = self._select()
            return ast.InsertStmt(
                table, columns, select=select, table_pos=table_token.position
            )
        self._expect(TokenKind.KEYWORD, "VALUES")
        rows = [self._value_row()]
        while self._accept(TokenKind.SYMBOL, ","):
            rows.append(self._value_row())
        return ast.InsertStmt(
            table, columns, rows=tuple(rows), table_pos=table_token.position
        )

    def _value_row(self) -> tuple[ast.Expression, ...]:
        self._expect(TokenKind.SYMBOL, "(")
        exprs = [self._expression()]
        while self._accept(TokenKind.SYMBOL, ","):
            exprs.append(self._expression())
        self._expect(TokenKind.SYMBOL, ")")
        return tuple(exprs)

    def _update(self) -> ast.UpdateStmt:
        self._expect(TokenKind.KEYWORD, "UPDATE")
        table_token = self._table_name()
        self._expect(TokenKind.KEYWORD, "SET")
        assignments = [self._assignment()]
        while self._accept(TokenKind.SYMBOL, ","):
            assignments.append(self._assignment())
        where = None
        if self._accept(TokenKind.KEYWORD, "WHERE"):
            where = self._expression()
        return ast.UpdateStmt(
            table_token.text, tuple(assignments), where,
            table_pos=table_token.position,
        )

    def _assignment(self) -> ast.Assignment:
        column_token = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.SYMBOL, "=")
        return ast.Assignment(
            column_token.text, self._expression(), pos=column_token.position
        )

    def _delete(self) -> ast.DeleteStmt:
        self._expect(TokenKind.KEYWORD, "DELETE")
        self._expect(TokenKind.KEYWORD, "FROM")
        table_token = self._table_name()
        where = None
        if self._accept(TokenKind.KEYWORD, "WHERE"):
            where = self._expression()
        return ast.DeleteStmt(
            table_token.text, where, table_pos=table_token.position
        )

    def _create(self) -> ast.Statement:
        self._expect(TokenKind.KEYWORD, "CREATE")
        if self._accept(TokenKind.KEYWORD, "TABLE"):
            return self._create_table_body()
        unique = bool(self._accept(TokenKind.KEYWORD, "UNIQUE"))
        self._expect(TokenKind.KEYWORD, "INDEX")
        name = self._identifier()
        self._expect(TokenKind.KEYWORD, "ON")
        table = self._table_name().text
        self._expect(TokenKind.SYMBOL, "(")
        column = self._identifier()
        self._expect(TokenKind.SYMBOL, ")")
        kind = "btree"
        if self._accept(TokenKind.KEYWORD, "USING"):
            kind_token = self._advance()
            kind = kind_token.text.lower()
        return ast.CreateIndexStmt(name, table, column, unique, kind)

    def _create_table_body(self) -> ast.CreateTableStmt:
        table = self._identifier()
        self._expect(TokenKind.SYMBOL, "(")
        columns = [self._column_def()]
        while self._accept(TokenKind.SYMBOL, ","):
            columns.append(self._column_def())
        self._expect(TokenKind.SYMBOL, ")")
        return ast.CreateTableStmt(table, tuple(columns))

    def _column_def(self) -> ast.ColumnDef:
        name = self._identifier()
        type_token = self._peek()
        if type_token.kind is not TokenKind.KEYWORD or type_token.text not in _TYPE_KEYWORDS:
            raise SqlSyntaxError(f"expected a type after column {name!r}")
        self._advance()
        type_arg = None
        if self._accept(TokenKind.SYMBOL, "("):
            type_arg = int(self._expect(TokenKind.INTEGER).text)
            self._expect(TokenKind.SYMBOL, ")")
        not_null = False
        primary_key = False
        while True:
            if self._accept(TokenKind.KEYWORD, "NOT"):
                self._expect(TokenKind.KEYWORD, "NULL")
                not_null = True
            elif self._accept(TokenKind.KEYWORD, "PRIMARY"):
                self._expect(TokenKind.KEYWORD, "KEY")
                primary_key = True
            else:
                break
        return ast.ColumnDef(name, type_token.text, type_arg, not_null, primary_key)

    def _drop(self) -> ast.DropTableStmt:
        self._expect(TokenKind.KEYWORD, "DROP")
        self._expect(TokenKind.KEYWORD, "TABLE")
        return ast.DropTableStmt(self._table_name().text)

    def _truncate(self) -> ast.TruncateStmt:
        self._expect(TokenKind.KEYWORD, "TRUNCATE")
        self._accept(TokenKind.KEYWORD, "TABLE")
        return ast.TruncateStmt(self._table_name().text)

    def _begin(self) -> ast.BeginStmt:
        self._expect(TokenKind.KEYWORD, "BEGIN")
        return ast.BeginStmt()

    def _commit(self) -> ast.CommitStmt:
        self._expect(TokenKind.KEYWORD, "COMMIT")
        return ast.CommitStmt()

    def _rollback(self) -> ast.RollbackStmt:
        self._expect(TokenKind.KEYWORD, "ROLLBACK")
        return ast.RollbackStmt()

    # ------------------------------------------------------------- expressions
    def _expression(self) -> ast.Expression:
        return self._or_expr()

    def _or_expr(self) -> ast.Expression:
        left = self._and_expr()
        while self._accept(TokenKind.KEYWORD, "OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expression:
        left = self._not_expr()
        while self._accept(TokenKind.KEYWORD, "AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expression:
        if self._accept(TokenKind.KEYWORD, "NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expression:
        left = self._additive()
        token = self._peek()
        if token.kind is TokenKind.SYMBOL and token.text in _COMPARISONS:
            op = self._advance().text
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._additive())
        negated = False
        if self._check(TokenKind.KEYWORD, "NOT"):
            following = self._tokens[self._pos + 1]
            if following.kind is TokenKind.KEYWORD and following.text in (
                "IN", "BETWEEN", "LIKE"
            ):
                self._advance()
                negated = True
        if self._accept(TokenKind.KEYWORD, "IN"):
            self._expect(TokenKind.SYMBOL, "(")
            items = [self._expression()]
            while self._accept(TokenKind.SYMBOL, ","):
                items.append(self._expression())
            self._expect(TokenKind.SYMBOL, ")")
            return ast.InList(left, tuple(items), negated)
        if self._accept(TokenKind.KEYWORD, "BETWEEN"):
            low = self._additive()
            self._expect(TokenKind.KEYWORD, "AND")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if self._accept(TokenKind.KEYWORD, "LIKE"):
            pattern = self._expect(TokenKind.STRING).text
            return ast.Like(left, pattern, negated)
        if self._accept(TokenKind.KEYWORD, "IS"):
            is_negated = bool(self._accept(TokenKind.KEYWORD, "NOT"))
            self._expect(TokenKind.KEYWORD, "NULL")
            return ast.IsNull(left, is_negated)
        if negated:
            raise SqlSyntaxError("dangling NOT before a non-predicate")
        return left

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind is TokenKind.SYMBOL and token.text in ("+", "-"):
                op = self._advance().text
                left = ast.BinaryOp(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.SYMBOL and token.text in ("*", "/"):
                op = self._advance().text
                left = ast.BinaryOp(op, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expression:
        if self._accept(TokenKind.SYMBOL, "-"):
            return ast.UnaryOp("-", self._unary())
        if self._accept(TokenKind.SYMBOL, "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.INTEGER:
            self._advance()
            return ast.Literal(int(token.text), pos=token.position)
        if token.kind is TokenKind.FLOAT:
            self._advance()
            return ast.Literal(float(token.text), pos=token.position)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.text, pos=token.position)
        if token.kind is TokenKind.KEYWORD and token.text == "NULL":
            self._advance()
            return ast.Literal(None, pos=token.position)
        if token.kind is TokenKind.KEYWORD and token.text in _AGGREGATES:
            function = self._advance().text
            self._expect(TokenKind.SYMBOL, "(")
            if self._accept(TokenKind.SYMBOL, "*"):
                if function != "COUNT":
                    raise SqlSyntaxError(f"{function}(*) is not valid")
                argument = None
            else:
                argument = self._column_ref()
            self._expect(TokenKind.SYMBOL, ")")
            return ast.Aggregate(function, argument, pos=token.position)
        if token.kind is TokenKind.SYMBOL and token.text == "(":
            self._advance()
            expr = self._expression()
            self._expect(TokenKind.SYMBOL, ")")
            return expr
        if token.kind is TokenKind.IDENT:
            following = self._tokens[self._pos + 1]
            if following.matches(TokenKind.SYMBOL, "("):
                return self._func_call()
            return self._column_ref()
        raise SqlSyntaxError(
            f"unexpected token {token.text or 'end of input'!r} at position "
            f"{token.position} in expression"
        )

    def _func_call(self) -> ast.FuncCall:
        name_token = self._expect(TokenKind.IDENT)
        name = name_token.text.upper()
        if name not in ast.SCALAR_FUNCTIONS:
            raise SqlSyntaxError(
                f"unknown function {name!r}; supported scalar functions: "
                f"{', '.join(sorted(ast.SCALAR_FUNCTIONS))}"
            )
        self._expect(TokenKind.SYMBOL, "(")
        args: list[ast.Expression] = []
        if not self._check(TokenKind.SYMBOL, ")"):
            args.append(self._expression())
            while self._accept(TokenKind.SYMBOL, ","):
                args.append(self._expression())
        self._expect(TokenKind.SYMBOL, ")")
        return ast.FuncCall(name, tuple(args), pos=name_token.position)

    def _column_ref(self) -> ast.ColumnRef:
        first = self._expect(TokenKind.IDENT)
        if self._accept(TokenKind.SYMBOL, "."):
            second = self._expect(TokenKind.IDENT).text
            return ast.ColumnRef(second, table=first.text, pos=first.position)
        return ast.ColumnRef(first.text, pos=first.position)

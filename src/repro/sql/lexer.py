"""SQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  String
literals use single quotes with ``''`` escaping; identifiers are
case-preserving but keywords are recognised case-insensitively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "INSERT", "INTO", "VALUES",
    "UPDATE", "SET", "DELETE", "CREATE", "TABLE", "INDEX", "UNIQUE", "ON",
    "PRIMARY", "KEY", "DROP", "JOIN", "INNER", "GROUP", "BY", "ORDER", "ASC",
    "DESC", "LIMIT", "AS", "IN", "BETWEEN", "LIKE", "IS", "NULL", "COUNT",
    "SUM", "AVG", "MIN", "MAX", "BEGIN", "COMMIT", "ROLLBACK", "TRUNCATE",
    "CHAR", "VARCHAR", "INTEGER", "INT", "BIGINT", "FLOAT", "DOUBLE", "REAL",
    "TIMESTAMP", "DISTINCT", "USING", "HASH", "BTREE",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", "+",
           "-", "/", ".", ";")


class TokenKind(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    STRING = "STRING"
    SYMBOL = "SYMBOL"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def matches(self, kind: TokenKind, text: str | None = None) -> bool:
        return self.kind is kind and (text is None or self.text == text)

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r})"


def tokenize(sql: str) -> list[Token]:
    """Tokenize a statement; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = length if newline == -1 else newline + 1
            continue
        if ch == "'":
            start = i
            i += 1
            chunks: list[str] = []
            while True:
                if i >= length:
                    raise SqlSyntaxError(f"unterminated string literal at {start}")
                if sql[i] == "'":
                    if i + 1 < length and sql[i + 1] == "'":
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(sql[i])
                i += 1
            tokens.append(Token(TokenKind.STRING, "".join(chunks), start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            start = i
            saw_dot = False
            saw_exp = False
            while i < length:
                c = sql[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not saw_dot and not saw_exp:
                    saw_dot = True
                    i += 1
                elif c in "eE" and not saw_exp and i > start:
                    saw_exp = True
                    i += 1
                    if i < length and sql[i] in "+-":
                        i += 1
                else:
                    break
            text = sql[start:i]
            kind = TokenKind.FLOAT if (saw_dot or saw_exp) else TokenKind.INTEGER
            tokens.append(Token(kind, text, start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenKind.IDENT, word, start))
            continue
        for symbol in SYMBOLS:
            if sql.startswith(symbol, i):
                tokens.append(Token(TokenKind.SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenKind.EOF, "", length))
    return tokens

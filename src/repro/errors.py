"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the engine, SQL, extraction and warehouse
layers when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EngineError(ReproError):
    """Base class for storage-engine failures."""


class CatalogError(EngineError):
    """A schema object (table, index, trigger, column) is missing or duplicated."""


class SchemaError(EngineError):
    """A schema definition or a row does not satisfy schema constraints."""


class StorageError(EngineError):
    """Page/heap-level failure (bad record id, page overflow, unknown page)."""


class TransactionError(EngineError):
    """Illegal transaction state transition (e.g. commit of an aborted txn)."""


class ConstraintError(EngineError):
    """A data constraint (primary key uniqueness, NOT NULL) was violated."""


class TriggerError(EngineError):
    """A trigger action failed; per the paper this aborts the user transaction."""


class UtilityError(EngineError):
    """Export/Import/Loader utility failure (bad format, wrong product)."""


class LogError(EngineError):
    """WAL / archive-log failure (bad LSN, unreadable segment, version skew)."""


class RecoveryError(EngineError):
    """Redo recovery could not be completed."""


class SqlError(ReproError):
    """Base class for SQL front-end failures."""


class SqlSyntaxError(SqlError):
    """The statement text could not be tokenized or parsed."""


class SqlAnalysisError(SqlError):
    """The statement parsed but refers to unknown objects or mistypes values."""


class SemanticError(SqlAnalysisError):
    """The schema-aware semantic checker rejected a statement.

    Raised at Op-Delta capture time (the wrapper seam) so malformed
    statements never reach the store or the warehouse apply path.  Carries
    the individual :class:`repro.semantics.Diagnostic` records.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class ExtractionError(ReproError):
    """A delta-extraction method could not produce its deltas."""


class SnapshotError(ExtractionError):
    """Snapshot dump/compare failure."""


class OpDeltaError(ReproError):
    """Op-Delta capture, storage or application failure."""


class SelfMaintenanceError(OpDeltaError):
    """A view cannot be maintained from the information captured."""


class WarehouseError(ReproError):
    """Warehouse-side integration or view-maintenance failure."""


class TransportError(ReproError):
    """Delta transport (queue/shipper) failure."""


class SimulationError(ReproError):
    """Discrete-event simulation misuse (e.g. yielding a negative delay)."""


class ObservabilityError(ReproError):
    """Metrics/tracing misuse (bad metric name, kind clash, span disorder)."""


class AnalysisError(ReproError):
    """Static Op-Delta analysis failure (unsupported statement shape)."""

"""Metric instruments and their registry.

The registry hands out three instrument kinds, all recording **virtual**
quantities only (counts, bytes, virtual milliseconds) so that every value
is deterministic across runs:

* :class:`Counter` — a monotonically increasing total (``inc``);
* :class:`Gauge` — a point-in-time level with a high-water mark (``set``);
* :class:`Histogram` — a bucketed distribution (``observe``).

Instruments are named ``<subsystem>.<object>.<event>`` (for example
``engine.buffer.miss``) and may carry labels — the same name with
different labels is a different time series, exactly as in Prometheus.
Getting an instrument is idempotent: the first call creates it, later
calls return the same object, so hot paths hold a direct reference and an
increment is one attribute bump.

:class:`NullRegistry` (and its shared :data:`NULL_REGISTRY` instance) is
the explicit opt-out: every instrument it returns is a shared no-op
singleton, so instrumented code pays one dynamic call and nothing else.
Note that code which *reads back* instrument values (the engine's
``hits``/``misses`` read-through properties) will read zero under the null
registry — it trades introspection for the last bit of speed.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from collections.abc import Iterator
from typing import Any

from ..errors import ObservabilityError

#: Metric names follow ``<subsystem>.<object>.<event>`` — at least two dots
#: of lowercase words, enforced at creation time so typos fail fast.
_NAME_PATTERN = re.compile(r"^[a-z0-9_]+\.[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Default histogram bucket upper bounds (virtual milliseconds): a 1-2.5-5
#: ladder from sub-millisecond index probes up to multi-minute maintenance
#: windows.  Values above the last bound land in an overflow bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
    25_000.0, 50_000.0, 100_000.0, 250_000.0, 500_000.0, 1_000_000.0,
)


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(labels.items()))


def qualify(name: str, labels: dict[str, Any]) -> str:
    """Render ``name{k=v,...}`` the way the snapshot and reports key series."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Instrument:
    """Common identity of every metric instrument."""

    __slots__ = ("name", "labels")
    kind = "instrument"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels

    @property
    def qualified_name(self) -> str:
        return qualify(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.qualified_name!r})"


class Counter(Instrument):
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge(Instrument):
    """A point-in-time level; remembers its high-water mark."""

    __slots__ = ("value", "high_water")
    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.value: float = 0
        self.high_water: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Histogram(Instrument):
    """A bucketed distribution of deterministic observations."""

    __slots__ = ("buckets", "bucket_counts", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, Any],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.buckets = tuple(buckets)
        #: One slot per bound plus the overflow bucket.
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket bound at quantile ``q`` (0..1); 0 when empty."""
        if not 0 <= q <= 1:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for position, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if position < len(self.buckets):
                    return self.buckets[position]
                return self.max if self.max is not None else 0.0
        return self.max if self.max is not None else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Creates, deduplicates and exports metric instruments."""

    #: Instrumented code may branch on this to skip expensive preparation
    #: (string formatting, snapshots) when metrics are off.
    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, tuple], Instrument] = {}

    # ------------------------------------------------------------ instruments
    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: Any
    ) -> Histogram:
        extra = {} if buckets is None else {"buckets": tuple(buckets)}
        return self._get(Histogram, name, labels, **extra)

    def labelled(self, **labels: Any) -> LabelledRegistry:
        """A view of this registry that stamps ``labels`` on every instrument."""
        return LabelledRegistry(self, labels)

    def _get(self, cls: type, name: str, labels: dict[str, Any], **extra: Any):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            if not _NAME_PATTERN.match(name):
                raise ObservabilityError(
                    f"metric name {name!r} does not follow the "
                    "'<subsystem>.<object>.<event>' convention"
                )
            instrument = cls(name, dict(labels), **extra)
            self._instruments[key] = instrument
        elif type(instrument) is not cls:
            raise ObservabilityError(
                f"metric {qualify(name, labels)!r} is a {instrument.kind}, "
                f"not a {cls.kind}"
            )
        return instrument

    # ------------------------------------------------------------------ reads
    def instruments(self) -> Iterator[Instrument]:
        """All instruments, sorted by qualified name (deterministic order)."""
        return iter(sorted(
            self._instruments.values(), key=lambda i: i.qualified_name
        ))

    def value(self, name: str, **labels: Any) -> float:
        """Read one series: counter/gauge value, histogram count; 0 if absent."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            return float(instrument.count)
        return instrument.value  # type: ignore[union-attr]

    def total(self, name: str) -> float:
        """Sum a metric across every label combination it was recorded with."""
        total = 0.0
        for (metric_name, _), instrument in self._instruments.items():
            if metric_name != name:
                continue
            if isinstance(instrument, Histogram):
                total += instrument.count
            else:
                total += instrument.value  # type: ignore[union-attr]
        return total

    # ----------------------------------------------------------------- export
    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A plain-dict export: kind -> qualified name -> value(s)."""
        counters: dict[str, float] = {}
        gauges: dict[str, dict[str, float]] = {}
        histograms: dict[str, dict[str, float]] = {}
        for instrument in self.instruments():
            key = instrument.qualified_name
            if isinstance(instrument, Counter):
                counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[key] = {
                    "value": instrument.value, "high_water": instrument.high_water
                }
            else:
                assert isinstance(instrument, Histogram)
                histograms[key] = instrument.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({len(self._instruments)} instruments)"


class LabelledRegistry:
    """A registry view that merges fixed labels into every request.

    Call-site labels win over the fixed ones, and views nest — the
    engine's components receive ``registry.labelled(db=name)`` from their
    :class:`~repro.engine.database.Database` so every engine series is
    attributable to its instance without the components knowing about it.
    """

    __slots__ = ("_parent", "_labels")

    def __init__(self, parent: MetricsRegistry, labels: dict[str, Any]) -> None:
        self._parent = parent
        self._labels = labels

    @property
    def enabled(self) -> bool:
        return self._parent.enabled

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._parent.counter(name, **{**self._labels, **labels})

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._parent.gauge(name, **{**self._labels, **labels})

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: Any
    ) -> Histogram:
        return self._parent.histogram(
            name, buckets=buckets, **{**self._labels, **labels}
        )

    def labelled(self, **labels: Any) -> LabelledRegistry:
        return LabelledRegistry(self._parent, {**self._labels, **labels})


class NullRegistry(MetricsRegistry):
    """A registry whose instruments record nothing.

    Every request returns a shared no-op singleton, so the instrumented
    hot path costs one method call that immediately returns.
    """

    enabled = False

    _COUNTER = _NullCounter("null.null.counter", {})
    _GAUGE = _NullGauge("null.null.gauge", {})
    _HISTOGRAM = _NullHistogram("null.null.histogram", {})

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._GAUGE

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: Any
    ) -> Histogram:
        return self._HISTOGRAM

    def labelled(self, **labels: Any) -> NullRegistry:  # type: ignore[override]
        return self


#: Shared do-nothing registry for explicitly un-instrumented components.
NULL_REGISTRY = NullRegistry()

#: What instrumented components accept: a registry or a labelled view of one.
MetricsLike = MetricsRegistry | LabelledRegistry


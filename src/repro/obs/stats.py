"""Shared deterministic statistics over exact virtual-time samples.

Both the pipeline layer's :class:`~repro.obs.pipeline.watermarks.LagSamples`
and the flight recorder's :class:`~repro.obs.flight.series.RingSeries`
answer the same two questions — "what is the p-th percentile of these
samples?" and "how fast is this quantity moving over that window?" — so the
arithmetic lives here once.

Both functions are **exact**: nearest-rank percentiles return an actual
observed sample (never an interpolation), and windowed rates divide exact
virtual-millisecond deltas.  The percentile rank is computed in integer
arithmetic (percent points, then a ceiling division) so that pinned
regression values can never drift with floating-point rounding of
``q * n``.
"""

from __future__ import annotations

from typing import Sequence


def nearest_rank_percentile(values: Sequence[float], q: float) -> float:
    """The nearest-rank ``q``-percentile (``0 <= q <= 1``) of ``values``.

    Deterministic and exact: the result is always one of the samples.  The
    rank is ``ceil(percent * n / 100)`` with ``percent = int(q * 100)``,
    clamped to ``[1, n]``; an empty sample set yields 0.0.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    percent = min(100, max(0, int(q * 100)))
    rank = max(1, -(-percent * len(ordered) // 100))  # ceil division
    return ordered[min(rank, len(ordered)) - 1]


def windowed_rate(points: Sequence[tuple[float, float]]) -> float:
    """The average rate of change over ``(at_ms, value)`` points, per second.

    The rate is the value delta between the first and last point divided by
    the virtual time between them (scaled to per-second).  Fewer than two
    points — or points sharing one instant — have no measurable rate: 0.0.
    Points must already be in non-decreasing ``at_ms`` order (ring series
    record monotonically, so callers get this for free).
    """
    if len(points) < 2:
        return 0.0
    first_at, first_value = points[0]
    last_at, last_value = points[-1]
    elapsed_ms = last_at - first_at
    if elapsed_ms <= 0:
        return 0.0
    return (last_value - first_value) / elapsed_ms * 1000.0

"""Hierarchical spans stamped in virtual milliseconds.

A :class:`Tracer` records nested regions of work against a
:class:`~repro.clock.VirtualClock`::

    tracer = Tracer(clock)
    with tracer.span("extract.timestamp.scan"):
        ...

Spans nest lexically (the engine is single-threaded, so the open-span
stack *is* the call hierarchy) and are stamped with the clock's virtual
time on entry and exit — never the host clock — so a trace is exactly as
deterministic as the experiment that produced it.

Because one experiment can involve several databases with *different*
clocks (a source, a staging area, a warehouse), the tracer itself is not
married to one clock: :meth:`Tracer.bound` returns a lightweight view tied
to a specific clock, and every :class:`~repro.engine.database.Database`
holds such a view over the shared tracer.

Export: :meth:`Tracer.chrome_trace_events` renders the spans as Chrome
``chrome://tracing`` / Perfetto "complete" (``ph: "X"``) events with
microsecond timestamps, and :meth:`Tracer.to_chrome_json` wraps them in a
loadable JSON document.
"""

from __future__ import annotations

import json
from typing import Any

from ..clock import VirtualClock
from ..errors import ObservabilityError


class Span:
    """One traced region: name, virtual start/end, position in the tree."""

    __slots__ = ("name", "start_ms", "end_ms", "depth", "parent", "args")

    def __init__(
        self,
        name: str,
        start_ms: float,
        depth: int,
        parent: Span | None,
        args: dict[str, Any],
    ) -> None:
        self.name = name
        self.start_ms = start_ms
        self.end_ms: float | None = None
        self.depth = depth
        self.parent = parent
        self.args = args

    @property
    def is_open(self) -> bool:
        return self.end_ms is None

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            raise ObservabilityError(f"span {self.name!r} is still open")
        return self.end_ms - self.start_ms

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.is_open else f"{self.duration_ms:.3f}ms"
        return f"Span({self.name!r}, start={self.start_ms:.3f}, {state})"


class _OpenSpan:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_clock", "span")

    def __init__(self, tracer: Tracer, clock: VirtualClock, span: Span) -> None:
        self._tracer = tracer
        self._clock = clock
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._close(self.span, self._clock)


class _NullSpan:
    """Shared allocation-free context manager for the null tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans; optionally holds a default clock."""

    enabled = True

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self._clock = clock
        #: All spans in start order (closed in place as regions exit).
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    # ----------------------------------------------------------------- clocks
    def bind(self, clock: VirtualClock) -> None:
        """Adopt ``clock`` as the default if none is bound yet."""
        if self._clock is None:
            self._clock = clock

    def bound(self, clock: VirtualClock) -> BoundTracer:
        """A view of this tracer that stamps spans from ``clock``."""
        return BoundTracer(self, clock)

    # ------------------------------------------------------------------ spans
    def span(
        self, name: str, clock: VirtualClock | None = None, **args: Any
    ) -> _OpenSpan:
        clock = clock if clock is not None else self._clock
        if clock is None:
            raise ObservabilityError(
                f"cannot open span {name!r}: tracer has no clock bound; "
                "pass one or use tracer.bound(clock)"
            )
        parent = self._stack[-1] if self._stack else None
        span = Span(name, clock.now, len(self._stack), parent, args)
        self.spans.append(span)
        self._stack.append(span)
        return _OpenSpan(self, clock, span)

    def _close(self, span: Span, clock: VirtualClock) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of nesting order"
            )
        self._stack.pop()
        span.end_ms = clock.now

    # ------------------------------------------------------------------ reads
    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def root_spans(self) -> list[Span]:
        return [span for span in self.spans if span.parent is None]

    def children(self, parent: Span) -> list[Span]:
        return [span for span in self.spans if span.parent is parent]

    def total_root_ms(self) -> float:
        """Sum of the closed root spans' durations."""
        return sum(
            span.duration_ms for span in self.root_spans() if not span.is_open
        )

    # ----------------------------------------------------------------- export
    def chrome_trace_events(
        self, pid: int = 1, process_name: str | None = None
    ) -> list[dict[str, Any]]:
        """Spans as Chrome-trace "complete" events (timestamps in µs).

        Open spans are skipped — a trace is exported after the work it
        describes.  Nesting is conveyed by time containment on one thread
        track, which is how chrome://tracing renders ``ph: "X"`` events.
        """
        events: list[dict[str, Any]] = []
        if process_name is not None:
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process_name},
            })
        for span in self.spans:
            if span.is_open:
                continue
            event: dict[str, Any] = {
                "name": span.name,
                "ph": "X",
                "ts": span.start_ms * 1000.0,
                "dur": span.duration_ms * 1000.0,
                "pid": pid,
                "tid": 0,
            }
            if span.args:
                event["args"] = dict(span.args)
            events.append(event)
        return events

    def to_chrome_json(self, indent: int | None = None) -> str:
        document = {
            "traceEvents": self.chrome_trace_events(),
            "displayTimeUnit": "ms",
        }
        return json.dumps(document, indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({len(self.spans)} spans)"


class BoundTracer:
    """A tracer view tied to one clock (what ``Database.tracer`` holds)."""

    __slots__ = ("tracer", "clock")

    def __init__(self, tracer: Tracer, clock: VirtualClock) -> None:
        self.tracer = tracer
        self.clock = clock

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    @property
    def spans(self) -> list[Span]:
        return self.tracer.spans

    def span(self, name: str, **args: Any) -> _OpenSpan:
        return self.tracer.span(name, clock=self.clock, **args)

    def bound(self, clock: VirtualClock) -> BoundTracer:
        return BoundTracer(self.tracer, clock)


class NullTracer(Tracer):
    """A tracer that records nothing; ``span`` is allocation-free."""

    enabled = False

    def span(
        self, name: str, clock: VirtualClock | None = None, **args: Any
    ) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def bound(self, clock: VirtualClock) -> NullTracer:  # type: ignore[override]
        return self


#: Shared do-nothing tracer: the default when no ambient tracer is active.
NULL_TRACER = NullTracer()

#: What instrumented components accept as a tracer.
TracerLike = Tracer | BoundTracer

"""Per-(stage × entity) cost attribution over the span tree.

The tracer already records *where* virtual time went — as a tree of
nested spans.  :class:`CostAttributor` folds that tree into a flat ledger
answering "which pipeline stage spent how much time on which entity",
with an exactness guarantee the tree itself cannot give: every virtual
nanosecond of traced time lands in **exactly one** ledger row, so the
rows sum to the total traced time with zero drift.

Two mechanisms make the guarantee hold:

* **Self time.**  Each span is charged only its *self* time — its
  duration minus its direct children's durations — so nesting never
  double-counts.  Summed over the whole tree the child terms telescope
  away, leaving exactly the root spans' total duration.
* **Integer nanoseconds.**  Millisecond floats are converted to integer
  nanoseconds once (``round(ms * 1e6)``) and every sum is integer
  arithmetic, so the telescoping identity is exact rather than
  approximately-float-equal.

Stages come from span names (``capture.*`` → *capture*, ``transport.ship``
→ *ship*, ...); entities come from span args in precedence order
``view`` > ``table`` > ``source`` > ``db``.  A span naming no entity is
charged to the pipeline itself (entity ``"-"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, Sequence

from ...errors import ObservabilityError

#: Span-name prefixes to ledger stages, first match wins — ordered so the
#: more specific prefix (``capture.check``) shadows the general one
#: (``capture.``).
STAGE_PREFIXES: tuple[tuple[str, str], ...] = (
    ("capture.check", "check"),
    ("capture.", "capture"),
    ("compaction.", "compact"),
    ("transport.prune", "prune"),
    ("transport.ship", "ship"),
    ("transport.queue", "ship"),
    ("warehouse.view", "apply"),
    ("warehouse.apply", "apply"),
    ("warehouse.olap", "query"),
    ("extract.", "extract"),
    ("engine.", "engine"),
)

#: Span-arg keys that can name the charged entity, most specific first.
ENTITY_ARGS: tuple[str, ...] = ("view", "table", "source", "db")

#: Entity charged when a span names none: the pipeline machinery itself.
NO_ENTITY = "-"


def stage_of(span_name: str) -> str:
    """The ledger stage a span name belongs to (``other`` if unmapped)."""
    for prefix, stage in STAGE_PREFIXES:
        if span_name.startswith(prefix):
            return stage
    return "other"


def entity_of(args: dict[str, Any]) -> str:
    """The most specific entity a span's args name (``"-"`` if none)."""
    for key in ENTITY_ARGS:
        value = args.get(key)
        if value is not None:
            return str(value)
    return NO_ENTITY


def _to_ns(at_ms: float) -> int:
    """Virtual milliseconds to exact integer virtual nanoseconds."""
    return round(at_ms * 1e6)


class _SpanLike(Protocol):
    """The span fields attribution reads (structural: Span fits)."""

    @property
    def name(self) -> str: ...
    @property
    def start_ms(self) -> float: ...
    @property
    def end_ms(self) -> float | None: ...
    @property
    def parent(self) -> Any: ...
    @property
    def args(self) -> dict[str, Any]: ...


class _TracerLike(Protocol):
    """The tracer surface attribution reads (Tracer and BoundTracer fit)."""

    @property
    def spans(self) -> list[Any]: ...


@dataclass
class CostRow:
    """One ledger cell: self time of one (stage, entity) pair."""

    stage: str
    entity: str
    self_ns: int = 0
    spans: int = 0

    @property
    def self_ms(self) -> float:
        return self.self_ns / 1e6

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "entity": self.entity,
            "self_ns": self.self_ns,
            "self_ms": self.self_ms,
            "spans": self.spans,
        }


class CostLedger:
    """The folded ledger: rows keyed by (stage, entity), conservative."""

    def __init__(self) -> None:
        self._rows: dict[tuple[str, str], CostRow] = {}
        #: Exact total of root-span durations (what the rows must sum to).
        self.total_traced_ns = 0
        #: Spans folded in (every closed span, at every depth).
        self.span_count = 0

    def _charge(self, stage: str, entity: str, self_ns: int) -> None:
        key = (stage, entity)
        row = self._rows.get(key)
        if row is None:
            row = CostRow(stage, entity)
            self._rows[key] = row
        row.self_ns += self_ns
        row.spans += 1

    # ------------------------------------------------------------------ reads
    @property
    def total_traced_ms(self) -> float:
        return self.total_traced_ns / 1e6

    def rows(self) -> list[CostRow]:
        """All rows, sorted by descending self time then key (stable)."""
        return sorted(
            self._rows.values(),
            key=lambda row: (-row.self_ns, row.stage, row.entity),
        )

    def top(self, k: int) -> list[CostRow]:
        """The k most expensive (stage, entity) cells."""
        return self.rows()[:k]

    def row(self, stage: str, entity: str = NO_ENTITY) -> CostRow | None:
        return self._rows.get((stage, entity))

    def stage_ns(self, stage: str) -> int:
        return sum(
            row.self_ns for row in self._rows.values() if row.stage == stage
        )

    def entity_ns(self, entity: str) -> int:
        return sum(
            row.self_ns for row in self._rows.values() if row.entity == entity
        )

    def ledger_ns(self) -> int:
        """Sum of every row — equals :attr:`total_traced_ns` exactly."""
        return sum(row.self_ns for row in self._rows.values())

    def is_conservative(self) -> bool:
        """Whether the ledger accounts for every traced nanosecond."""
        return self.ledger_ns() == self.total_traced_ns

    def __len__(self) -> int:
        return len(self._rows)

    def to_dict(self) -> dict[str, Any]:
        return {
            "total_traced_ns": self.total_traced_ns,
            "total_traced_ms": self.total_traced_ms,
            "span_count": self.span_count,
            "conservative": self.is_conservative(),
            "rows": [row.to_dict() for row in self.rows()],
        }


class CostAttributor:
    """Folds a tracer's span tree into a conservative :class:`CostLedger`."""

    def attribute(self, tracer: _TracerLike) -> CostLedger:
        """Fold every closed span of ``tracer`` into a fresh ledger.

        The tracer must be quiesced — an open span has no duration yet, so
        attributing mid-flight would silently lose its time and break the
        conservation guarantee.
        """
        open_spans = [span for span in tracer.spans if span.end_ms is None]
        if open_spans:
            raise ObservabilityError(
                f"cannot attribute costs with {len(open_spans)} span(s) "
                f"still open (first: {open_spans[0].name!r}); close every "
                "span before folding the ledger"
            )
        return self._fold(tracer.spans)

    def _fold(self, spans: Sequence[_SpanLike]) -> CostLedger:
        ledger = CostLedger()
        durations: dict[int, int] = {}
        child_ns: dict[int, int] = {}
        for span in spans:
            assert span.end_ms is not None  # quiesced, checked above
            duration = _to_ns(span.end_ms) - _to_ns(span.start_ms)
            durations[id(span)] = duration
            if span.parent is None:
                ledger.total_traced_ns += duration
            else:
                child_ns[id(span.parent)] = (
                    child_ns.get(id(span.parent), 0) + duration
                )
        for span in spans:
            self_ns = durations[id(span)] - child_ns.get(id(span), 0)
            ledger._charge(stage_of(span.name), entity_of(span.args), self_ns)
            ledger.span_count += 1
        return ledger

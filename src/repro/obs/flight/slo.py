"""Declarative freshness/latency SLOs with multi-window burn-rate alerts.

An objective states what "healthy" means — *"view ``parts_catalog`` is no
more than 400 virtual ms behind the source for 90% of samples"* — and the
:class:`SLOEngine` evaluates it against the flight recorder's
:class:`~repro.obs.flight.series.TimeSeriesStore` whenever asked.

Alerting follows the multi-window burn-rate discipline: the **burn rate**
of a window is the fraction of in-window samples violating the target,
divided by the error budget (``1 - objective``).  A burn of 1.0 spends
the budget exactly as fast as the objective allows; the engine fires only
when a *short* window burns ≥ ``fast_burn`` (the problem is happening
now) **and** a *long* window burns ≥ ``slow_burn`` (it is not a one-sample
blip), and clears once the short window's burn drops back under 1.0.
Both windows are virtual-time spans ending at the evaluation instant, so
alert positions are deterministic and byte-identical across runs.

Findings mirror the :class:`~repro.obs.pipeline.auditor.AuditFinding`
style — positioned codes with severities::

    SLO001  error    freshness objective burning (alert fired)
    SLO002  info     freshness alert cleared
    SLO003  error    latency objective burning (alert fired)
    SLO004  info     latency alert cleared
    SLO005  warning  objective has no samples to evaluate
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...errors import ObservabilityError
from .series import RingSeries, TimeSeriesStore

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class FreshnessSLO:
    """Objective: one view's staleness stays under ``target_ms``."""

    view: str
    #: Staleness at or below this is a good sample.
    target_ms: float
    #: Allowed bad-sample fraction (0.1 = 90% objective).
    budget: float = 0.1
    #: Short ("page now") evaluation window, virtual ms.
    short_window_ms: float = 200.0
    #: Long ("it's sustained") evaluation window, virtual ms.
    long_window_ms: float = 1_000.0
    #: Short-window burn that (with the long window) fires the alert.
    fast_burn: float = 2.0
    #: Long-window burn corroborating the fast one.
    slow_burn: float = 1.0

    @property
    def key(self) -> str:
        return f"freshness:{self.view}"

    @property
    def series_name(self) -> str:
        return f"view.{self.view}.staleness_ms"

    @property
    def entity(self) -> str:
        return self.view

    def describe(self) -> str:
        return (
            f"view {self.view!r} staleness <= {self.target_ms:g}ms "
            f"for {100 * (1 - self.budget):g}% of samples"
        )


@dataclass(frozen=True)
class LatencySLO:
    """Objective: one pipeline stage's lag stays under ``target_ms``.

    ``stage`` is one of the recorder's lag-decomposition stages
    (``capture_to_ship``, ``ship_to_apply``, ``commit_to_apply``,
    ``end_to_end``); the engine reads the flight store's per-window mean
    of that stage's fresh lag samples.
    """

    stage: str
    target_ms: float
    budget: float = 0.1
    short_window_ms: float = 200.0
    long_window_ms: float = 1_000.0
    fast_burn: float = 2.0
    slow_burn: float = 1.0

    @property
    def key(self) -> str:
        return f"latency:{self.stage}"

    @property
    def series_name(self) -> str:
        return f"lag.{self.stage}.mean_ms"

    @property
    def entity(self) -> str:
        return self.stage

    def describe(self) -> str:
        return (
            f"stage {self.stage!r} lag <= {self.target_ms:g}ms "
            f"for {100 * (1 - self.budget):g}% of samples"
        )


#: Either objective kind; they share every field the engine touches.
Objective = FreshnessSLO | LatencySLO


@dataclass(frozen=True)
class SLOFinding:
    """One positioned alert-state transition (auditor-finding style)."""

    code: str
    severity: str
    at_ms: float
    objective: str
    entity: str
    message: str
    short_burn: float = 0.0
    long_burn: float = 0.0

    def render(self) -> str:
        return (
            f"[{self.code}] {self.severity.upper()} @{self.at_ms:g}ms "
            f"{self.objective}: {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "at_ms": self.at_ms,
            "objective": self.objective,
            "entity": self.entity,
            "message": self.message,
            "short_burn": self.short_burn,
            "long_burn": self.long_burn,
        }


def burn_rate(series: RingSeries, since_ms: float, until_ms: float,
              target_ms: float, budget: float) -> float:
    """Violating-sample fraction over the window, divided by the budget."""
    values = series.values(since_ms, until_ms)
    if not values:
        return 0.0
    bad = sum(1 for value in values if value > target_ms)
    return (bad / len(values)) / budget


class SLOEngine:
    """Evaluates objectives over a flight store; tracks fired/cleared state."""

    def __init__(
        self,
        store: TimeSeriesStore,
        objectives: list[Objective] | None = None,
    ) -> None:
        self.store = store
        self.objectives: list[Objective] = []
        #: Objective key -> currently firing?
        self._firing: dict[str, bool] = {}
        #: Every state-transition finding, in evaluation order.
        self.history: list[SLOFinding] = []
        for objective in objectives or []:
            self.add(objective)

    def add(self, objective: Objective) -> None:
        if not 0 < objective.budget < 1:
            raise ObservabilityError(
                f"SLO {objective.key!r} budget must be in (0, 1), "
                f"got {objective.budget}"
            )
        if objective.short_window_ms > objective.long_window_ms:
            raise ObservabilityError(
                f"SLO {objective.key!r} short window "
                f"({objective.short_window_ms}ms) exceeds its long window "
                f"({objective.long_window_ms}ms)"
            )
        if any(existing.key == objective.key for existing in self.objectives):
            raise ObservabilityError(
                f"SLO {objective.key!r} is already registered"
            )
        self.objectives.append(objective)
        self._firing[objective.key] = False

    # -------------------------------------------------------------- evaluation
    def is_firing(self, key: str) -> bool:
        return self._firing.get(key, False)

    @property
    def firing(self) -> list[str]:
        return sorted(key for key, lit in self._firing.items() if lit)

    def evaluate(self, now_ms: float) -> list[SLOFinding]:
        """Evaluate every objective at ``now_ms``; return new findings only.

        A finding is emitted only on a state *transition* (fired or
        cleared) or when an objective has no samples at all — steady
        states stay quiet, so repeated evaluation is idempotent.
        """
        findings: list[SLOFinding] = []
        for objective in self.objectives:
            finding = self._evaluate_one(objective, now_ms)
            if finding is not None:
                findings.append(finding)
        self.history.extend(findings)
        return findings

    def _evaluate_one(
        self, objective: Objective, now_ms: float
    ) -> SLOFinding | None:
        series = self.store.get(objective.series_name)
        if series is None or len(series) == 0:
            if self._firing[objective.key]:
                return None  # keep firing; absence of data is not recovery
            return SLOFinding(
                code="SLO005",
                severity="warning",
                at_ms=now_ms,
                objective=objective.key,
                entity=objective.entity,
                message=(
                    f"no samples in series {objective.series_name!r}; "
                    f"objective '{objective.describe()}' cannot be evaluated"
                ),
            )
        short = burn_rate(
            series,
            now_ms - objective.short_window_ms,
            now_ms,
            objective.target_ms,
            objective.budget,
        )
        long = burn_rate(
            series,
            now_ms - objective.long_window_ms,
            now_ms,
            objective.target_ms,
            objective.budget,
        )
        was_firing = self._firing[objective.key]
        if not was_firing and (
            short >= objective.fast_burn and long >= objective.slow_burn
        ):
            self._firing[objective.key] = True
            fired_code = (
                "SLO001" if isinstance(objective, FreshnessSLO) else "SLO003"
            )
            return SLOFinding(
                code=fired_code,
                severity="error",
                at_ms=now_ms,
                objective=objective.key,
                entity=objective.entity,
                message=(
                    f"burn rate {short:.2f}x over {objective.short_window_ms:g}ms "
                    f"(and {long:.2f}x over {objective.long_window_ms:g}ms) "
                    f"violates '{objective.describe()}'"
                ),
                short_burn=short,
                long_burn=long,
            )
        if was_firing and short < 1.0:
            self._firing[objective.key] = False
            cleared_code = (
                "SLO002" if isinstance(objective, FreshnessSLO) else "SLO004"
            )
            return SLOFinding(
                code=cleared_code,
                severity="info",
                at_ms=now_ms,
                objective=objective.key,
                entity=objective.entity,
                message=(
                    f"burn rate back to {short:.2f}x over "
                    f"{objective.short_window_ms:g}ms; "
                    f"'{objective.describe()}' is healthy again"
                ),
                short_burn=short,
                long_burn=long,
            )
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "objectives": [
                {
                    "key": objective.key,
                    "kind": (
                        "freshness"
                        if isinstance(objective, FreshnessSLO)
                        else "latency"
                    ),
                    "entity": objective.entity,
                    "target_ms": objective.target_ms,
                    "budget": objective.budget,
                    "short_window_ms": objective.short_window_ms,
                    "long_window_ms": objective.long_window_ms,
                    "fast_burn": objective.fast_burn,
                    "slow_burn": objective.slow_burn,
                    "firing": self._firing[objective.key],
                    "describe": objective.describe(),
                }
                for objective in self.objectives
            ],
            "findings": [finding.to_dict() for finding in self.history],
        }

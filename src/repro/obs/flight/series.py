"""Virtual-time metric series: bounded ring buffers and their store.

The flight recorder's core data structure.  A :class:`RingSeries` holds
the most recent ``capacity`` ``(at_ms, value)`` samples of one named
signal; a :class:`TimeSeriesStore` is the dictionary of every series one
pipeline run produced.  :class:`FlightRecorder` is the sampling hook the
:class:`~repro.obs.pipeline.recorder.PipelineRecorder` calls on every
shipped window — it folds the metrics registry, the four-stage lag
decomposition, per-view staleness, source watermarks and queue depth into
the store at that window's virtual timestamp.

Time discipline (enforced by lint rule REPRO005): nothing in this package
constructs a clock or reads ambient context.  Every timestamp arrives as
an ``at_ms`` argument stamped by the observing component's own injected
:class:`~repro.clock.VirtualClock`, so a flight recording is exactly as
deterministic as the run that produced it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Mapping, Protocol, Sequence

from ...errors import ObservabilityError
from ..stats import nearest_rank_percentile, windowed_rate

#: One recorded point: (virtual ms, value).
Sample = tuple[float, float]

#: Default per-series retention (samples, not time): enough for hundreds
#: of shipped windows while bounding a long-running pipeline's memory.
DEFAULT_CAPACITY = 512


class RingSeries:
    """One named signal's bounded, monotone virtual-time sample ring."""

    __slots__ = ("name", "capacity", "_samples", "dropped", "recorded")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ObservabilityError(
                f"series {name!r} needs a positive capacity, got {capacity}"
            )
        self.name = name
        self.capacity = capacity
        self._samples: deque[Sample] = deque(maxlen=capacity)
        #: Samples evicted by the ring bound (retention loss, counted).
        self.dropped = 0
        #: Samples ever recorded (pre-eviction).
        self.recorded = 0

    def record(self, at_ms: float, value: float) -> None:
        """Append one sample; timestamps must never go backwards."""
        if self._samples and at_ms < self._samples[-1][0]:
            raise ObservabilityError(
                f"series {self.name!r} sampled at {at_ms}ms after "
                f"{self._samples[-1][0]}ms — virtual time is monotone"
            )
        if len(self._samples) == self.capacity:
            self.dropped += 1
        self._samples.append((at_ms, float(value)))
        self.recorded += 1

    # ------------------------------------------------------------------ reads
    def __len__(self) -> int:
        return len(self._samples)

    @property
    def latest(self) -> Sample | None:
        return self._samples[-1] if self._samples else None

    @property
    def oldest_ms(self) -> float | None:
        """Timestamp of the oldest *retained* sample."""
        return self._samples[0][0] if self._samples else None

    def covers(self, since_ms: float) -> bool:
        """Whether the ring still holds every sample taken since ``since_ms``.

        False means the query window reaches past the ring's retention —
        evicted samples would have been in range, so windowed answers are
        computed over a truncated window.
        """
        if self.dropped == 0:
            return True
        oldest = self.oldest_ms
        return oldest is not None and oldest <= since_ms

    def window(
        self, since_ms: float | None = None, until_ms: float | None = None
    ) -> list[Sample]:
        """The retained samples with ``since_ms < at_ms <= until_ms``.

        The window is half-open on the left so that back-to-back windows
        of width W partition the timeline without double-counting the
        boundary sample.  ``None`` bounds are unbounded.
        """
        return [
            sample
            for sample in self._samples
            if (since_ms is None or sample[0] > since_ms)
            and (until_ms is None or sample[0] <= until_ms)
        ]

    def values(
        self, since_ms: float | None = None, until_ms: float | None = None
    ) -> list[float]:
        return [value for _at, value in self.window(since_ms, until_ms)]

    def percentile(
        self,
        q: float,
        since_ms: float | None = None,
        until_ms: float | None = None,
    ) -> float:
        """Nearest-rank percentile of the windowed samples (0.0 if empty)."""
        return nearest_rank_percentile(self.values(since_ms, until_ms), q)

    def rate(
        self,
        since_ms: float | None = None,
        until_ms: float | None = None,
    ) -> float:
        """Average change per virtual second over the windowed samples.

        Built for cumulative signals (counters): the first and last
        in-window samples bracket the change.  Under two in-window samples
        there is no measurable movement — the rate is 0.0.
        """
        return windowed_rate(self.window(since_ms, until_ms))

    def mean(
        self,
        since_ms: float | None = None,
        until_ms: float | None = None,
    ) -> float:
        values = self.values(since_ms, until_ms)
        return sum(values) / len(values) if values else 0.0

    def max(
        self,
        since_ms: float | None = None,
        until_ms: float | None = None,
    ) -> float:
        values = self.values(since_ms, until_ms)
        return max(values) if values else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "samples": [[at_ms, value] for at_ms, value in self._samples],
        }


class TimeSeriesStore:
    """Every named series of one flight recording, keyed by signal name.

    Series names follow the metric convention loosely —
    ``<signal>.<entity>.<unit>`` (``view.parts_catalog.staleness_ms``,
    ``queue.flight.depth``) — but are not registry metrics: a series holds
    a *history*, where an instrument holds a current value.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._capacity = capacity
        self._series: dict[str, RingSeries] = {}
        #: Shipped windows sampled into the store.
        self.windows_sampled = 0

    def series(self, name: str) -> RingSeries:
        """The named series, created empty on first use."""
        found = self._series.get(name)
        if found is None:
            found = RingSeries(name, capacity=self._capacity)
            self._series[name] = found
        return found

    def get(self, name: str) -> RingSeries | None:
        return self._series.get(name)

    def record(self, name: str, at_ms: float, value: float) -> None:
        self.series(name).record(at_ms, value)

    def names(self) -> list[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def to_dict(self) -> dict[str, Any]:
        return {
            "windows_sampled": self.windows_sampled,
            "series": {
                name: self._series[name].to_dict() for name in self.names()
            },
        }


class DepthSource(Protocol):
    """What the sampler needs from a queue: a name and a current depth."""

    @property
    def name(self) -> str: ...
    def __len__(self) -> int: ...
    @property
    def in_flight(self) -> int: ...


class _RecorderView(Protocol):
    """The slice of PipelineRecorder the sampler reads (structural, so this
    package never imports the pipeline layer it observes)."""

    @property
    def lags(self) -> Mapping[str, Any]: ...
    @property
    def views(self) -> Mapping[str, Any]: ...
    @property
    def sources(self) -> Mapping[str, Any]: ...
    def source_high_ms(self) -> float | None: ...


class FlightRecorder:
    """Samples pipeline state into a :class:`TimeSeriesStore` per window.

    Install it on the :class:`~repro.obs.pipeline.recorder.PipelineRecorder`
    (``PipelineRecorder(flight=...)``); the transport layer announces each
    shipped/enqueued window and the recorder forwards the announcement
    here with the window's virtual timestamp.  Optionally a metrics
    registry (cumulative counters and gauges become rate-queryable series)
    and any number of queues (depth series) join each sample.
    """

    def __init__(
        self,
        store: TimeSeriesStore | None = None,
        metrics: Any | None = None,
        metric_names: Iterable[str] | None = None,
        queues: Sequence[DepthSource] = (),
    ) -> None:
        self.store = store if store is not None else TimeSeriesStore()
        self._metrics = metrics
        self._metric_names = (
            frozenset(metric_names) if metric_names is not None else None
        )
        self._queues: list[DepthSource] = list(queues)
        #: Per-stage lag sample counts already folded into the store, so
        #: each window records the *new* samples' statistics, not the
        #: cumulative distribution.
        self._lag_seen: dict[str, int] = {}

    def watch_queue(self, queue: DepthSource) -> None:
        self._queues.append(queue)

    # -------------------------------------------------------------- sampling
    def on_window_shipped(self, recorder: _RecorderView, at_ms: float) -> None:
        """One shippable window left the source: sample everything."""
        self.store.windows_sampled += 1
        self._sample_lags(recorder, at_ms)
        self._sample_freshness(recorder, at_ms)
        self._sample_watermarks(recorder, at_ms)
        self._sample_queues(at_ms)
        self._sample_metrics(at_ms)

    def sample_now(self, recorder: _RecorderView, at_ms: float) -> None:
        """An extra out-of-band sample (end of run, post-apply), same shape."""
        self._sample_lags(recorder, at_ms)
        self._sample_freshness(recorder, at_ms)
        self._sample_watermarks(recorder, at_ms)
        self._sample_queues(at_ms)
        self._sample_metrics(at_ms)

    def _sample_lags(self, recorder: _RecorderView, at_ms: float) -> None:
        for stage, samples in recorder.lags.items():
            seen = self._lag_seen.get(stage, 0)
            fresh = samples.values[seen:]
            self._lag_seen[stage] = len(samples.values)
            if not fresh:
                continue
            self.store.record(
                f"lag.{stage}.mean_ms", at_ms, sum(fresh) / len(fresh)
            )
            self.store.record(f"lag.{stage}.max_ms", at_ms, max(fresh))

    def _sample_freshness(self, recorder: _RecorderView, at_ms: float) -> None:
        source_high = recorder.source_high_ms()
        for name, freshness in recorder.views.items():
            self.store.record(
                f"view.{name}.staleness_ms",
                at_ms,
                freshness.staleness_ms(source_high),
            )
            self.store.record(
                f"view.{name}.ops_applied", at_ms, freshness.ops_applied
            )

    def _sample_watermarks(self, recorder: _RecorderView, at_ms: float) -> None:
        for name, watermark in recorder.sources.items():
            self.store.record(
                f"source.{name}.in_flight", at_ms, watermark.in_flight
            )
            self.store.record(
                f"source.{name}.high_seq", at_ms, watermark.high_seq
            )

    def _sample_queues(self, at_ms: float) -> None:
        for queue in self._queues:
            self.store.record(
                f"queue.{queue.name}.depth",
                at_ms,
                len(queue) + queue.in_flight,
            )

    def _sample_metrics(self, at_ms: float) -> None:
        if self._metrics is None:
            return
        for instrument in self._metrics.instruments():
            if (
                self._metric_names is not None
                and instrument.name not in self._metric_names
            ):
                continue
            if instrument.kind == "counter":
                self.store.record(
                    f"metric.{instrument.qualified_name}",
                    at_ms,
                    instrument.value,
                )
            elif instrument.kind == "gauge":
                self.store.record(
                    f"metric.{instrument.qualified_name}",
                    at_ms,
                    instrument.value,
                )

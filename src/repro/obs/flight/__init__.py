"""The flight recorder: time series, cost attribution and SLO alerting.

Three instruments, one question each:

* :mod:`~repro.obs.flight.series` — *when* did things happen?  Bounded
  virtual-time ring buffers sampled on every shipped window.
* :mod:`~repro.obs.flight.attribution` — *where* did the time go?  An
  exactly-conservative per-(stage × entity) ledger over the span tree.
* :mod:`~repro.obs.flight.slo` — *was that acceptable?*  Declarative
  freshness/latency objectives with multi-window burn-rate alerting.

Everything here is read-only over signals the rest of ``repro.obs``
already emits, stamped in virtual time only (lint rule REPRO005).
"""

from .attribution import (
    CostAttributor,
    CostLedger,
    CostRow,
    entity_of,
    stage_of,
)
from .series import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    RingSeries,
    Sample,
    TimeSeriesStore,
)
from .slo import (
    FreshnessSLO,
    LatencySLO,
    Objective,
    SLOEngine,
    SLOFinding,
    burn_rate,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "CostAttributor",
    "CostLedger",
    "CostRow",
    "FlightRecorder",
    "FreshnessSLO",
    "LatencySLO",
    "Objective",
    "RingSeries",
    "SLOEngine",
    "SLOFinding",
    "Sample",
    "TimeSeriesStore",
    "burn_rate",
    "entity_of",
    "stage_of",
]

"""The ``sys.*`` virtual tables: schemas plus snapshot adapters.

Each system table is a :class:`~repro.engine.schema.TableSchema` (so the
semantic checker can resolve and type ad-hoc telemetry queries exactly
like application SQL) paired with an adapter that folds one live
observability store into plain row tuples.  Adapters *read* — they never
mutate the store, never advance its clock, and tolerate a store that was
never wired up (``None`` in the :class:`StoreBundle` yields an empty
table, not an error).

The eight tables and their sources:

=====================  ====================================================
``sys.events``         :class:`~repro.obs.pipeline.events.EventLog`
``sys.metrics``        :class:`~repro.obs.metrics.MetricsRegistry`
``sys.watermarks``     recorder source/table watermarks
``sys.lag``            recorder four-stage lag samples
``sys.series``         :class:`~repro.obs.flight.series.TimeSeriesStore`
``sys.cost``           :class:`~repro.obs.flight.attribution.CostLedger`
``sys.slo``            :class:`~repro.obs.flight.slo.SLOEngine` history
``sys.critical_path``  :class:`.forensics.CriticalPathAnalyzer`
=====================  ====================================================

String values are clipped to the declared CHAR width and sanitised to
latin-1 (the engine's fixed-width record encoding) so no telemetry value
— however exotic a statement detail gets — can make a snapshot fail to
materialise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable

from ...engine.schema import Column, TableSchema
from ...engine.types import FLOAT, INTEGER, char
from ..flight.attribution import CostLedger
from ..flight.series import TimeSeriesStore
from ..flight.slo import SLOEngine
from ..metrics import Counter, Gauge, Histogram, MetricsRegistry
from ..pipeline.recorder import PipelineRecorder
from .forensics import CriticalPathAnalyzer

Row = tuple[Any, ...]

#: ``lane=<n>`` marker inside an event's detail text (the batched
#: integrator's lane scheduler stamps it); absent means NULL.
_LANE_PATTERN = re.compile(r"\blane=(\d+)\b")


def clip(value: Any, width: int) -> str:
    """Render ``value`` as a latin-1-safe string of at most ``width`` chars."""
    text = "" if value is None else str(value)
    text = text.encode("latin-1", "replace").decode("latin-1")
    return text[:width]


@dataclass
class StoreBundle:
    """The live stores one catalog reads.  Every field is optional —

    a bundle models whatever subset of the observability stack the
    current run actually wired up, and adapters render missing stores
    as empty tables.
    """

    recorder: PipelineRecorder | None = None
    metrics: MetricsRegistry | None = None
    series: TimeSeriesStore | None = None
    ledger: CostLedger | None = None
    slo: SLOEngine | None = None


@dataclass(frozen=True)
class SysTable:
    """One virtual table: its relational schema and its snapshot adapter."""

    schema: TableSchema
    rows: Callable[[StoreBundle], list[Row]]

    @property
    def name(self) -> str:
        return self.schema.name


# ------------------------------------------------------------------- schemas
EVENTS_SCHEMA = TableSchema(
    "sys.events",
    [
        Column("correlation_id", char(48), nullable=False),
        Column("kind", char(16), nullable=False),
        Column("at_ms", FLOAT, nullable=False),
        Column("source", char(24)),
        Column("table_name", char(24)),
        Column("txn_id", INTEGER),
        Column("sequence", INTEGER),
        Column("lane", INTEGER),
        Column("detail", char(96)),
    ],
)

METRICS_SCHEMA = TableSchema(
    "sys.metrics",
    [
        Column("name", char(96), nullable=False),
        Column("kind", char(12), nullable=False),
        Column("value", FLOAT, nullable=False),
    ],
)

WATERMARKS_SCHEMA = TableSchema(
    "sys.watermarks",
    [
        Column("source", char(24), nullable=False),
        Column("table_name", char(24)),
        Column("low_seq", INTEGER),
        Column("high_seq", INTEGER),
        Column("captured", INTEGER),
        Column("settled", INTEGER),
        Column("in_flight", INTEGER),
        Column("captured_ops", INTEGER),
        Column("applied_ops", INTEGER),
        Column("captured_through_ms", FLOAT),
        Column("applied_through_ms", FLOAT),
        Column("lag_ms", FLOAT),
    ],
)

LAG_SCHEMA = TableSchema(
    "sys.lag",
    [
        Column("stage", char(20), nullable=False),
        Column("sample_index", INTEGER, nullable=False),
        Column("value_ms", FLOAT, nullable=False),
    ],
)

SERIES_SCHEMA = TableSchema(
    "sys.series",
    [
        Column("series", char(64), nullable=False),
        Column("sample_index", INTEGER, nullable=False),
        Column("at_ms", FLOAT, nullable=False),
        Column("value", FLOAT, nullable=False),
    ],
)

COST_SCHEMA = TableSchema(
    "sys.cost",
    [
        Column("stage", char(20), nullable=False),
        Column("entity", char(32), nullable=False),
        Column("self_ns", INTEGER, nullable=False),
        Column("self_ms", FLOAT, nullable=False),
        Column("spans", INTEGER, nullable=False),
    ],
)

SLO_SCHEMA = TableSchema(
    "sys.slo",
    [
        Column("code", char(8), nullable=False),
        Column("severity", char(8), nullable=False),
        Column("state", char(8), nullable=False),
        Column("at_ms", FLOAT, nullable=False),
        Column("objective", char(40), nullable=False),
        Column("entity", char(32), nullable=False),
        Column("short_burn", FLOAT, nullable=False),
        Column("long_burn", FLOAT, nullable=False),
        Column("message", char(120), nullable=False),
    ],
)

CRITICAL_PATH_SCHEMA = TableSchema(
    "sys.critical_path",
    [
        Column("correlation_id", char(48), nullable=False),
        Column("source", char(24), nullable=False),
        Column("table_name", char(24), nullable=False),
        Column("window_index", INTEGER, nullable=False),
        Column("views", char(64), nullable=False),
        Column("check_ms", FLOAT, nullable=False),
        Column("ship_ms", FLOAT, nullable=False),
        Column("queue_ms", FLOAT, nullable=False),
        Column("apply_ms", FLOAT, nullable=False),
        Column("end_to_end_ms", FLOAT, nullable=False),
        Column("critical_stage", char(12), nullable=False),
    ],
)


# ------------------------------------------------------------------ adapters
def _events_rows(bundle: StoreBundle) -> list[Row]:
    if bundle.recorder is None:
        return []
    rows: list[Row] = []
    for event in bundle.recorder.log:
        lane_match = _LANE_PATTERN.search(event.detail) if event.detail else None
        rows.append(
            (
                clip(event.correlation_id, 48),
                clip(event.kind.value, 16),
                float(event.at_ms),
                clip(event.source, 24),
                clip(event.table, 24),
                event.txn_id,
                event.sequence,
                int(lane_match.group(1)) if lane_match else None,
                clip(event.detail, 96),
            )
        )
    return rows


def _metrics_rows(bundle: StoreBundle) -> list[Row]:
    if bundle.metrics is None:
        return []
    rows: list[Row] = []
    for instrument in bundle.metrics.instruments():
        # Histograms expose their observation count as the scalar; the
        # distribution itself lives in sys.lag / sys.series.
        if isinstance(instrument, Histogram):
            value = float(instrument.count)
        elif isinstance(instrument, (Counter, Gauge)):
            value = float(instrument.value)
        else:  # pragma: no cover - the registry mints only these three
            continue
        rows.append(
            (clip(instrument.qualified_name, 96), clip(instrument.kind, 12), value)
        )
    return rows


def _watermarks_rows(bundle: StoreBundle) -> list[Row]:
    if bundle.recorder is None:
        return []
    rows: list[Row] = []
    for name in sorted(bundle.recorder.sources):
        source = bundle.recorder.sources[name]
        rows.append(
            (
                clip(source.source, 24),
                None,
                source.low_seq,
                source.high_seq,
                source.captured,
                source.settled,
                source.in_flight,
                None,
                None,
                None,
                None,
                None,
            )
        )
    for key in sorted(bundle.recorder.tables):
        table = bundle.recorder.tables[key]
        rows.append(
            (
                clip(table.source, 24),
                clip(table.table, 24),
                None,
                None,
                None,
                None,
                None,
                table.captured_ops,
                table.applied_ops,
                table.captured_through_ms,
                table.applied_through_ms,
                table.lag_ms,
            )
        )
    return rows


def _lag_rows(bundle: StoreBundle) -> list[Row]:
    if bundle.recorder is None:
        return []
    rows: list[Row] = []
    for stage in sorted(bundle.recorder.lags):
        samples = bundle.recorder.lags[stage]
        for index, value in enumerate(samples.values):
            rows.append((clip(stage, 20), index, float(value)))
    return rows


def _series_rows(bundle: StoreBundle) -> list[Row]:
    if bundle.series is None:
        return []
    rows: list[Row] = []
    for name in bundle.series.names():
        series = bundle.series.get(name)
        if series is None:  # pragma: no cover - names() only lists existing
            continue
        # Global sample ordinals: a ring that evicted N samples starts at
        # index N, making retention loss visible as a gap from zero.
        base = series.recorded - len(series)
        for offset, (at_ms, value) in enumerate(series.window()):
            rows.append((clip(name, 64), base + offset, float(at_ms), float(value)))
    return rows


def _cost_rows(bundle: StoreBundle) -> list[Row]:
    if bundle.ledger is None:
        return []
    return [
        (
            clip(row.stage, 20),
            clip(row.entity, 32),
            int(row.self_ns),
            float(row.self_ms),
            int(row.spans),
        )
        for row in bundle.ledger.rows()
    ]


#: SLO finding code -> alert state: odd codes fire, even codes clear,
#: SLO005 means the window had no data to judge.
_SLO_STATES = {
    "SLO001": "fired",
    "SLO002": "cleared",
    "SLO003": "fired",
    "SLO004": "cleared",
    "SLO005": "no-data",
}


def _slo_rows(bundle: StoreBundle) -> list[Row]:
    if bundle.slo is None:
        return []
    return [
        (
            clip(finding.code, 8),
            clip(finding.severity, 8),
            clip(_SLO_STATES.get(finding.code, "fired"), 8),
            float(finding.at_ms),
            clip(finding.objective, 40),
            clip(finding.entity, 32),
            float(finding.short_burn),
            float(finding.long_burn),
            clip(finding.message, 120),
        )
        for finding in bundle.slo.history
    ]


def _critical_path_rows(bundle: StoreBundle) -> list[Row]:
    if bundle.recorder is None:
        return []
    return [
        (
            clip(row.correlation_id, 48),
            clip(row.source, 24),
            clip(row.table, 24),
            row.window_index,
            clip(",".join(row.views), 64),
            row.check_ms,
            row.ship_ms,
            row.queue_ms,
            row.apply_ms,
            row.end_to_end_ms,
            clip(row.critical_stage, 12),
        )
        for row in CriticalPathAnalyzer(bundle.recorder).rows()
    ]


#: The catalog: every virtual table, keyed by its qualified name.
SYS_TABLES: dict[str, SysTable] = {
    table.name: table
    for table in (
        SysTable(EVENTS_SCHEMA, _events_rows),
        SysTable(METRICS_SCHEMA, _metrics_rows),
        SysTable(WATERMARKS_SCHEMA, _watermarks_rows),
        SysTable(LAG_SCHEMA, _lag_rows),
        SysTable(SERIES_SCHEMA, _series_rows),
        SysTable(COST_SCHEMA, _cost_rows),
        SysTable(SLO_SCHEMA, _slo_rows),
        SysTable(CRITICAL_PATH_SCHEMA, _critical_path_rows),
    )
}

"""The SQL-queryable system catalog and causal critical-path forensics.

Nine PRs of telemetry — lifecycle events, watermarks, lag histograms,
flight-recorder series, cost ledgers, SLO findings — each grew its own
bespoke renderer.  This package turns all of them into one queryable
surface: eight read-only ``sys.*`` virtual tables served through the
repo's own SQL front end, plus the forensics pass that assembles
``sys.critical_path`` (which stage — check, ship, queue or apply —
put each op, window and view where it is on the latency ladder).

* :mod:`repro.obs.introspect.tables` — schemas + snapshot adapters;
* :mod:`repro.obs.introspect.forensics` — the critical-path pass;
* :mod:`repro.obs.introspect.catalog` — :class:`SystemCatalog`, the
  parse → check → materialise → execute query path;
* :mod:`repro.obs.introspect.meta` — :class:`MetaObservatory`, the
  monitoring views the pipeline maintains incrementally over its own
  telemetry (the paper, dogfooded).

External consumers of observability state go through this catalog —
lint rule REPRO009 bans reaching into private store internals from
outside ``repro/obs/``.
"""

from .catalog import SystemCatalog
from .forensics import (
    CriticalPathAnalyzer,
    CriticalPathRow,
    StageBlame,
    critical_stage,
)
from .meta import MetaObservatory, MetaRefreshReport, TableDelta
from .tables import SYS_TABLES, StoreBundle, SysTable

__all__ = [
    "SYS_TABLES",
    "CriticalPathAnalyzer",
    "CriticalPathRow",
    "MetaObservatory",
    "MetaRefreshReport",
    "StageBlame",
    "StoreBundle",
    "SysTable",
    "SystemCatalog",
    "TableDelta",
    "critical_stage",
]

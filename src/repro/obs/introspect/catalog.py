"""The read-only system catalog: ad-hoc SQL over observability stores.

:class:`SystemCatalog` wires the ``sys.*`` virtual tables into the
existing SQL front end.  A query runs through the same parser, the same
:class:`~repro.semantics.checker.SemanticChecker` (resolving names
against the system-table schemas, so a typo in a telemetry query gets
the same positioned diagnostic as one in application SQL) and the same
executor — the only introspection-specific machinery is the snapshot
step that materialises the *referenced* tables into a scratch database.

Two invariants the catalog enforces:

* **Read-only.**  Only ``SELECT`` reaches the executor; any DML/DDL
  statement is refused before semantic analysis.
* **Zero observer cost.**  The scratch database gets its own
  :class:`~repro.clock.VirtualClock`, its own metrics registry and the
  null tracer, so however expensive a telemetry query is, the observed
  pipeline's virtual time, metrics and traces are untouched.  Adapters
  only read the live stores; nothing is written back.
"""

from __future__ import annotations

from ...clock import VirtualClock
from ...engine.database import Database
from ...engine.table import InsertMode
from ...errors import ObservabilityError
from ...semantics.checker import SchemaCatalog, SemanticChecker
from ...sql import ast_nodes as ast
from ...sql.executor import Executor, Result
from ...sql.parser import parse
from ..metrics import MetricsRegistry
from ..tracing import NULL_TRACER
from .tables import SYS_TABLES, StoreBundle


class SystemCatalog:
    """SQL access to one :class:`~repro.obs.introspect.tables.StoreBundle`."""

    def __init__(self, bundle: StoreBundle) -> None:
        self._bundle = bundle

    @property
    def bundle(self) -> StoreBundle:
        return self._bundle

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(SYS_TABLES)

    def schema_catalog(self) -> SchemaCatalog:
        """The ``sys.*`` schemas as a checker-resolvable catalog."""
        return SchemaCatalog(table.schema for table in SYS_TABLES.values())

    # ------------------------------------------------------------------ query
    def query(self, sql: str) -> Result:
        """Run one SELECT over the system tables.

        Raises :class:`~repro.errors.ObservabilityError` for non-SELECT
        statements and :class:`~repro.errors.SemanticError` (with
        positioned diagnostics) for queries that do not check.
        """
        statement = parse(sql)
        if not isinstance(statement, ast.SelectStmt):
            raise ObservabilityError(
                "the system catalog is read-only: "
                f"{type(statement).__name__} is not a SELECT"
            )
        check = SemanticChecker(self.schema_catalog()).check_statement(statement)
        check.raise_if_errors(sql)
        checked = check.statement
        assert isinstance(checked, ast.SelectStmt)
        return self._execute(checked)

    def _execute(self, statement: ast.SelectStmt) -> Result:
        database = self._scratch_database(self._referenced_tables(statement))
        txn = database.begin()
        try:
            return Executor(database).execute(statement, txn)
        finally:
            database.commit(txn)

    @staticmethod
    def _referenced_tables(statement: ast.SelectStmt) -> list[str]:
        names = [] if statement.table is None else [statement.table]
        names.extend(join.table for join in statement.joins)
        # Preserve first-reference order, drop duplicates.
        return list(dict.fromkeys(names))

    def _scratch_database(self, names: list[str]) -> Database:
        """Materialise the referenced snapshots into an isolated engine.

        The scratch database's clock starts at zero and advances only
        with the query's own work; its metrics registry and null tracer
        keep the observed pipeline's telemetry byte-identical whether or
        not anyone is querying it.
        """
        database = Database(
            "sys",
            clock=VirtualClock(),
            metrics=MetricsRegistry(),
            tracer=NULL_TRACER,
        )
        for name in names:
            sys_table = SYS_TABLES[name]
            database.create_table(sys_table.schema)
            rows = sys_table.rows(self._bundle)
            if not rows:
                continue
            table = database.table(name)
            txn = database.begin()
            for values in rows:
                table.insert(
                    txn, values, mode=InsertMode.BULK_INTERNAL, fire_triggers=False
                )
            database.commit(txn)
        return database

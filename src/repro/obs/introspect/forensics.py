"""Causal critical-path forensics over Op-Delta lineage.

The :class:`~repro.obs.pipeline.recorder.PipelineRecorder` already knows
*when* each op hit each lifecycle stage; this module answers *why an op
was late*.  For every applied op it stitches the capture→check→ship→
queue→apply chain by correlation id and partitions the end-to-end
latency into four blocking segments:

``check``
    Capture-side overhead: from the op's creation timestamp to the
    CHECKED lifecycle event (semantic validation plus the log-store
    write the capture wrapper performs before reporting).
``ship``
    Source-side dwell: from CHECKED until the op left the source
    (its ENQUEUED event, or SHIPPED when no queue is involved).
``queue``
    Consumer wait: from leaving the source until the *apply round*
    that drained it began.
``apply``
    Integration: from the round start until the op's first APPLIED
    event.

The segments telescope — their sum equals the op's end-to-end latency
exactly, so a ``SUM(...)`` over ``sys.critical_path`` reconciles against
the recorder's ``end_to_end`` lag histogram with no residue.

Apply rounds are not stamped explicitly anywhere (a batched integrate
call is one warehouse transaction and commits emit no lifecycle
events), so the pass derives them from the event log: a maximal run of
consecutive APPLIED events is one round, and the round *starts* at its
first APPLIED timestamp.  Interleaved ACKED/ENQUEUED/REDELIVERED events
separate rounds.  When an op's APPLIED event has been evicted from the
bounded log its round is unknowable: the row degrades conservatively
(``window_index = -1``, the whole post-source wait attributed to
``queue``, ``apply`` zero).

Everything here is a pure fold over the recorder's own virtual-time
stamps — the pass never reads a clock, so running forensics costs the
observed pipeline nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..pipeline.events import LifecycleKind
from ..pipeline.recorder import OpLineage, PipelineRecorder

#: Segment order is also the tie-break order when naming the critical
#: stage: an earlier pipeline stage wins an exact tie.
STAGES = ("check", "ship", "queue", "apply")

#: ``window_index`` for ops whose APPLIED events were evicted.
UNKNOWN_WINDOW = -1


def critical_stage(segments: Mapping[str, float]) -> str:
    """The stage with the largest blocking segment (ties: earliest)."""
    best = STAGES[0]
    for stage in STAGES[1:]:
        if segments.get(stage, 0.0) > segments.get(best, 0.0):
            best = stage
    return best


@dataclass(frozen=True)
class CriticalPathRow:
    """One applied op's latency decomposition — a ``sys.critical_path`` row."""

    correlation_id: str
    source: str
    table: str
    window_index: int
    views: tuple[str, ...]
    check_ms: float
    ship_ms: float
    queue_ms: float
    apply_ms: float
    end_to_end_ms: float

    @property
    def segments(self) -> dict[str, float]:
        return {
            "check": self.check_ms,
            "ship": self.ship_ms,
            "queue": self.queue_ms,
            "apply": self.apply_ms,
        }

    @property
    def critical_stage(self) -> str:
        return critical_stage(self.segments)

    def to_dict(self) -> dict[str, Any]:
        return {
            "correlation_id": self.correlation_id,
            "source": self.source,
            "table": self.table,
            "window_index": self.window_index,
            "views": list(self.views),
            "check_ms": self.check_ms,
            "ship_ms": self.ship_ms,
            "queue_ms": self.queue_ms,
            "apply_ms": self.apply_ms,
            "end_to_end_ms": self.end_to_end_ms,
            "critical_stage": self.critical_stage,
        }


@dataclass(frozen=True)
class StageBlame:
    """Summed segments over one group of ops plus the stage they indict."""

    label: str
    ops: int
    segments: Mapping[str, float]
    total_ms: float

    @property
    def critical_stage(self) -> str:
        return critical_stage(self.segments)

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "ops": self.ops,
            "segments": dict(self.segments),
            "total_ms": self.total_ms,
            "critical_stage": self.critical_stage,
        }


def _sum_blame(label: str, rows: Iterable[CriticalPathRow]) -> StageBlame:
    segments = dict.fromkeys(STAGES, 0.0)
    count = 0
    total = 0.0
    for row in rows:
        for stage, value in row.segments.items():
            segments[stage] += value
        total += row.end_to_end_ms
        count += 1
    return StageBlame(label=label, ops=count, segments=segments, total_ms=total)


class CriticalPathAnalyzer:
    """Assembles :class:`CriticalPathRow`\\ s from one recorder's state.

    The pass is a single walk over the event log (building the per-op
    first-timestamp index and the apply-round boundaries) followed by a
    walk over the lineage table.  Results are cached — the analyzer is a
    snapshot, built once per query.
    """

    def __init__(self, recorder: PipelineRecorder) -> None:
        self._recorder = recorder
        self._rows: list[CriticalPathRow] | None = None
        self._round_starts: dict[int, float] = {}

    # -------------------------------------------------------------- assembly
    def rows(self) -> list[CriticalPathRow]:
        if self._rows is None:
            self._rows = self._assemble()
        return self._rows

    def _assemble(self) -> list[CriticalPathRow]:
        checked_at: dict[str, float] = {}
        round_of: dict[str, int] = {}
        round_starts: dict[int, float] = {}
        current_round = -1
        in_applied_run = False
        for event in self._recorder.log:
            if event.kind is LifecycleKind.APPLIED:
                if not in_applied_run:
                    current_round += 1
                    round_starts[current_round] = event.at_ms
                    in_applied_run = True
                round_of.setdefault(event.correlation_id, current_round)
            else:
                in_applied_run = False
                if event.kind is LifecycleKind.CHECKED:
                    checked_at.setdefault(event.correlation_id, event.at_ms)
        self._round_starts = round_starts

        rows: list[CriticalPathRow] = []
        for correlation_id, record in self._recorder.lineage.items():
            row = self._decompose(
                correlation_id, record, checked_at, round_of, round_starts
            )
            if row is not None:
                rows.append(row)
        return rows

    @staticmethod
    def _decompose(
        correlation_id: str,
        record: OpLineage,
        checked_at: Mapping[str, float],
        round_of: Mapping[str, int],
        round_starts: Mapping[int, float],
    ) -> CriticalPathRow | None:
        if not record.applied_at:
            return None
        captured = record.captured_at
        first_applied = min(record.applied_at)
        # CHECKED is stamped after the op is created *and* written to the
        # log store, so the segment absorbs the store write; ops captured
        # without a checker fall back to zero.
        checked = checked_at.get(correlation_id, captured)
        checked = min(max(checked, captured), first_applied)
        # The op leaves the source when it is enqueued (or shipped, for
        # transports without a queue); ops applied in-process never left.
        left_source = record.enqueued_at
        if left_source is None:
            left_source = record.shipped_at
        if left_source is None:
            left_source = checked
        left_source = min(max(left_source, checked), first_applied)
        window_index = round_of.get(correlation_id, UNKNOWN_WINDOW)
        round_start = round_starts.get(window_index, first_applied)
        round_start = min(max(round_start, left_source), first_applied)
        return CriticalPathRow(
            correlation_id=correlation_id,
            source=record.source,
            table=record.table,
            window_index=window_index,
            views=record.views,
            check_ms=checked - captured,
            ship_ms=left_source - checked,
            queue_ms=round_start - left_source,
            apply_ms=first_applied - round_start,
            end_to_end_ms=first_applied - captured,
        )

    # ------------------------------------------------------------ aggregates
    def window_blame(self) -> list[StageBlame]:
        """Per apply-round blame, ordered by round index.

        The evicted-events bucket (``window_index == -1``), when present,
        sorts first under the label ``window:unknown``.
        """
        by_round: dict[int, list[CriticalPathRow]] = {}
        for row in self.rows():
            by_round.setdefault(row.window_index, []).append(row)
        blames = []
        for index in sorted(by_round):
            label = "window:unknown" if index == UNKNOWN_WINDOW else f"window:{index}"
            blames.append(_sum_blame(label, by_round[index]))
        return blames

    def view_blame(self) -> list[StageBlame]:
        """Per-view blame: which stage dominates each view's staleness."""
        by_view: dict[str, list[CriticalPathRow]] = {}
        for row in self.rows():
            for view in row.views:
                by_view.setdefault(view, []).append(row)
        return [
            _sum_blame(f"view:{view}", by_view[view]) for view in sorted(by_view)
        ]

    def p99_blame(self) -> CriticalPathRow | None:
        """The nearest-rank p99 op by end-to-end latency (None when empty).

        This is the op the drill interrogates: its critical stage names
        what put the tail where it is.
        """
        rows = sorted(self.rows(), key=lambda r: (r.end_to_end_ms, r.correlation_id))
        if not rows:
            return None
        rank = max(1, math.ceil(0.99 * len(rows)))
        return rows[rank - 1]

    def round_start_ms(self, index: int) -> float | None:
        self.rows()  # ensure assembled
        return self._round_starts.get(index)

    def to_dict(self) -> dict[str, Any]:
        p99 = self.p99_blame()
        return {
            "ops": len(self.rows()),
            "windows": [blame.to_dict() for blame in self.window_blame()],
            "views": [blame.to_dict() for blame in self.view_blame()],
            "p99": None if p99 is None else p99.to_dict(),
        }

"""The meta-observatory: the pipeline observing itself with its own tools.

The source paper's thesis is that extracted views are cheapest to keep
fresh by shipping deltas, not snapshots — and monitoring views over
telemetry are themselves extracted views.  :class:`MetaObservatory`
dogfoods that claim: it snapshots ``sys.*`` tables into a small source
database, registers three monitoring views over them and maintains the
views **incrementally** through the very capture → log-store →
integrator machinery the telemetry describes:

``mon_backlog``
    Per-(source, table) capture/apply backlog from ``sys.watermarks``.
``mon_staleness``
    The staleness leaderboard: latest ``view.<name>.staleness_ms``
    sample per view from ``sys.series``.
``mon_slo_burn``
    Currently-significant SLO transitions: latest finding per
    (objective, entity) from ``sys.slo``, filtered to severity
    ``error`` by the view predicate.

A ``refresh()`` diffs the desired snapshot against the current base
rows and emits only the changed rows as INSERT/UPDATE/DELETE — the
delta, exactly as the paper prescribes — then drains the log store and
integrates.  Every maintenance plan comes from the
:class:`~repro.semantics.planner.ViewMaintenancePlanner` and is
verifier-certified by the integrator, like any application view.

**The meta-observation guard.**  The self-pipeline must not observe
itself: were its DML captured into the primary recorder, every refresh
would perturb the counts the monitoring views report, and the system
would never converge.  Refreshes therefore run inside
:func:`~repro.obs.pipeline.context.suppress_pipeline`, and the refresh
report carries a ``guard_ok`` bit proving the observed event log did
not grow.  The observatory also keeps its own clock, metrics registry
and null tracer, so maintaining the monitoring views costs the observed
pipeline zero virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ...clock import VirtualClock
from ...engine.database import Database
from ...engine.schema import Column, TableSchema
from ...engine.types import FLOAT, INTEGER, char
from ...errors import ObservabilityError
from ...semantics.checker import SchemaCatalog, SemanticChecker
from ...semantics.planner import ViewMaintenancePlanner
from ...sql.ast_nodes import sql_literal
from ..metrics import MetricsRegistry
from ..pipeline import StateDigest, suppress_pipeline
from ..tracing import NULL_TRACER
from .catalog import SystemCatalog

Row = tuple[Any, ...]

# Keys are synthetic INTEGER ids (the delta-rule verifier's small-scope
# databases model numeric keys); the natural string key rides along in
# the ``entity`` column and the observatory owns the stable id mapping.
BACKLOG_SCHEMA = TableSchema(
    "obs_backlog",
    [
        Column("entity_id", INTEGER, nullable=False),
        Column("entity", char(48), nullable=False),
        Column("source", char(24), nullable=False),
        Column("table_name", char(24), nullable=False),
        Column("captured_ops", FLOAT, nullable=False),
        Column("applied_ops", FLOAT, nullable=False),
        Column("lag_ms", FLOAT, nullable=False),
    ],
    primary_key="entity_id",
)

STALENESS_SCHEMA = TableSchema(
    "obs_staleness",
    [
        Column("entity_id", INTEGER, nullable=False),
        Column("entity", char(64), nullable=False),
        Column("staleness_ms", FLOAT, nullable=False),
    ],
    primary_key="entity_id",
)

SLO_STATE_SCHEMA = TableSchema(
    "obs_slo",
    [
        Column("entity_id", INTEGER, nullable=False),
        Column("entity", char(48), nullable=False),
        Column("code", char(8), nullable=False),
        Column("severity", char(8), nullable=False),
        Column("short_burn", FLOAT, nullable=False),
        Column("long_burn", FLOAT, nullable=False),
    ],
    primary_key="entity_id",
)

_SCHEMAS = (BACKLOG_SCHEMA, STALENESS_SCHEMA, SLO_STATE_SCHEMA)


@dataclass
class TableDelta:
    """Row-level changes one refresh shipped for one base table."""

    table: str
    inserted: int = 0
    updated: int = 0
    deleted: int = 0

    @property
    def total(self) -> int:
        return self.inserted + self.updated + self.deleted

    def to_dict(self) -> dict[str, Any]:
        return {
            "table": self.table,
            "inserted": self.inserted,
            "updated": self.updated,
            "deleted": self.deleted,
        }


@dataclass
class MetaRefreshReport:
    """Outcome of one incremental monitoring-view refresh."""

    deltas: list[TableDelta] = field(default_factory=list)
    ops_captured: int = 0
    ops_applied: int = 0
    #: The observed recorder's event total did not move during refresh —
    #: the meta-observation guard held.
    guard_ok: bool = True
    #: Every monitoring view digest-matches a from-scratch recompute.
    digests_ok: bool = True

    @property
    def rows_changed(self) -> int:
        return sum(delta.total for delta in self.deltas)

    def to_dict(self) -> dict[str, Any]:
        return {
            "deltas": [delta.to_dict() for delta in self.deltas],
            "rows_changed": self.rows_changed,
            "ops_captured": self.ops_captured,
            "ops_applied": self.ops_applied,
            "guard_ok": self.guard_ok,
            "digests_ok": self.digests_ok,
        }


def _view_definitions() -> list[Any]:
    from ...core.selfmaint import ViewDefinition

    return [
        ViewDefinition(
            name="mon_backlog",
            base_table="obs_backlog",
            columns=(
                "entity_id",
                "entity",
                "source",
                "captured_ops",
                "applied_ops",
                "lag_ms",
            ),
            predicate=None,
            key_column="entity_id",
            base_columns=BACKLOG_SCHEMA.column_names,
        ),
        ViewDefinition(
            name="mon_staleness",
            base_table="obs_staleness",
            columns=STALENESS_SCHEMA.column_names,
            predicate=None,
            key_column="entity_id",
            base_columns=STALENESS_SCHEMA.column_names,
        ),
        ViewDefinition(
            name="mon_slo_burn",
            base_table="obs_slo",
            columns=("entity_id", "entity", "code", "short_burn", "long_burn"),
            predicate="severity = 'error'",
            key_column="entity_id",
            base_columns=SLO_STATE_SCHEMA.column_names,
        ),
    ]


class MetaObservatory:
    """Monitoring views over ``sys.*``, maintained by the pipeline itself.

    Heavyweight collaborators (capture wrapper, log store, warehouse,
    integrator) are imported lazily in ``__init__`` so that importing
    :mod:`repro.obs.introspect` does not pull :mod:`repro.core` — the
    observatory is the one deliberate, documented place the obs layer
    drives core machinery, and it only does so when instantiated.
    """

    def __init__(self, catalog: SystemCatalog, verifier: Any = None) -> None:
        from ...analysis.analyzer import OpDeltaAnalyzer
        from ...core.capture import OpDeltaCapture
        from ...core.hybrid import ViewAwareHybridPolicy
        from ...core.stores import FileLogStore
        from ...warehouse.opdelta_integrator import OpDeltaIntegrator
        from ...warehouse.warehouse import Warehouse

        self._catalog = catalog
        clock = VirtualClock()
        self._metrics = MetricsRegistry()
        self._source = Database(
            "meta-observatory",
            clock=clock,
            metrics=self._metrics,
            tracer=NULL_TRACER,
        )
        for schema in _SCHEMAS:
            self._source.create_table(schema)
        self._session = self._source.connect()
        self._store = FileLogStore(self._source)
        definitions = _view_definitions()
        # Stable synthetic ids: entity string -> entity_id, assigned on
        # first sight and reused for the row's whole lifetime (including
        # delete/re-insert), so deltas always address the same key.
        self._ids: dict[str, dict[str, int]] = {s.name: {} for s in _SCHEMAS}
        self._next_id: dict[str, int] = {s.name: 1 for s in _SCHEMAS}
        analyzer = OpDeltaAnalyzer(
            views=definitions,
            mirrored_tables={schema.name for schema in _SCHEMAS},
            key_columns={schema.name: "entity_id" for schema in _SCHEMAS},
            table_columns={
                schema.name: schema.column_names for schema in _SCHEMAS
            },
            metrics=self._metrics,
        )
        self._capture = OpDeltaCapture(
            self._session,
            self._store,
            tables={schema.name for schema in _SCHEMAS},
            # The burn view's predicate makes UPDATEs on obs_slo need
            # before images — the paper's hybrid augmentation, decided
            # statically from the view definitions.
            hybrid_policy=ViewAwareHybridPolicy(definitions),
            analyzer=analyzer,
            checker=SemanticChecker(SchemaCatalog.from_database(self._source)),
            source="meta-observatory",
        )
        self._capture.attach()
        self._warehouse = Warehouse("meta-warehouse", clock=clock)
        schema_by_table = {schema.name: schema for schema in _SCHEMAS}
        for schema in _SCHEMAS:
            self._warehouse.create_mirror(schema)
        self.views = [
            self._warehouse.define_view(
                definition, schema_by_table[definition.base_table]
            )
            for definition in definitions
        ]
        plans = ViewMaintenancePlanner(
            SchemaCatalog(_SCHEMAS)
        ).plan_catalog(views=definitions)
        self._integrator = OpDeltaIntegrator(
            self._warehouse.database.internal_session(),
            views=self.views,
            analyzer=analyzer,
            plans=plans,
            # Callers needing hermetic runs (the forensics drill) pass a
            # verifier with a private certificate cache so every run pays
            # the same small-scope proofs; by default the integrator uses
            # the process-wide pay-once cache.
            verifier=verifier,
        )

    # --------------------------------------------------------------- desired
    # Each helper returns entity -> payload (the columns after entity_id
    # and entity); ids are attached by the diff step.
    def _desired_backlog(self) -> dict[str, Row]:
        result = self._catalog.query(
            "SELECT source, table_name, captured_ops, applied_ops, lag_ms "
            "FROM sys.watermarks WHERE table_name IS NOT NULL"
        )
        desired: dict[str, Row] = {}
        for source, table, captured, applied, lag_ms in result.rows:
            entity = f"{source}/{table}"[:48]
            desired[entity] = (
                source,
                table,
                float(captured),
                float(applied),
                float(lag_ms),
            )
        return desired

    def _desired_staleness(self) -> dict[str, Row]:
        result = self._catalog.query(
            "SELECT series, sample_index, value FROM sys.series "
            "WHERE series LIKE 'view.%' ORDER BY series ASC, sample_index ASC"
        )
        desired: dict[str, Row] = {}
        for series, _index, value in result.rows:
            if not series.endswith(".staleness_ms"):
                continue
            entity = series[len("view.") : -len(".staleness_ms")][:64]
            # Rows arrive in sample order: the last one per series wins.
            desired[entity] = (float(value),)
        return desired

    def _desired_slo(self) -> dict[str, Row]:
        result = self._catalog.query(
            "SELECT objective, entity, code, severity, short_burn, long_burn, "
            "at_ms FROM sys.slo ORDER BY at_ms ASC"
        )
        desired: dict[str, Row] = {}
        for objective, entity, code, severity, short_burn, long_burn, _at in (
            result.rows
        ):
            key = f"{objective}/{entity}"[:48]
            # History is chronological: the latest transition per
            # objective/entity is that alert's current state.
            desired[key] = (code, severity, float(short_burn), float(long_burn))
        return desired

    # --------------------------------------------------------------- refresh
    def refresh(self) -> MetaRefreshReport:
        """Ship the delta between the live snapshot and the base tables.

        Runs entirely under the meta-observation guard; raises
        :class:`~repro.errors.ObservabilityError` if the guard is
        breached (the observed event log grew during refresh).
        """
        observed = self._catalog.bundle.recorder
        events_before = (
            sum(observed.log.counts.values()) if observed is not None else 0
        )
        desired_by_table = {
            BACKLOG_SCHEMA.name: self._desired_backlog(),
            STALENESS_SCHEMA.name: self._desired_staleness(),
            SLO_STATE_SCHEMA.name: self._desired_slo(),
        }
        report = MetaRefreshReport()
        with suppress_pipeline():
            statements: list[str] = []
            for schema in _SCHEMAS:
                delta, sql = self._plan_delta(schema, desired_by_table[schema.name])
                report.deltas.append(delta)
                statements.extend(sql)
            if statements:
                self._session.begin()
                for statement in statements:
                    self._session.execute(statement)
                self._session.commit()
            groups = self._store.drain()
            report.ops_captured = sum(len(g.operations) for g in groups)
            if groups:
                integration = self._integrator.integrate(groups)
                report.ops_applied = integration.statements_issued
        events_after = (
            sum(observed.log.counts.values()) if observed is not None else 0
        )
        report.guard_ok = events_after == events_before
        if not report.guard_ok:
            raise ObservabilityError(
                "meta-observation guard breached: the self-pipeline recorded "
                f"{events_after - events_before} lifecycle event(s) into the "
                "recorder it observes"
            )
        report.digests_ok = self.digests_equal()
        return report

    def _entity_id(self, table: str, entity: str) -> int:
        ids = self._ids[table]
        found = ids.get(entity)
        if found is None:
            found = self._next_id[table]
            self._next_id[table] += 1
            ids[entity] = found
        return found

    def _plan_delta(
        self, schema: TableSchema, desired: Mapping[str, Row]
    ) -> tuple[TableDelta, list[str]]:
        """Diff desired vs current rows into the minimal DML delta."""
        table = self._source.table(schema.name)
        # Current rows keyed by the natural entity string (column 1).
        current: dict[str, Row] = {
            values[1]: tuple(values) for _rid, values in table.scan()
        }
        delta = TableDelta(table=schema.name)
        statements: list[str] = []
        for entity in sorted(set(desired) - set(current)):
            row = (self._entity_id(schema.name, entity), entity, *desired[entity])
            values = ", ".join(sql_literal(v) for v in row)
            statements.append(f"INSERT INTO {schema.name} VALUES ({values})")
            delta.inserted += 1
        for entity in sorted(set(desired) & set(current)):
            payload = desired[entity]
            if payload == current[entity][2:]:
                continue
            assignments = ", ".join(
                f"{column} = {sql_literal(value)}"
                for column, value in zip(schema.column_names[2:], payload)
                if value != current[entity][schema.column_index(column)]
            )
            statements.append(
                f"UPDATE {schema.name} SET {assignments} "
                f"WHERE entity_id = {current[entity][0]}"
            )
            delta.updated += 1
        for entity in sorted(set(current) - set(desired)):
            statements.append(
                f"DELETE FROM {schema.name} "
                f"WHERE entity_id = {current[entity][0]}"
            )
            delta.deleted += 1
        return delta, statements

    # ---------------------------------------------------------------- checks
    def digests_equal(self) -> bool:
        """Every view digest-matches recomputation from its base table."""
        return not self.digest_mismatches()

    def digest_mismatches(self) -> list[str]:
        """Names of monitoring views whose incremental state has drifted."""
        mismatched = []
        for view in self.views:
            base_rows = [
                values
                for _rid, values in self._source.table(
                    view.definition.base_table
                ).scan()
            ]
            incremental = StateDigest.from_rows(view.rows())
            recomputed = StateDigest.from_rows(view.recompute(base_rows))
            if incremental.value != recomputed.value:
                mismatched.append(view.definition.name)
        return mismatched

    def view_rows(self, name: str) -> list[Row]:
        return self._warehouse.view(name).rows()

    def close(self) -> None:
        self._capture.detach()

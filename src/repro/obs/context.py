"""Ambient observability context.

The experiment modules construct their databases, queues and networks
internally, so a caller who wants one registry/tracer across a whole
experiment (the ``repro-bench --metrics`` / ``--trace`` path) cannot pass
them through every signature.  Instead it installs them ambiently::

    with observe() as obs:
        result = experiments.table2.run()
    print(obs.metrics.to_json())

While the ``with`` block is active, every :class:`~repro.engine.database.
Database` (and the other obs-aware components) created *without* an
explicit registry/tracer picks up the ambient pair.  Contexts nest — the
innermost wins — and the stack is plain module state because the engine is
single-threaded by design (concurrency is modelled by :mod:`repro.sim`).
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from .metrics import MetricsRegistry
from .tracing import Tracer


class ObsContext:
    """One ambient (registry, tracer) pair."""

    __slots__ = ("metrics", "tracer")

    def __init__(self, metrics: MetricsRegistry, tracer: Tracer) -> None:
        self.metrics = metrics
        self.tracer = tracer


_STACK: list[ObsContext] = []


def current() -> ObsContext | None:
    """The innermost active context, or ``None``."""
    return _STACK[-1] if _STACK else None


def ambient_metrics() -> MetricsRegistry | None:
    context = current()
    return context.metrics if context is not None else None


def ambient_tracer() -> Tracer | None:
    context = current()
    return context.tracer if context is not None else None


@contextmanager
def observe(
    metrics: MetricsRegistry | None = None, tracer: Tracer | None = None
) -> Iterator[ObsContext]:
    """Install an ambient registry/tracer for the duration of the block.

    Fresh instances are created for whichever of the two is omitted.
    """
    context = ObsContext(
        metrics if metrics is not None else MetricsRegistry(),
        tracer if tracer is not None else Tracer(),
    )
    _STACK.append(context)
    try:
        yield context
    finally:
        _STACK.pop()

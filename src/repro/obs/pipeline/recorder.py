"""The pipeline recorder: one sink for every lifecycle observation.

Components call ``record_*`` as an op passes through them (capture,
transport, compaction, integration); the recorder turns those calls into

* :class:`~repro.obs.pipeline.events.LineageEvent` entries in a bounded
  :class:`~repro.obs.pipeline.events.EventLog`;
* a per-op :class:`OpLineage` summary (never evicted) that the
  :class:`~repro.obs.pipeline.auditor.PipelineAuditor` closes its
  conservation proof over;
* source/table watermarks, per-view freshness and stage-lag samples
  (:mod:`repro.obs.pipeline.watermarks`);
* ``obs.pipeline.*`` metrics on the attached registry (ambient
  :func:`repro.obs.context.ambient_metrics` by default).

Timestamps are always supplied by the observing component from **its own**
virtual clock (`at_ms`); the recorder's optional clock is only the default
for snapshot-time "now".  Nothing here imports :mod:`repro.core` — ops and
transaction groups are duck-typed via the structural protocols in
:mod:`repro.obs.pipeline.events`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Protocol, Sequence

from ...clock import VirtualClock
from ..context import ambient_metrics
from ..metrics import NULL_REGISTRY, MetricsLike
from .events import (
    EventLog,
    LifecycleKind,
    LineageEvent,
    lineage_key,
    lineage_source,
)
from .watermarks import LagSamples, SourceWatermark, TableWatermark, ViewFreshness

#: Lag decompositions the recorder samples (virtual ms).
LAG_STAGES = ("capture_to_ship", "ship_to_apply", "commit_to_apply", "end_to_end")


class WindowObserver(Protocol):
    """Anything wanting a callback per shipped window (the flight recorder).

    Structural on purpose: the pipeline layer must not import
    :mod:`repro.obs.flight` (the flight recorder observes the pipeline,
    never the other way round), so the recorder only knows this shape.
    """

    def on_window_shipped(self, recorder: PipelineRecorder, at_ms: float) -> None:
        ...


@dataclass
class OpLineage:
    """Everything known about one correlated op across the pipeline."""

    correlation_id: str
    source: str
    table: str
    txn_id: int
    sequence: int
    captured_at: float
    committed_at: float | None = None
    checked: bool = False
    #: When the op left the source (network ship or durable enqueue).
    shipped_at: float | None = None
    enqueued_at: float | None = None
    acked_at: float | None = None
    #: Warehouse apply times — more than one entry means a duplicate apply.
    applied_at: list[float] = field(default_factory=list)
    #: Global apply order indexes, for reordering detection.
    apply_order: list[int] = field(default_factory=list)
    #: Views maintained by this op's apply.
    views: tuple[str, ...] = ()
    pruned_at: float | None = None
    pruned_stage: str | None = None
    absorbed_at: float | None = None
    #: Correlation id of the surviving statement (None for annihilation).
    absorbed_by: str | None = None
    absorbed_rule: str | None = None
    rejected_at: float | None = None
    rejected_reason: str | None = None
    redeliveries: int = 0

    @property
    def terminal(self) -> str | None:
        """Which conservation bucket the op settled into, if any."""
        if self.applied_at:
            return "applied"
        if self.pruned_at is not None:
            return "pruned"
        if self.absorbed_at is not None:
            return "absorbed"
        if self.rejected_at is not None:
            return "rejected"
        return None

    @property
    def last_stage(self) -> str:
        """The furthest pipeline stage that observed this op (for findings)."""
        terminal = self.terminal
        if terminal is not None:
            return terminal
        if self.acked_at is not None:
            return "acked"
        if self.enqueued_at is not None:
            return "enqueued"
        if self.shipped_at is not None:
            return "shipped"
        return "captured"


@dataclass(frozen=True)
class RaceRecord:
    """One interference-sanitizer detection, kept for audit correlation.

    ``op_a``/``op_b`` are the correlation ids of the unordered
    conflicting pair; ``code`` is the sanitizer's ``RACE1xx`` class.  The
    :class:`~repro.obs.pipeline.auditor.PipelineAuditor` folds these into
    its ``AUD004`` digest-divergence findings instead of reporting the
    two signals independently.
    """

    code: str
    op_a: str
    op_b: str
    table: str
    at_ms: float
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "op_a": self.op_a,
            "op_b": self.op_b,
            "table": self.table,
            "at_ms": self.at_ms,
            "detail": self.detail,
        }


class PipelineRecorder:
    """Collects lineage, watermarks and lag samples for one pipeline run."""

    def __init__(
        self,
        clock: VirtualClock | None = None,
        metrics: MetricsLike | None = None,
        log_capacity: int = 50_000,
        flight: WindowObserver | None = None,
    ) -> None:
        self._clock = clock
        self._metrics = metrics
        #: Optional per-shipped-window sampler (the flight recorder).
        self.flight = flight
        self.log = EventLog(capacity=log_capacity)
        #: correlation id -> lineage, in first-observation order.
        self.lineage: dict[str, OpLineage] = {}
        self.sources: dict[str, SourceWatermark] = {}
        self.tables: dict[tuple[str, str], TableWatermark] = {}
        self.views: dict[str, ViewFreshness] = {}
        self.lags: dict[str, LagSamples] = {
            stage: LagSamples() for stage in LAG_STAGES
        }
        #: Capture-seam rejections (pre-capture, so no lineage entry).
        self.statements_rejected_at_capture = 0
        #: Interference-sanitizer detections (for AUD004 correlation).
        self.races: list[RaceRecord] = []
        #: Value-delta batches applied (no per-op lineage on that path).
        self.value_batches_applied = 0
        #: Adaptive-switcher routing decisions (table-level, no lineage).
        self.routing_decisions = 0
        self._apply_counter = 0

    # --------------------------------------------------------------- plumbing
    @property
    def metrics(self) -> MetricsLike:
        if self._metrics is not None:
            return self._metrics
        ambient = ambient_metrics()
        return ambient if ambient is not None else NULL_REGISTRY

    def _now(self, at_ms: float | None) -> float:
        if at_ms is not None:
            return at_ms
        return self._clock.now if self._clock is not None else 0.0

    def _emit(
        self,
        kind: LifecycleKind,
        record: OpLineage,
        at_ms: float,
        detail: str = "",
    ) -> None:
        self.log.append(
            LineageEvent(
                kind=kind,
                correlation_id=record.correlation_id,
                at_ms=at_ms,
                source=record.source,
                table=record.table,
                txn_id=record.txn_id,
                sequence=record.sequence,
                detail=detail,
            )
        )
        metrics = self.metrics
        if metrics.enabled:
            metrics.counter(f"obs.pipeline.events.{kind.value}").inc()

    def _ensure(self, op: Any, source: str | None = None) -> OpLineage:
        key = lineage_key(op)
        record = self.lineage.get(key)
        if record is None:
            record = OpLineage(
                correlation_id=key,
                source=source or lineage_source(op),
                table=op.table,
                txn_id=op.txn_id,
                sequence=op.sequence,
                captured_at=op.captured_at,
            )
            self.lineage[key] = record
            watermark = self._source(record.source)
            watermark.capture(record.sequence)
            table = self._table(record.source, record.table)
            table.captured_ops += 1
        return record

    def _source(self, source: str) -> SourceWatermark:
        watermark = self.sources.get(source)
        if watermark is None:
            watermark = SourceWatermark(source=source)
            self.sources[source] = watermark
        return watermark

    def _table(self, source: str, table: str) -> TableWatermark:
        key = (source, table)
        record = self.tables.get(key)
        if record is None:
            record = TableWatermark(source=source, table=table)
            self.tables[key] = record
        return record

    def _view(self, view: str) -> ViewFreshness:
        record = self.views.get(view)
        if record is None:
            record = ViewFreshness(view=view)
            self.views[view] = record
        return record

    def _settle(self, record: OpLineage) -> None:
        self._source(record.source).settle(record.sequence)
        metrics = self.metrics
        if metrics.enabled:
            watermark = self._source(record.source)
            metrics.gauge(
                "obs.pipeline.watermark.low", source=record.source
            ).set(watermark.low_seq)
            metrics.gauge(
                "obs.pipeline.watermark.high", source=record.source
            ).set(watermark.high_seq)

    def _group_ops(self, payload: Any) -> Sequence[Any]:
        """The ops of a duck-typed transaction group ('' for non-groups)."""
        operations = getattr(payload, "operations", None)
        if operations is None or not hasattr(payload, "txn_id"):
            return ()
        return operations

    # ---------------------------------------------------------------- capture
    def record_captured(self, op: Any, source: str, at_ms: float) -> None:
        record = self._ensure(op, source=source)
        self._emit(LifecycleKind.CAPTURED, record, at_ms)
        watermark = self._source(record.source)
        metrics = self.metrics
        if metrics.enabled:
            metrics.gauge(
                "obs.pipeline.watermark.high", source=record.source
            ).set(watermark.high_seq)

    def record_checked(self, op: Any, at_ms: float) -> None:
        record = self._ensure(op)
        record.checked = True
        self._emit(LifecycleKind.CHECKED, record, at_ms)

    def record_rejected_statement(
        self, source: str, table: str, at_ms: float, reason: str
    ) -> None:
        """A statement refused at the capture seam — never became an op."""
        self.statements_rejected_at_capture += 1
        self.log.append(
            LineageEvent(
                kind=LifecycleKind.REJECTED,
                correlation_id=f"{source}:<rejected>",
                at_ms=at_ms,
                source=source,
                table=table,
                detail=reason,
            )
        )
        metrics = self.metrics
        if metrics.enabled:
            metrics.counter("obs.pipeline.events.rejected").inc()

    # -------------------------------------------------------------- transport
    def record_shipped(self, group: Any, at_ms: float) -> None:
        for op in self._group_ops(group):
            record = self._ensure(op)
            record.shipped_at = at_ms
            if group.committed_at is not None:
                record.committed_at = group.committed_at
            self._emit(LifecycleKind.SHIPPED, record, at_ms)
            self.lags["capture_to_ship"].add(at_ms - record.captured_at)

    def record_enqueued(self, payload: Any, at_ms: float) -> None:
        for op in self._group_ops(payload):
            record = self._ensure(op)
            record.enqueued_at = at_ms
            if payload.committed_at is not None:
                record.committed_at = payload.committed_at
            self._emit(LifecycleKind.ENQUEUED, record, at_ms)
            self.lags["capture_to_ship"].add(at_ms - record.captured_at)

    def record_window_shipped(self, at_ms: float, groups: int = 0) -> None:
        """A whole shippable window left the source (shipped or enqueued).

        This is the flight recorder's sampling tick: every window boundary
        snapshots lags, freshness, watermarks, queue depth and metrics at
        one deterministic virtual instant.
        """
        metrics = self.metrics
        if metrics.enabled:
            metrics.counter("obs.pipeline.windows.shipped").inc()
            if groups:
                metrics.counter("obs.pipeline.windows.groups").inc(groups)
        if self.flight is not None:
            self.flight.on_window_shipped(self, at_ms)

    def record_redelivered(self, payload: Any, attempt: int, at_ms: float) -> None:
        for op in self._group_ops(payload):
            record = self._ensure(op)
            record.redeliveries += 1
            self._emit(
                LifecycleKind.REDELIVERED, record, at_ms, detail=f"attempt={attempt}"
            )

    def record_acked(self, payload: Any, at_ms: float) -> None:
        for op in self._group_ops(payload):
            record = self._ensure(op)
            record.acked_at = at_ms
            self._emit(LifecycleKind.ACKED, record, at_ms)

    # -------------------------------------------------------------- rewriting
    def record_pruned(self, op: Any, at_ms: float | None, stage: str) -> None:
        record = self._ensure(op)
        stamp = self._now(at_ms)
        record.pruned_at = stamp
        record.pruned_stage = stage
        self._emit(LifecycleKind.PRUNED, record, stamp, detail=f"stage={stage}")
        self._settle(record)

    def record_absorbed(
        self,
        op: Any,
        absorber: Any | None,
        rule: str,
        at_ms: float | None = None,
    ) -> None:
        """An op rewritten away by compaction, absorbed into ``absorber``.

        ``absorber is None`` means annihilation — the effect vanished
        entirely (INSERT ∘ DELETE), which is still conservation-complete.
        """
        record = self._ensure(op)
        stamp = self._now(at_ms)
        record.absorbed_at = stamp
        record.absorbed_rule = rule
        record.absorbed_by = None if absorber is None else lineage_key(absorber)
        detail = f"rule={rule}"
        if record.absorbed_by is not None:
            detail += f" into={record.absorbed_by}"
        self._emit(LifecycleKind.COMPACTED_AWAY, record, stamp, detail=detail)
        self._settle(record)

    # ------------------------------------------------------------------ apply
    def record_applied(
        self,
        op: Any,
        at_ms: float,
        committed_at: float | None = None,
        views: Iterable[str] = (),
    ) -> None:
        record = self._ensure(op)
        if committed_at is not None:
            record.committed_at = committed_at
        first_apply = not record.applied_at
        record.applied_at.append(at_ms)
        self._apply_counter += 1
        record.apply_order.append(self._apply_counter)
        view_names = tuple(views)
        record.views = view_names
        self._emit(LifecycleKind.APPLIED, record, at_ms)
        if first_apply:
            self._settle(record)
            left_source_at = (
                record.enqueued_at
                if record.enqueued_at is not None
                else record.shipped_at
            )
            if left_source_at is not None:
                self.lags["ship_to_apply"].add(at_ms - left_source_at)
            if record.committed_at is not None:
                self.lags["commit_to_apply"].add(at_ms - record.committed_at)
            self.lags["end_to_end"].add(at_ms - record.captured_at)
            table = self._table(record.source, record.table)
            table.applied_ops += 1
            commit = record.committed_at
            if commit is not None and (
                table.applied_through_ms is None
                or commit > table.applied_through_ms
            ):
                table.applied_through_ms = commit
            for name in view_names:
                freshness = self._view(name)
                freshness.ops_applied += 1
                freshness.last_applied_at_ms = at_ms
                if commit is not None and (
                    freshness.applied_through_ms is None
                    or commit > freshness.applied_through_ms
                ):
                    freshness.applied_through_ms = commit
            metrics = self.metrics
            if metrics.enabled:
                metrics.histogram("obs.pipeline.lag.end_to_end_ms").observe(
                    at_ms - record.captured_at
                )

    def record_committed(self, ops: Iterable[Any], committed_at: float) -> None:
        """Learn a source transaction's commit timestamp (capture-side)."""
        for op in ops:
            record = self._ensure(op)
            record.committed_at = committed_at
            table = self._table(record.source, record.table)
            if (
                table.captured_through_ms is None
                or committed_at > table.captured_through_ms
            ):
                table.captured_through_ms = committed_at

    def record_rejected_op(self, op: Any, at_ms: float, reason: str) -> None:
        """An op refused at apply time (unreplayable volatile statement)."""
        record = self._ensure(op)
        record.rejected_at = at_ms
        record.rejected_reason = reason
        self._emit(LifecycleKind.REJECTED, record, at_ms, detail=reason)
        self._settle(record)

    def record_race(
        self,
        code: str,
        op_a: str,
        op_b: str,
        table: str,
        at_ms: float,
        detail: str = "",
    ) -> None:
        """The interference sanitizer saw an unordered conflicting access.

        ``op_a``/``op_b`` are correlation ids (the sanitizer works on
        already-correlated ops).  The detection is kept on
        :attr:`races` so the auditor can *correlate* it with digest
        divergence rather than report a second, independent finding.
        """
        self.races.append(
            RaceRecord(
                code=code,
                op_a=op_a,
                op_b=op_b,
                table=table,
                at_ms=at_ms,
                detail=detail,
            )
        )
        record = self.lineage.get(op_a)
        event_detail = f"{code} with={op_b}"
        if detail:
            event_detail += f" {detail}"
        if record is not None:
            self._emit(LifecycleKind.RACE, record, at_ms, detail=event_detail)
        else:
            self.log.append(
                LineageEvent(
                    kind=LifecycleKind.RACE,
                    correlation_id=op_a,
                    at_ms=at_ms,
                    table=table,
                    detail=event_detail,
                )
            )
            metrics = self.metrics
            if metrics.enabled:
                metrics.counter("obs.pipeline.events.race").inc()
        metrics = self.metrics
        if metrics.enabled:
            metrics.counter("obs.pipeline.races.detected").inc()

    def record_routed(
        self, table: str, method: str, at_ms: float, detail: str = ""
    ) -> None:
        """An adaptive-switcher routing decision for one (table, window).

        Table-level, like :meth:`record_value_batch`: no per-op lineage
        record is created, so the conservation balance is untouched — the
        ops a decision routes away from op-delta replay settle separately
        as ``PRUNED`` with a ``switcher-<method>`` stage.
        """
        self.routing_decisions += 1
        rendered = f"method={method}"
        if detail:
            rendered += f" {detail}"
        self.log.append(
            LineageEvent(
                kind=LifecycleKind.ROUTED,
                correlation_id=f"switcher:{table}",
                at_ms=at_ms,
                source="switcher",
                table=table,
                detail=rendered,
            )
        )
        metrics = self.metrics
        if metrics.enabled:
            metrics.counter(
                "obs.pipeline.routed", table=table, method=method
            ).inc()

    def record_value_batch(self, table: str, rows: int, at_ms: float) -> None:
        """A value-delta batch applied (no per-op lineage on that path)."""
        self.value_batches_applied += 1
        self.log.append(
            LineageEvent(
                kind=LifecycleKind.APPLIED,
                correlation_id=f"value-delta:{table}",
                at_ms=at_ms,
                source="value-delta",
                table=table,
                detail=f"rows={rows}",
            )
        )
        metrics = self.metrics
        if metrics.enabled:
            metrics.counter("obs.pipeline.value_batches.applied").inc()

    # ------------------------------------------------------------------ reads
    def source_high_ms(self) -> float | None:
        """Newest captured source commit timestamp across all tables."""
        stamps = [
            t.captured_through_ms
            for t in self.tables.values()
            if t.captured_through_ms is not None
        ]
        return max(stamps) if stamps else None

    def conservation(self) -> dict[str, int]:
        """The auditor's balance sheet: captured vs settled buckets."""
        counts = {
            "captured": len(self.lineage),
            "applied": 0,
            "pruned": 0,
            "absorbed": 0,
            "rejected": 0,
            "in_flight": 0,
        }
        for record in self.lineage.values():
            terminal = record.terminal
            if terminal is None:
                counts["in_flight"] += 1
            else:
                counts[terminal] += 1
        return counts

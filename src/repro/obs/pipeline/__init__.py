"""End-to-end Op-Delta lineage, freshness watermarks and the auditor.

The package answers the operational question the paper's online-
maintenance promise raises: *how stale is each materialized view right
now, and where in the capture→ship→apply pipeline is the lag?*

* :mod:`repro.obs.pipeline.events` — per-stage lifecycle events
  (captured / checked / pruned / compacted-away / shipped / enqueued /
  redelivered / acked / applied / rejected) in a bounded, virtual-time-
  stamped :class:`EventLog`;
* :mod:`repro.obs.pipeline.recorder` — the :class:`PipelineRecorder`
  components report into (installed ambiently via
  :func:`observe_pipeline`), maintaining per-op lineage, source
  watermarks, per-(source, table) and per-view freshness and the
  per-stage lag decomposition;
* :mod:`repro.obs.pipeline.auditor` — :class:`PipelineAuditor` proves
  conservation (captured = applied + pruned + absorbed + rejected),
  flags gaps/duplicates/reorderings as positioned
  :class:`AuditFinding`\\ s and checksums warehouse state with
  :class:`StateDigest`;
* :mod:`repro.obs.pipeline.snapshot` — the :class:`PipelineSnapshot`
  rendered by ``repro-bench --health``.

Everything here is deterministic virtual time; nothing imports
:mod:`repro.core` at runtime (ops and groups are duck-typed), keeping the
core → obs dependency direction intact.
"""

from .auditor import AuditFinding, AuditReport, PipelineAuditor, StateDigest
from .context import ambient_pipeline, observe_pipeline, suppress_pipeline
from .events import (
    EventLog,
    LifecycleKind,
    LineageEvent,
    lineage_key,
    lineage_source,
)
from .recorder import OpLineage, PipelineRecorder
from .snapshot import PipelineSnapshot, build_snapshot
from .watermarks import (
    LagSamples,
    SourceWatermark,
    TableWatermark,
    ViewFreshness,
)

__all__ = [
    "AuditFinding",
    "AuditReport",
    "EventLog",
    "LagSamples",
    "LifecycleKind",
    "LineageEvent",
    "OpLineage",
    "PipelineAuditor",
    "PipelineRecorder",
    "PipelineSnapshot",
    "SourceWatermark",
    "StateDigest",
    "TableWatermark",
    "ViewFreshness",
    "ambient_pipeline",
    "build_snapshot",
    "lineage_key",
    "lineage_source",
    "observe_pipeline",
    "suppress_pipeline",
]

"""The continuous pipeline auditor: conservation, ordering, state digests.

:class:`PipelineAuditor` closes the loop the paper leaves implicit — that
what capture extracted is *exactly* what the warehouse applied.  From the
recorder's lineage it proves **conservation**::

    captured = applied + pruned + absorbed-by-compaction + rejected

(with nothing left in flight for a quiesced pipeline), checks that no op
was applied twice without an at-least-once redelivery to explain it, that
applies never reordered ops within a source transaction or across a
conflict component, and — via :class:`StateDigest` — that the warehouse
row state matches an incrementally maintained expected digest.  Every
violation is a positioned :class:`AuditFinding` naming the correlation
id, sequence and pipeline stage where the trail ends.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .recorder import OpLineage, PipelineRecorder

#: Finding severities, in decreasing order of alarm.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class AuditFinding:
    """One positioned audit violation (or notable observation)."""

    code: str
    severity: str
    message: str
    correlation_id: str | None = None
    source: str = ""
    table: str = ""
    sequence: int | None = None
    #: The furthest pipeline stage that saw the op (where the trail ends).
    stage: str | None = None

    def render(self) -> str:
        position = self.correlation_id or "<pipeline>"
        where = f" at stage '{self.stage}'" if self.stage else ""
        return f"{self.code} [{self.severity}] {position}{where}: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "correlation_id": self.correlation_id,
            "source": self.source,
            "table": self.table,
            "sequence": self.sequence,
            "stage": self.stage,
        }


@dataclass
class AuditReport:
    """Outcome of one auditor pass."""

    findings: list[AuditFinding] = field(default_factory=list)
    conservation: dict[str, int] = field(default_factory=dict)
    #: Digest comparisons by position name -> matched.
    digest_checks: dict[str, bool] = field(default_factory=dict)

    @property
    def errors(self) -> list[AuditFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def verdict(self) -> str:
        """``CLEAN`` when no error-severity finding survived."""
        return "CLEAN" if not self.errors else "FINDINGS"

    @property
    def conservation_holds(self) -> bool:
        c = self.conservation
        return bool(c) and c["captured"] == (
            c["applied"] + c["pruned"] + c["absorbed"] + c["rejected"]
        ) and c["in_flight"] == 0

    def add(self, finding: AuditFinding) -> None:
        self.findings.append(finding)

    def to_dict(self) -> dict[str, Any]:
        return {
            "verdict": self.verdict,
            "conservation": self.conservation,
            "conservation_holds": self.conservation_holds,
            "digest_checks": self.digest_checks,
            "findings": [f.to_dict() for f in self.findings],
        }


class StateDigest:
    """Order-independent, incrementally maintainable digest of row state.

    Each row hashes to a fixed 64-bit value; the digest is the XOR of the
    member hashes plus a row count.  XOR is its own inverse, so ``add`` on
    apply and ``remove`` on delete maintain the digest in O(1) per row —
    the "incrementally-maintained expected digest" the auditor compares
    warehouse scans against.  Multisets collide under plain XOR (a row
    present twice cancels out), which the row count disambiguates for the
    duplicate-row shapes the pipeline can actually produce.
    """

    __slots__ = ("_acc", "_count")

    def __init__(self) -> None:
        self._acc = 0
        self._count = 0

    @staticmethod
    def _hash_row(row: Sequence[Any]) -> int:
        canonical = "\x1f".join(repr(value) for value in row)
        digest = hashlib.sha256(canonical.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def add(self, row: Sequence[Any]) -> None:
        self._acc ^= self._hash_row(row)
        self._count += 1

    def remove(self, row: Sequence[Any]) -> None:
        self._acc ^= self._hash_row(row)
        self._count -= 1

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[Any]]) -> "StateDigest":
        digest = cls()
        for row in rows:
            digest.add(row)
        return digest

    @property
    def value(self) -> tuple[int, int]:
        return (self._count, self._acc)

    def hexdigest(self) -> str:
        return f"{self._count}:{self._acc:016x}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateDigest):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StateDigest({self.hexdigest()})"


class PipelineAuditor:
    """Proves the recorder's lineage conserves, orders and reproduces."""

    def __init__(self, recorder: PipelineRecorder) -> None:
        self._recorder = recorder

    def audit(
        self, conflict_components: Iterable[Iterable[int]] | None = None
    ) -> AuditReport:
        """One full pass over the lineage; digests are checked separately.

        ``conflict_components`` (collections of source txn ids, as produced
        by the analyzer's conflict graph) extends the reorder check across
        component members: a batched apply may merge transaction
        boundaries but must never reorder ops *within* a component.
        """
        report = AuditReport(conservation=self._recorder.conservation())
        lineage = self._recorder.lineage
        for record in lineage.values():
            self._check_gap(report, record)
            self._check_duplicate(report, record)
            self._check_absorber(report, lineage, record)
        self._check_order(report, lineage.values())
        if conflict_components is not None:
            self._check_component_order(report, conflict_components)
        return report

    # -------------------------------------------------------------- per-op
    def _check_gap(self, report: AuditReport, record: OpLineage) -> None:
        if record.terminal is not None:
            return
        report.add(
            AuditFinding(
                code="AUD001",
                severity="error",
                message=(
                    "captured op never settled: not applied, pruned, "
                    "absorbed or rejected (lost in the pipeline)"
                ),
                correlation_id=record.correlation_id,
                source=record.source,
                table=record.table,
                sequence=record.sequence,
                stage=record.last_stage,
            )
        )

    def _check_duplicate(self, report: AuditReport, record: OpLineage) -> None:
        extra_applies = len(record.applied_at) - 1
        if extra_applies <= 0:
            return
        if record.redeliveries >= extra_applies:
            report.add(
                AuditFinding(
                    code="AUD005",
                    severity="info",
                    message=(
                        f"applied {len(record.applied_at)} times, explained "
                        f"by {record.redeliveries} at-least-once "
                        "redelivery(ies); apply must be idempotent"
                    ),
                    correlation_id=record.correlation_id,
                    source=record.source,
                    table=record.table,
                    sequence=record.sequence,
                    stage="applied",
                )
            )
            return
        report.add(
            AuditFinding(
                code="AUD002",
                severity="error",
                message=(
                    f"applied {len(record.applied_at)} times with only "
                    f"{record.redeliveries} recorded redelivery(ies) — "
                    "an unexplained duplicate apply"
                ),
                correlation_id=record.correlation_id,
                source=record.source,
                table=record.table,
                sequence=record.sequence,
                stage="applied",
            )
        )

    def _check_absorber(
        self,
        report: AuditReport,
        lineage: dict[str, OpLineage],
        record: OpLineage,
    ) -> None:
        if record.absorbed_at is None or record.absorbed_by is None:
            return
        absorber = lineage.get(record.absorbed_by)
        if absorber is None or absorber.terminal in (None, "rejected"):
            stage = absorber.last_stage if absorber is not None else None
            report.add(
                AuditFinding(
                    code="AUD006",
                    severity="error",
                    message=(
                        f"absorbed into {record.absorbed_by} "
                        f"(rule {record.absorbed_rule}), but the absorber "
                        "never settled — the folded effect is lost"
                    ),
                    correlation_id=record.correlation_id,
                    source=record.source,
                    table=record.table,
                    sequence=record.sequence,
                    stage=stage,
                )
            )

    # ------------------------------------------------------------- ordering
    def _check_order(
        self, report: AuditReport, records: Iterable[OpLineage]
    ) -> None:
        """Applied ops of one source transaction must apply in capture order."""
        by_txn: dict[tuple[str, int], list[OpLineage]] = {}
        for record in records:
            if record.applied_at:
                by_txn.setdefault((record.source, record.txn_id), []).append(record)
        for (_source, _txn_id), members in sorted(by_txn.items()):
            self._flag_inversions(report, members, scope="source transaction")

    def _check_component_order(
        self,
        report: AuditReport,
        conflict_components: Iterable[Iterable[int]],
    ) -> None:
        by_txn: dict[int, list[OpLineage]] = {}
        for record in self._recorder.lineage.values():
            if record.applied_at:
                by_txn.setdefault(record.txn_id, []).append(record)
        for component in conflict_components:
            members: list[OpLineage] = []
            for txn_id in component:
                members.extend(by_txn.get(txn_id, []))
            # Cross-source sequences are not comparable; check per source.
            by_source: dict[str, list[OpLineage]] = {}
            for record in members:
                by_source.setdefault(record.source, []).append(record)
            for source_members in by_source.values():
                self._flag_inversions(
                    report, source_members, scope="conflict component"
                )

    def _flag_inversions(
        self, report: AuditReport, members: list[OpLineage], scope: str
    ) -> None:
        ordered = sorted(members, key=lambda r: r.apply_order[0])
        for earlier, later in zip(ordered, ordered[1:]):
            if later.sequence < earlier.sequence:
                report.add(
                    AuditFinding(
                        code="AUD003",
                        severity="error",
                        message=(
                            f"applied before op {earlier.sequence} of the "
                            f"same {scope} despite being captured earlier — "
                            "conflicting ops were reordered"
                        ),
                        correlation_id=later.correlation_id,
                        source=later.source,
                        table=later.table,
                        sequence=later.sequence,
                        stage="applied",
                    )
                )

    # -------------------------------------------------------------- digests
    def check_digest(
        self,
        report: AuditReport,
        position: str,
        expected: StateDigest,
        actual: StateDigest,
    ) -> bool:
        """Compare warehouse state against the expected digest; record it."""
        matched = expected == actual
        report.digest_checks[position] = matched
        if not matched:
            report.add(
                AuditFinding(
                    code="AUD004",
                    severity="error",
                    message=(
                        f"state divergence at {position}: expected digest "
                        f"{expected.hexdigest()}, warehouse has "
                        f"{actual.hexdigest()}{self._race_correlation()}"
                    ),
                    correlation_id=None,
                    stage=position,
                )
            )
        return matched

    def _race_correlation(self) -> str:
        """Fold sanitizer race records into a digest-divergence message.

        When the interference sanitizer observed unordered conflicting
        accesses at apply time, a digest mismatch is almost certainly the
        race taking effect — so AUD004 names the suspect op pair instead
        of leaving two independent findings for the operator to join.
        """
        races = self._recorder.races
        if not races:
            return ""
        first = races[0]
        more = f" (+{len(races) - 1} more)" if len(races) > 1 else ""
        return (
            "; runtime interference correlates: "
            f"{first.code} {first.op_a} × {first.op_b} "
            f"on {first.table}{more}"
        )

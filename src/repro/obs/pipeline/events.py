"""Lineage lifecycle events and their bounded, virtual-time-stamped log.

Every Op-Delta the capture layer stamps with a correlation id moves
through a fixed set of pipeline stages; each stage append-records one
:class:`LineageEvent` into an :class:`EventLog`.  The log is the raw
material of the watermark/freshness computation and the
:class:`~repro.obs.pipeline.auditor.PipelineAuditor`'s conservation
proof — and, like every other observable in :mod:`repro.obs`, its
timestamps are **virtual milliseconds** from the
:class:`~repro.clock.VirtualClock`, so two runs of the same workload
produce bit-identical logs.

Retention is bounded: the log keeps the most recent ``capacity`` events
and counts what it evicted (``dropped``), so a long-running pipeline can
leave lineage tracking on without unbounded memory.  The per-op lineage
*summary* lives separately in the
:class:`~repro.obs.pipeline.recorder.PipelineRecorder` and is not subject
to event retention — eviction loses event detail, never conservation.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol, Sequence, runtime_checkable


class LifecycleKind(enum.Enum):
    """The pipeline stages an Op-Delta can be observed at."""

    #: Recorded by the capture wrapper (the op now has a correlation id).
    CAPTURED = "captured"
    #: Semantic validation passed at the capture seam.
    CHECKED = "checked"
    #: Dropped as irrelevant to every warehouse view (transport or apply).
    PRUNED = "pruned"
    #: Rewritten away by window compaction; the absorber (if any) carries
    #: the surviving statement.
    COMPACTED_AWAY = "compacted_away"
    #: Left the source over the network (file-shipper path).
    SHIPPED = "shipped"
    #: Durably enqueued on the persistent queue (one message per txn).
    ENQUEUED = "enqueued"
    #: Re-received after a nack/recover — the at-least-once duplicate
    #: signal (``detail`` carries ``attempt=N``).
    REDELIVERED = "redelivered"
    #: Settled on the queue after successful processing.
    ACKED = "acked"
    #: Replayed onto the warehouse mirror/views inside a committed txn.
    APPLIED = "applied"
    #: Refused — semantic rejection at capture, or an unreplayable
    #: volatile statement at apply.
    REJECTED = "rejected"
    #: The interference sanitizer observed an unordered conflicting
    #: access involving this op at apply time (``detail`` carries the
    #: ``RACE1xx`` code and the other op's correlation id).
    RACE = "race"
    #: The adaptive extraction switcher picked a capture method for one
    #: ``(table, window)`` — a table-level decision, recorded with a
    #: synthetic correlation id (``detail`` carries the chosen method and
    #: its cost estimate; ops routed away from op-delta replay settle as
    #: ``PRUNED`` with a ``switcher-*`` stage so conservation closes).
    ROUTED = "routed"


@runtime_checkable
class LineageOp(Protocol):
    """What the pipeline layer needs from an Op-Delta, structurally.

    :mod:`repro.core.opdelta` imports :mod:`repro.obs.context`, so this
    package must never import core at runtime — the dependency points
    from core to obs, and lineage stays duck-typed.
    """

    @property
    def table(self) -> str: ...
    @property
    def txn_id(self) -> int: ...
    @property
    def sequence(self) -> int: ...
    @property
    def captured_at(self) -> float: ...


@runtime_checkable
class LineageGroup(Protocol):
    """One source transaction's ops, structurally (OpDeltaTransaction)."""

    @property
    def txn_id(self) -> int: ...
    @property
    def operations(self) -> Sequence[Any]: ...
    @property
    def committed_at(self) -> float | None: ...


def lineage_key(op: Any) -> str:
    """The correlation id of an op, synthesized when capture never saw it.

    Ops produced by the capture wrapper carry a ``lineage_id`` of the form
    ``<source>:<sequence>``; hand-built ops (tests, fixtures) fall back to
    a ``(txn, sequence)``-derived key so lineage accounting still closes.
    """
    stamped = getattr(op, "lineage_id", None)
    if stamped:
        return str(stamped)
    return f"txn{op.txn_id}:op{op.sequence}"


def lineage_source(op: Any, default: str = "unstamped") -> str:
    """The source half of an op's correlation id (``<source>:<seq>``)."""
    stamped = getattr(op, "lineage_id", None)
    if stamped and ":" in str(stamped):
        return str(stamped).rsplit(":", 1)[0]
    return default


@dataclass(frozen=True)
class LineageEvent:
    """One stage observation of one correlated operation."""

    kind: LifecycleKind
    correlation_id: str
    #: Virtual milliseconds at the observing component's clock.
    at_ms: float
    source: str = ""
    table: str = ""
    txn_id: int = 0
    sequence: int = 0
    #: Stage-specific annotation (``attempt=2``, ``rule=fold``, ...).
    detail: str = ""

    def render(self) -> str:
        extra = f" [{self.detail}]" if self.detail else ""
        return (
            f"{self.at_ms:10.3f}ms {self.kind.value:<14} "
            f"{self.correlation_id} (txn {self.txn_id}, {self.table}){extra}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind.value,
            "correlation_id": self.correlation_id,
            "at_ms": self.at_ms,
            "source": self.source,
            "table": self.table,
            "txn_id": self.txn_id,
            "sequence": self.sequence,
            "detail": self.detail,
        }


@dataclass
class EventLog:
    """Bounded, append-only record of lifecycle events.

    Keeps the most recent ``capacity`` events; older events are evicted
    and tallied in :attr:`dropped` and the retained per-kind counts in
    :attr:`counts` (counts cover *every* event ever appended — eviction
    never loses the totals the auditor reasons about).
    """

    capacity: int = 50_000
    dropped: int = 0
    counts: dict[str, int] = field(default_factory=dict)
    _events: deque[LineageEvent] = field(default_factory=deque, repr=False)

    def append(self, event: LineageEvent) -> None:
        self._events.append(event)
        self.counts[event.kind.value] = self.counts.get(event.kind.value, 0) + 1
        while len(self._events) > self.capacity:
            self._events.popleft()
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LineageEvent]:
        return iter(self._events)

    def events(self, kind: LifecycleKind | None = None) -> list[LineageEvent]:
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind is kind]

    def for_correlation(self, correlation_id: str) -> list[LineageEvent]:
        """The retained per-stage history of one op, in pipeline order."""
        return [
            event
            for event in self._events
            if event.correlation_id == correlation_id
        ]

    def total(self, kind: LifecycleKind) -> int:
        """How many events of ``kind`` were ever appended (pre-eviction)."""
        return self.counts.get(kind.value, 0)

"""Ambient pipeline recorder, mirroring :mod:`repro.obs.context`.

The capture wrapper, the transport layer, the coalescer and both
integrators all emit lifecycle events — but none of them should grow a
``recorder`` parameter for an observability concern.  Instead the caller
installs one ambiently::

    recorder = PipelineRecorder(clock=source.clock)
    with observe_pipeline(recorder):
        ...capture / ship / integrate...
    report = PipelineAuditor(recorder).audit()

While the block is active every pipeline component that checks
:func:`ambient_pipeline` records into it.  Contexts nest (innermost wins)
and the stack is plain module state — the engine is single-threaded by
design, concurrency is modelled by :mod:`repro.sim`.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from .recorder import PipelineRecorder

_STACK: list[PipelineRecorder | None] = []


def ambient_pipeline() -> PipelineRecorder | None:
    """The innermost active recorder, or ``None`` (lineage off)."""
    return _STACK[-1] if _STACK else None


@contextmanager
def observe_pipeline(
    recorder: PipelineRecorder | None = None,
) -> Iterator[PipelineRecorder]:
    """Install an ambient pipeline recorder for the duration of the block."""
    active = recorder if recorder is not None else PipelineRecorder()
    _STACK.append(active)
    try:
        yield active
    finally:
        _STACK.pop()


@contextmanager
def suppress_pipeline() -> Iterator[None]:
    """Mask any ambient recorder for the duration of the block.

    The meta-observation guard: when the observability subsystem drives
    the pipeline machinery over its *own* telemetry (monitoring views
    maintained through the capture/transport/integrate path), the
    self-pipeline must not record lineage into the recorder it is
    observing — that would perturb the very counts it reports.  Pushing
    ``None`` makes :func:`ambient_pipeline` answer "lineage off" inside
    the block while leaving the outer recorder installed.
    """
    _STACK.append(None)
    try:
        yield
    finally:
        _STACK.pop()

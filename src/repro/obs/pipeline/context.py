"""Ambient pipeline recorder, mirroring :mod:`repro.obs.context`.

The capture wrapper, the transport layer, the coalescer and both
integrators all emit lifecycle events — but none of them should grow a
``recorder`` parameter for an observability concern.  Instead the caller
installs one ambiently::

    recorder = PipelineRecorder(clock=source.clock)
    with observe_pipeline(recorder):
        ...capture / ship / integrate...
    report = PipelineAuditor(recorder).audit()

While the block is active every pipeline component that checks
:func:`ambient_pipeline` records into it.  Contexts nest (innermost wins)
and the stack is plain module state — the engine is single-threaded by
design, concurrency is modelled by :mod:`repro.sim`.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from .recorder import PipelineRecorder

_STACK: list[PipelineRecorder] = []


def ambient_pipeline() -> PipelineRecorder | None:
    """The innermost active recorder, or ``None`` (lineage off)."""
    return _STACK[-1] if _STACK else None


@contextmanager
def observe_pipeline(
    recorder: PipelineRecorder | None = None,
) -> Iterator[PipelineRecorder]:
    """Install an ambient pipeline recorder for the duration of the block."""
    active = recorder if recorder is not None else PipelineRecorder()
    _STACK.append(active)
    try:
        yield active
    finally:
        _STACK.pop()

"""Watermarks, per-view freshness and stage-lag decomposition.

The accounting model follows production CDC practice (DBLog-style
watermarking): every capture source owns a monotone sequence, the **high
watermark** is the newest captured sequence number and the **low
watermark** is the largest sequence below which *every* op has settled
(applied, pruned, absorbed by compaction, or rejected).  ``high - low``
bounds the in-flight window; a low watermark that stops advancing is the
first symptom of a lost message, before the auditor even runs.

Freshness is tracked at two grains:

* per ``(source, table)`` — how far the warehouse mirror's applied commit
  timestamp trails the newest captured commit for that table;
* per materialized view — the newest source commit reflected in the view
  (``applied_through_ms``), from which a staleness gauge ("virtual ms
  behind source commit") is derived.

All quantities are deterministic virtual milliseconds/counts, so pinned
regression values are exact across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..stats import nearest_rank_percentile


@dataclass
class SourceWatermark:
    """Low/high sequence watermarks of one capture source."""

    source: str
    #: Newest captured sequence number (0 before the first capture).
    high_seq: int = 0
    #: Every sequence <= this has settled (applied/pruned/absorbed/rejected).
    low_seq: int = 0
    captured: int = 0
    settled: int = 0
    #: Captured-but-unsettled sequences, for low-watermark advancement.
    _pending: set[int] = field(default_factory=set, repr=False)

    @property
    def in_flight(self) -> int:
        return self.captured - self.settled

    def capture(self, sequence: int) -> None:
        self.captured += 1
        self._pending.add(sequence)
        if sequence > self.high_seq:
            self.high_seq = sequence
        self._advance()

    def settle(self, sequence: int) -> None:
        if sequence in self._pending:
            self._pending.discard(sequence)
            self.settled += 1
            self._advance()

    def is_pending(self, sequence: int) -> bool:
        return sequence in self._pending

    def _advance(self) -> None:
        # The low watermark trails the smallest still-pending sequence;
        # with nothing pending it catches up to the high watermark.
        self.low_seq = min(self._pending) - 1 if self._pending else self.high_seq

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "low_seq": self.low_seq,
            "high_seq": self.high_seq,
            "captured": self.captured,
            "settled": self.settled,
            "in_flight": self.in_flight,
        }


@dataclass
class TableWatermark:
    """Commit-time freshness of one (source, table) mirror stream."""

    source: str
    table: str
    captured_ops: int = 0
    applied_ops: int = 0
    #: Newest source commit timestamp captured for this table.
    captured_through_ms: float | None = None
    #: Newest source commit timestamp applied at the warehouse.
    applied_through_ms: float | None = None

    @property
    def lag_ms(self) -> float:
        """Virtual ms of captured-but-unapplied commit history."""
        if self.captured_through_ms is None:
            return 0.0
        if self.applied_through_ms is None:
            return self.captured_through_ms
        return max(0.0, self.captured_through_ms - self.applied_through_ms)

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "table": self.table,
            "captured_ops": self.captured_ops,
            "applied_ops": self.applied_ops,
            "captured_through_ms": self.captured_through_ms,
            "applied_through_ms": self.applied_through_ms,
            "lag_ms": self.lag_ms,
        }


@dataclass
class ViewFreshness:
    """How current one materialized view is, in source-commit time."""

    view: str
    ops_applied: int = 0
    #: Newest source commit timestamp whose effects the view reflects.
    applied_through_ms: float | None = None
    #: Warehouse-clock time of the most recent maintenance step.
    last_applied_at_ms: float | None = None

    def staleness_ms(self, source_high_ms: float | None) -> float:
        """Virtual ms the view trails the newest captured source commit."""
        if source_high_ms is None:
            return 0.0
        if self.applied_through_ms is None:
            return source_high_ms
        return max(0.0, source_high_ms - self.applied_through_ms)

    def to_dict(self) -> dict[str, Any]:
        return {
            "view": self.view,
            "ops_applied": self.ops_applied,
            "applied_through_ms": self.applied_through_ms,
            "last_applied_at_ms": self.last_applied_at_ms,
        }


@dataclass
class LagSamples:
    """One stage-to-stage lag distribution (virtual ms, exact)."""

    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the exact samples (deterministic)."""
        return nearest_rank_percentile(self.values, q)

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(0.5),
            "p95": self.percentile(0.95),
            "max": self.max,
        }

"""Point-in-time pipeline health: the ``repro-bench --health`` payload.

:func:`build_snapshot` folds a :class:`~repro.obs.pipeline.recorder.
PipelineRecorder` (and optionally an auditor pass) into one plain-data
:class:`PipelineSnapshot`: source watermarks, per-table and per-view
freshness, the per-stage lag decomposition and the auditor verdict.  The
snapshot is what the CLI renders and what ``--json`` exports — every value
in it derives from the virtual clock and deterministic counts, so the
same workload produces a byte-identical snapshot on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .auditor import AuditReport
from .recorder import PipelineRecorder


@dataclass
class PipelineSnapshot:
    """Everything ``repro-bench --health`` shows, as plain data."""

    #: Virtual ms at snapshot time (the recorder's clock, or the highest
    #: observed event time when the recorder has no clock).
    generated_at_ms: float = 0.0
    sources: list[dict[str, Any]] = field(default_factory=list)
    tables: list[dict[str, Any]] = field(default_factory=list)
    #: Per-view freshness rows, each with a computed ``staleness_ms``.
    views: list[dict[str, Any]] = field(default_factory=list)
    #: Stage name -> {count, mean, p50, p95, max} (virtual ms).
    stage_lags: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Lifecycle event totals by kind (pre-eviction).
    events: dict[str, int] = field(default_factory=dict)
    events_dropped: int = 0
    conservation: dict[str, int] = field(default_factory=dict)
    verdict: str = "UNAUDITED"
    findings: list[dict[str, Any]] = field(default_factory=list)
    digest_checks: dict[str, bool] = field(default_factory=dict)
    #: Caller extensions (e.g. the health runner's per-pipeline accounting).
    extras: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "generated_at_ms": self.generated_at_ms,
            "sources": self.sources,
            "tables": self.tables,
            "views": self.views,
            "stage_lags": self.stage_lags,
            "events": self.events,
            "events_dropped": self.events_dropped,
            "conservation": self.conservation,
            "verdict": self.verdict,
            "findings": self.findings,
            "digest_checks": self.digest_checks,
            "extras": self.extras,
        }


def build_snapshot(
    recorder: PipelineRecorder,
    audit: AuditReport | None = None,
    now_ms: float | None = None,
) -> PipelineSnapshot:
    """Fold recorder (and audit) state into one :class:`PipelineSnapshot`."""
    if now_ms is None:
        if recorder._clock is not None:
            now_ms = recorder._clock.now
        else:
            now_ms = max((event.at_ms for event in recorder.log), default=0.0)
    source_high = recorder.source_high_ms()
    snapshot = PipelineSnapshot(
        generated_at_ms=now_ms,
        sources=[
            watermark.to_dict()
            for _name, watermark in sorted(recorder.sources.items())
        ],
        tables=[
            table.to_dict() for _key, table in sorted(recorder.tables.items())
        ],
        views=[
            {**freshness.to_dict(), "staleness_ms": freshness.staleness_ms(source_high)}
            for _name, freshness in sorted(recorder.views.items())
        ],
        stage_lags={
            stage: samples.summary()
            for stage, samples in recorder.lags.items()
            if samples.count
        },
        events=dict(sorted(recorder.log.counts.items())),
        events_dropped=recorder.log.dropped,
        conservation=recorder.conservation(),
    )
    if audit is not None:
        snapshot.verdict = audit.verdict
        snapshot.findings = [finding.to_dict() for finding in audit.findings]
        snapshot.digest_checks = dict(audit.digest_checks)
        snapshot.conservation = dict(audit.conservation)
    return snapshot

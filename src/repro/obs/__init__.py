"""Unified observability: metrics and virtual-time tracing (``repro.obs``).

The paper's whole argument is a cost story — *where* the time and bytes go
is why timestamps, snapshots, triggers and log extraction lose to
Op-Delta.  This package makes those costs first-class:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and labelled histograms, with a no-op :data:`NULL_REGISTRY` so
  un-instrumented runs pay ~nothing;
* :mod:`repro.obs.tracing` — a :class:`Tracer` of hierarchical spans
  stamped in **virtual milliseconds**, exportable as Chrome-trace JSON;
* :mod:`repro.obs.context` — the ambient :func:`observe` context that
  ``repro-bench --metrics`` / ``--trace`` uses to thread one registry and
  tracer through an experiment without touching its signature.

Every recorded value derives from the :class:`~repro.clock.VirtualClock`
and deterministic counts — never the host clock — so metrics and traces
are bit-identical across runs.  Metric names follow
``<subsystem>.<object>.<event>`` (see ``docs/observability.md``).
"""

from .context import ObsContext, ambient_metrics, ambient_tracer, current, observe
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Instrument,
    LabelledRegistry,
    MetricsLike,
    MetricsRegistry,
    NullRegistry,
    qualify,
)
from .tracing import (
    NULL_TRACER,
    BoundTracer,
    NullTracer,
    Span,
    Tracer,
    TracerLike,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "BoundTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "LabelledRegistry",
    "MetricsLike",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "ObsContext",
    "Span",
    "Tracer",
    "TracerLike",
    "ambient_metrics",
    "ambient_tracer",
    "current",
    "observe",
    "qualify",
]

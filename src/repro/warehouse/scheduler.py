"""Online-maintenance availability experiment (paper §4.1).

"Op-Delta captures the original transaction context and hence can
interleave with OLAP queries without impacting the integrity of the query
result" — value-delta batches, by contrast, "need to be applied as an
indivisible batch", locking queries out for the whole maintenance window.

The experiment is a discrete-event simulation over one readers-writer lock
(the fact table): OLAP queries arrive on a fixed cadence and hold a shared
lock for their service time; the integrator holds the exclusive lock

* once, for the whole batch (``mode="batch"`` — value delta), or
* once per source transaction (``mode="interleaved"`` — Op-Delta).

Service times come from measured integrator/query virtual costs, so the
simulation's inputs are produced by the same engine the rest of the
reproduction uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import SimulationError
from ..obs.context import ambient_metrics
from ..obs.metrics import MetricsLike
from ..sim import Environment, LockMode, RWLock


@dataclass
class QueryRecord:
    """Timing of one simulated OLAP query."""

    arrived_at: float
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def wait_ms(self) -> float:
        return self.started_at - self.arrived_at

    @property
    def response_ms(self) -> float:
        return self.finished_at - self.arrived_at


@dataclass
class AvailabilityReport:
    """What the availability experiment measures for one mode."""

    mode: str
    maintenance_span_ms: float = 0.0
    maintenance_busy_ms: float = 0.0
    queries: list[QueryRecord] = field(default_factory=list)

    @property
    def queries_completed(self) -> int:
        return len(self.queries)

    @property
    def mean_response_ms(self) -> float:
        if not self.queries:
            return 0.0
        return sum(q.response_ms for q in self.queries) / len(self.queries)

    @property
    def max_wait_ms(self) -> float:
        return max((q.wait_ms for q in self.queries), default=0.0)

    @property
    def mean_wait_ms(self) -> float:
        if not self.queries:
            return 0.0
        return sum(q.wait_ms for q in self.queries) / len(self.queries)

    @property
    def availability(self) -> float:
        """Fraction of query latency that was useful work, not lock waiting.

        1.0 means no query ever waited on maintenance (a fully online
        warehouse); lower values mean the maintenance window was felt.
        """
        total_response = sum(q.response_ms for q in self.queries)
        if total_response == 0:
            return 1.0
        total_wait = sum(q.wait_ms for q in self.queries)
        return 1.0 - total_wait / total_response

    def fraction_within(self, sla_ms: float) -> float:
        """Fraction of queries answered within an SLA.

        The operational definition of "the warehouse is available": a
        query issued at any time comes back within ``sla_ms``.
        """
        if not self.queries:
            return 1.0
        met = sum(1 for q in self.queries if q.response_ms <= sla_ms)
        return met / len(self.queries)


def run_availability_experiment(
    maintenance_durations_ms: Sequence[float],
    query_duration_ms: float,
    query_interarrival_ms: float,
    mode: str,
    maintenance_start_ms: float = 0.0,
    horizon_ms: float | None = None,
    unit_gap_ms: float = 0.0,
    metrics: MetricsLike | None = None,
) -> AvailabilityReport:
    """Simulate maintenance against a concurrent OLAP query stream.

    Parameters
    ----------
    maintenance_durations_ms:
        Service time of each maintenance unit (one entry per source
        transaction for Op-Delta; the batch total can be passed as a
        single-element list, but ``mode`` controls lock scope regardless).
    query_duration_ms:
        Service time of one OLAP query (shared lock held this long).
    query_interarrival_ms:
        Fixed arrival cadence of queries.
    mode:
        ``"batch"`` — hold the exclusive lock across all units
        (value-delta semantics); ``"interleaved"`` — acquire and release
        per unit (Op-Delta semantics).
    horizon_ms:
        How long queries keep arriving; defaults to a span comfortably
        covering the maintenance work.
    unit_gap_ms:
        Pause between interleaved units — Op-Deltas arrive as source
        transactions commit, not back to back.  Ignored in batch mode
        (value deltas accumulate and apply in one window).
    metrics:
        Registry recording the maintenance window and the OLAP response
        histogram; defaults to the ambient registry when one is active.
    """
    if mode not in ("batch", "interleaved"):
        raise SimulationError(f"unknown mode {mode!r}; use 'batch' or 'interleaved'")
    if query_interarrival_ms <= 0:
        raise SimulationError("query_interarrival_ms must be positive")

    env = Environment()
    lock = RWLock(env, "fact_table")
    report = AvailabilityReport(mode=mode)
    total_maintenance = sum(maintenance_durations_ms)
    if horizon_ms is None:
        horizon_ms = maintenance_start_ms + total_maintenance * 1.5 + 10 * (
            query_duration_ms + query_interarrival_ms
        )

    def maintenance() -> object:
        yield env.timeout(maintenance_start_ms)
        span_started = env.now
        if mode == "batch":
            yield lock.acquire(LockMode.EXCLUSIVE)
            for duration in maintenance_durations_ms:
                yield env.timeout(duration)
            lock.release(LockMode.EXCLUSIVE)
        else:
            for position, duration in enumerate(maintenance_durations_ms):
                if position and unit_gap_ms:
                    yield env.timeout(unit_gap_ms)
                yield lock.acquire(LockMode.EXCLUSIVE)
                yield env.timeout(duration)
                lock.release(LockMode.EXCLUSIVE)
        report.maintenance_span_ms = env.now - span_started
        report.maintenance_busy_ms = total_maintenance

    def one_query(record: QueryRecord) -> object:
        yield lock.acquire(LockMode.SHARED)
        record.started_at = env.now
        yield env.timeout(query_duration_ms)
        lock.release(LockMode.SHARED)
        record.finished_at = env.now

    def query_source() -> object:
        arrival = 0.0
        while arrival <= horizon_ms:
            yield env.timeout(max(0.0, arrival - env.now))
            record = QueryRecord(arrived_at=env.now)
            report.queries.append(record)
            env.process(one_query(record), name=f"query@{env.now:.0f}")
            arrival += query_interarrival_ms

    env.process(maintenance(), name="maintenance")
    env.process(query_source(), name="query-source")
    env.run()
    if metrics is None:
        metrics = ambient_metrics()
    if metrics is not None:
        metrics.gauge(
            "warehouse.maintenance.window_ms", mode=mode
        ).set(report.maintenance_span_ms)
        latency = metrics.histogram("warehouse.olap.response_ms", mode=mode)
        for query in report.queries:
            latency.observe(query.response_ms)
    return report


@dataclass
class ScheduleReport:
    """Outcome of applying conflict-graph components on worker lanes."""

    workers: int
    components: int
    transactions: int
    serial_ms: float = 0.0
    parallel_ms: float = 0.0
    #: Operations (replayed statements) covered by the schedule, when the
    #: caller supplies per-component op counts — 0 otherwise.
    ops: int = 0
    #: Busy time of each worker lane, for load-balance inspection.
    worker_busy_ms: list[float] = field(default_factory=list)
    #: Virtual completion time of each component, in finish order — the
    #: pipeline-health view of how apply work drains across the lanes.
    component_finish_ms: list[float] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Virtual-time speedup of the conflict-aware schedule over serial."""
        if self.parallel_ms == 0:
            return 1.0
        return self.serial_ms / self.parallel_ms

    @property
    def serial_ops_per_s(self) -> float:
        """Apply throughput of the serial baseline, in ops per virtual second."""
        if self.serial_ms == 0 or not self.ops:
            return 0.0
        return self.ops / (self.serial_ms / 1000.0)

    @property
    def parallel_ops_per_s(self) -> float:
        """Apply throughput across the worker lanes, in ops per virtual second."""
        if self.parallel_ms == 0 or not self.ops:
            return 0.0
        return self.ops / (self.parallel_ms / 1000.0)


def run_batched_schedule(
    component_apply_ms: Sequence[float],
    workers: int = 4,
    metrics: MetricsLike | None = None,
    ops: int = 0,
) -> ScheduleReport:
    """Replay batched group-commit apply times on parallel worker lanes.

    ``component_apply_ms`` is :attr:`IntegrationReport.per_component_ms`
    from :meth:`~repro.warehouse.OpDeltaIntegrator.integrate_batched`: the
    whole conflict component is one warehouse transaction, so each entry is
    an indivisible unit of lane work (a one-transaction component as far as
    the schedule is concerned).

    ``ops`` — the window's replayed statement count (typically
    ``IntegrationReport.statements_issued``) — turns the report's
    ``serial_ops_per_s`` / ``parallel_ops_per_s`` throughput properties
    on; the columnar experiment uses them to compare row-at-a-time and
    columnar apply at equal schedule shapes.
    """
    report = run_conflict_schedule(
        [[ms] for ms in component_apply_ms], workers=workers, metrics=metrics
    )
    report.ops = ops
    if ops:
        registry = metrics if metrics is not None else ambient_metrics()
        if registry is not None:
            registry.gauge("warehouse.schedule.ops_per_s").set(
                report.parallel_ops_per_s
            )
    return report


def run_conflict_schedule(
    component_durations_ms: Sequence[Sequence[float]],
    workers: int = 4,
    metrics: MetricsLike | None = None,
) -> ScheduleReport:
    """Simulate conflict-aware parallel delta application.

    ``component_durations_ms`` holds one inner sequence per conflict-graph
    component: the per-transaction apply times of that component, in
    capture order.  Transactions inside a component conflict, so each
    component is applied serially on whichever worker lane picks it up;
    components are mutually independent, so up to ``workers`` of them run
    concurrently.  The serial baseline is the sum of every duration — what
    a conflict-oblivious integrator would take.
    """
    if workers < 1:
        raise SimulationError(f"need at least one worker lane, got {workers}")
    report = ScheduleReport(
        workers=workers,
        components=len(component_durations_ms),
        transactions=sum(len(c) for c in component_durations_ms),
        serial_ms=sum(sum(c) for c in component_durations_ms),
    )
    if not report.transactions:
        return report

    env = Environment()
    # Largest component first: classic LPT list scheduling keeps the lanes
    # balanced without needing preemption.
    queue = sorted(
        (list(c) for c in component_durations_ms if c),
        key=sum,
        reverse=True,
    )
    busy = [0.0] * workers

    def worker(lane: int):
        while queue:
            component = queue.pop(0)
            for duration in component:
                yield env.timeout(duration)
                busy[lane] += duration
            report.component_finish_ms.append(env.now)

    for lane in range(workers):
        env.process(worker(lane), name=f"apply-lane-{lane}")
    env.run()
    report.parallel_ms = env.now
    report.worker_busy_ms = busy
    if metrics is None:
        metrics = ambient_metrics()
    if metrics is not None:
        metrics.gauge("warehouse.schedule.serial_ms").set(report.serial_ms)
        metrics.gauge("warehouse.schedule.parallel_ms").set(report.parallel_ms)
        metrics.gauge("warehouse.schedule.speedup").set(report.speedup)
        drain = metrics.histogram("warehouse.schedule.component_finish_ms")
        for finish in report.component_finish_ms:
            drain.observe(finish)
    return report

"""The warehouse: a database instance with mirrors and materialized views.

Convenience facade tying the warehouse pieces together: mirror tables of
source tables (targets for both integrators), materialized SPJ views, and
the initial-load path ("Your Warehouse is Empty", the paper's companion
report [29]) via the ASCII loader.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..clock import VirtualClock
from ..core.selfmaint import ViewDefinition
from ..engine.buffer import DEFAULT_POOL_PAGES
from ..engine.costs import DEFAULT_COST_MODEL, CostModel
from ..engine.database import Database
from ..engine.schema import TableSchema
from ..engine.session import Session
from ..engine.table import InsertMode
from ..engine.utilities import AsciiFile, ascii_load
from ..errors import WarehouseError
from .views import MaterializedView


class Warehouse:
    """A warehouse database plus its mirrors and views."""

    def __init__(
        self,
        name: str = "warehouse",
        clock: VirtualClock | None = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        buffer_pages: int = DEFAULT_POOL_PAGES,
        product: str = "ReproDB",
        product_version: str = "1.0",
    ) -> None:
        self.database = Database(
            name, clock=clock, costs=costs, buffer_pages=buffer_pages,
            product=product, product_version=product_version,
        )
        self._views: dict[str, MaterializedView] = {}
        self._mirrors: dict[str, str] = {}

    @property
    def clock(self) -> VirtualClock:
        return self.database.clock

    def connect(self) -> Session:
        return self.database.connect()

    # ----------------------------------------------------------------- mirrors
    def create_mirror(
        self, source_schema: TableSchema, mirror_name: str | None = None
    ) -> str:
        """Create an empty mirror of a source table."""
        name = mirror_name if mirror_name is not None else source_schema.name
        self.database.create_table(source_schema.renamed(name))
        self._mirrors[source_schema.name] = name
        return name

    def mirror_of(self, source_table: str) -> str:
        try:
            return self._mirrors[source_table]
        except KeyError:
            raise WarehouseError(
                f"no mirror registered for source table {source_table!r}"
            ) from None

    @property
    def mirror_map(self) -> dict[str, str]:
        return dict(self._mirrors)

    def initial_load(self, mirror_name: str, dump: AsciiFile) -> int:
        """Load a mirror from a full ASCII extract with the Loader utility."""
        return ascii_load(self.database, mirror_name, dump)

    def initial_load_rows(self, mirror_name: str, rows: Iterable[Sequence]) -> int:
        """Load a mirror directly from row tuples (internal bulk path)."""
        table = self.database.table(mirror_name)
        txn = self.database.begin()
        count = 0
        for row in rows:
            table.insert(txn, row, mode=InsertMode.BULK_INTERNAL)
            count += 1
        self.database.commit(txn)
        return count

    def staging_refresh(self, source_table: str, rows: Iterable[Sequence]) -> int:
        """Bulk-reload a mirror (and its views) from a staged full extract.

        The adaptive extraction switcher
        (:class:`~repro.extraction.switcher.AdaptiveExtractionSwitcher`)
        routes a table here when replaying its op-delta backlog would cost
        more than reloading its state: truncate (minimal logging, like the
        real utility), refill through the fully internal bulk path, then
        re-derive every view over the table from the staged rows — all in
        one warehouse transaction, so OLAP queries never see a half-loaded
        mirror.  Returns the number of rows loaded.
        """
        mirror = self._mirrors.get(source_table, source_table)
        table = self.database.table(mirror)
        table.truncate()
        staged = [tuple(row) for row in rows]
        txn = self.database.begin()
        for row in staged:
            table.insert(txn, row, mode=InsertMode.BULK_INTERNAL)
        for view in self._views.values():
            if view.definition.base_table == source_table:
                view.table.truncate()
                view.initialize(staged, txn)
        self.database.commit(txn)
        return len(staged)

    # ------------------------------------------------------------------- views
    def define_view(
        self, definition: ViewDefinition, base_schema: TableSchema
    ) -> MaterializedView:
        if definition.name in self._views:
            raise WarehouseError(f"view {definition.name!r} already defined")
        view = MaterializedView(self.database, definition, base_schema)
        self._views[definition.name] = view
        return view

    def view(self, name: str) -> MaterializedView:
        try:
            return self._views[name]
        except KeyError:
            raise WarehouseError(f"no view named {name!r}") from None

    @property
    def views(self) -> list[MaterializedView]:
        return list(self._views.values())

"""Value-delta integration: the classic, outage-inducing path (§4.1).

"Since the transaction context of value delta is lost, each original
transaction will be captured by one or more value delta records and each of
which will be translated into a single SQL statement ... value delta
methods ... need to be applied as an indivisible batch."

Concretely, for a batch of value deltas this integrator issues:

* one INSERT statement per insert record,
* one DELETE statement (by key, from the before image) per delete record,
* one DELETE **plus** one INSERT per update record,

all inside a single warehouse transaction.  The per-statement overhead times
2x statements for updates is exactly why the paper's maintenance window is
31.8% / 69.7% longer than Op-Delta's for deletes / updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..engine.session import Session
from ..errors import WarehouseError
from ..extraction.deltas import ChangeKind, DeltaBatch
from ..obs.pipeline.context import ambient_pipeline
from ..sql import ast_nodes as ast
from .aggregates import MaterializedAggregateView
from .views import MaterializedView


@dataclass
class IntegrationReport:
    """Outcome of one integration run."""

    mode: str
    statements_issued: int = 0
    rows_affected: int = 0
    elapsed_ms: float = 0.0
    transactions: int = 0
    per_transaction_ms: list[float] = field(default_factory=list)
    #: Statements dropped by view-relevance pruning (op-delta mode only).
    statements_pruned: int = 0
    #: Time-dependent statements replayed with their capture timestamp
    #: substituted for ``NOW()`` (op-delta mode only).
    statements_pinned: int = 0
    #: Volatile statements replayed from their captured before image
    #: instead of by re-execution (op-delta mode only).
    fallback_images_applied: int = 0
    #: View maintenance steps resolved by a static planner rule instead of
    #: per-statement classification (op-delta mode with a plan catalog).
    plan_rules_applied: int = 0
    #: Conflict components applied as single warehouse transactions
    #: (op-delta batched mode only; 0 for per-transaction application).
    components: int = 0
    #: Virtual apply time of each conflict component, in schedule order
    #: (op-delta batched mode only) — these feed the parallel-lane replay.
    per_component_ms: list[float] = field(default_factory=list)
    #: Delta-rule resolutions requested / served from the per-window memo
    #: (op-delta batched mode only): hits are lookups that skipped the
    #: plan-catalog walk because the same (table, kind, view) was already
    #: resolved in this window.
    rule_lookups: int = 0
    rule_cache_hits: int = 0
    #: Schedule-certification verdict stamped by the pre-flight check
    #: (``CERTIFIED``/``REJECTED``; empty when no certifier ran).  The
    #: value-delta path stamps ``CERTIFIED`` trivially: one indivisible
    #: batch per warehouse transaction is already a serial schedule.
    certificate_verdict: str = ""
    #: Rendered ``RACE*`` findings from a rejected certification, kept on
    #: the report for post-mortem inspection (rejection also raises).
    race_findings: list[str] = field(default_factory=list)
    #: Delta-rule verification stamps (view name -> "hash12:VERDICT")
    #: copied from the op-delta integrator's plan pre-flight; empty when
    #: no plans were supplied or verification was opted out.
    plan_certificates: dict[str, str] = field(default_factory=dict)
    #: The plan-certificate hash the batched rule memo was keyed on, and
    #: how many (table, kind, view) resolutions that memo already held
    #: at window start (>0 means a repeated window reused prior work).
    rule_memo_key: str = ""
    rule_memo_preloaded: int = 0
    #: Columnar-mode accounting (op-delta columnar mode only): statements
    #: dispatched as compiled batch programs, rows they touched, kernel
    #: compilations vs cache hits, and row-path fallback barriers.
    columnar_statements: int = 0
    columnar_rows: int = 0
    kernel_compiles: int = 0
    kernel_cache_hits: int = 0
    columnar_fallbacks: int = 0

    @property
    def mean_transaction_ms(self) -> float:
        if not self.per_transaction_ms:
            return 0.0
        return sum(self.per_transaction_ms) / len(self.per_transaction_ms)


class ValueDeltaIntegrator:
    """Applies value-delta batches to warehouse mirror tables."""

    def __init__(
        self,
        session: Session,
        table_map: dict[str, str] | None = None,
        views: Sequence[MaterializedView] = (),
        aggregate_views: Sequence[MaterializedAggregateView] = (),
    ) -> None:
        self._session = session
        self._table_map = table_map if table_map is not None else {}
        self._views = list(views)
        self._aggregate_views = list(aggregate_views)

    def target_table(self, source_table: str) -> str:
        return self._table_map.get(source_table, source_table)

    def integrate(self, batch: DeltaBatch) -> IntegrationReport:
        """Apply one batch as an indivisible warehouse transaction.

        The batch is a single serial warehouse transaction, so its
        schedule is trivially serializable — the report carries a
        ``CERTIFIED`` verdict without invoking the certifier.
        """
        report = IntegrationReport(mode="value-delta")
        report.certificate_verdict = "CERTIFIED"
        clock = self._session.database.clock
        started = clock.now
        key_column = batch.schema.primary_key
        if key_column is None:
            raise WarehouseError(
                f"value-delta integration of {batch.table!r} needs a primary "
                "key to address warehouse rows"
            )
        key_index = batch.schema.primary_key_index()
        target = self.target_table(batch.table)

        self._session.begin()
        txn = self._session.current_transaction
        assert txn is not None
        try:
            with self._session.database.tracer.span(
                "warehouse.apply.value_batch", table=batch.table
            ):
                for statement in self._batch_statements(
                    batch, target, key_column, key_index
                ):
                    result = self._session.execute_statement(statement)
                    report.statements_issued += 1
                    report.rows_affected += result.rows_affected
            for view in self._views:
                if view.definition.base_table == batch.table:
                    view.apply_value_delta(batch.records, txn)
            for agg in self._aggregate_views:
                if agg.definition.base_table == batch.table:
                    agg.apply_value_delta(batch.records, txn)
        except Exception as exc:
            if self._session.in_transaction:
                self._session.rollback()
            raise WarehouseError(
                f"value-delta integration of {batch.table!r} failed: {exc}"
            ) from exc
        self._session.commit()
        report.transactions = 1
        report.elapsed_ms = clock.now - started
        report.per_transaction_ms.append(report.elapsed_ms)
        recorder = ambient_pipeline()
        if recorder is not None:
            # Value deltas lose per-op lineage (the paper's point), but the
            # batch apply is still a freshness-relevant pipeline event.
            recorder.record_value_batch(
                batch.table, len(batch.records), at_ms=clock.now
            )
        return report

    def integrate_many(self, batches: Iterable[DeltaBatch]) -> IntegrationReport:
        total = IntegrationReport(mode="value-delta")
        total.certificate_verdict = "CERTIFIED"
        clock = self._session.database.clock
        started = clock.now
        for batch in batches:
            report = self.integrate(batch)
            total.statements_issued += report.statements_issued
            total.rows_affected += report.rows_affected
            total.transactions += report.transactions
            total.per_transaction_ms.extend(report.per_transaction_ms)
        total.elapsed_ms = clock.now - started
        return total

    # --------------------------------------------------------------- internals
    def _batch_statements(
        self, batch: DeltaBatch, target: str, key_column: str, key_index: int
    ):
        """Statements for a whole batch.

        Runs of consecutive INSERT records collapse into one array-insert
        statement — "each original insert transaction will be captured as
        one value delta record which will be translated into one insert SQL
        statement", which is why insert maintenance costs the same under
        both delta representations.  Updates and deletes stay one (or two)
        statements *per record*: their transaction context is lost.
        """
        pending_inserts: list[tuple[Any, ...]] = []

        def flush():
            if pending_inserts:
                rows = tuple(
                    tuple(ast.Literal(v) for v in row) for row in pending_inserts
                )
                pending_inserts.clear()
                yield ast.InsertStmt(target, None, rows=rows)

        for record in batch.records:
            if record.kind is ChangeKind.INSERT:
                assert record.after is not None
                pending_inserts.append(record.after)
                continue
            yield from flush()
            yield from self._statements_for(record, target, key_column, key_index)
        yield from flush()

    def _statements_for(
        self, record, target: str, key_column: str, key_index: int
    ) -> list[ast.Statement]:
        def key_predicate(row: tuple[Any, ...]) -> ast.Expression:
            return ast.BinaryOp(
                "=", ast.ColumnRef(key_column), ast.Literal(row[key_index])
            )

        def insert_stmt(row: tuple[Any, ...]) -> ast.InsertStmt:
            literals = tuple(ast.Literal(v) for v in row)
            return ast.InsertStmt(target, None, rows=(literals,))

        if record.kind is ChangeKind.INSERT:
            assert record.after is not None
            return [insert_stmt(record.after)]
        if record.kind is ChangeKind.DELETE:
            assert record.before is not None
            return [ast.DeleteStmt(target, key_predicate(record.before))]
        if record.kind is ChangeKind.UPDATE:
            assert record.before is not None and record.after is not None
            return [
                ast.DeleteStmt(target, key_predicate(record.before)),
                insert_stmt(record.after),
            ]
        # UPSERT (timestamp extraction): provenance unknown — delete any
        # existing image, then insert the final state.
        assert record.after is not None
        return [
            ast.DeleteStmt(target, key_predicate(record.after)),
            insert_stmt(record.after),
        ]

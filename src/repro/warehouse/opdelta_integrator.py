"""Op-Delta integration: per-source-transaction, online (§4.1).

Each committed source transaction's operations are transformed and replayed
as one self-contained warehouse transaction; materialized views are
maintained inside the same transaction.  Because every group is short and
self-contained, the integrator can interleave with OLAP queries — the
availability experiment (:mod:`repro.warehouse.scheduler`) exploits the
per-transaction timings this integrator reports.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.apply import OpDeltaApplier
from ..core.opdelta import OpDeltaTransaction
from ..core.transform import StatementTransformer
from ..engine.session import Session
from ..errors import WarehouseError
from .value_integrator import IntegrationReport
from .views import MaterializedView


class OpDeltaIntegrator:
    """Replays Op-Delta transaction groups onto mirrors and views."""

    def __init__(
        self,
        session: Session,
        transformer: StatementTransformer | None = None,
        views: Sequence[MaterializedView] = (),
        maintain_mirrors: bool = True,
    ) -> None:
        self._session = session
        self._applier = OpDeltaApplier(session, transformer)
        self._views = list(views)
        self._maintain_mirrors = maintain_mirrors
        self._transformer = (
            transformer if transformer is not None else StatementTransformer()
        )

    def integrate(self, groups: Iterable[OpDeltaTransaction]) -> IntegrationReport:
        """Apply each source transaction as its own warehouse transaction."""
        report = IntegrationReport(mode="op-delta")
        clock = self._session.database.clock
        started = clock.now
        for group in groups:
            group_started = clock.now
            self._apply_group(group, report)
            report.transactions += 1
            report.per_transaction_ms.append(clock.now - group_started)
        report.elapsed_ms = clock.now - started
        return report

    def _apply_group(self, group: OpDeltaTransaction, report: IntegrationReport) -> None:
        self._session.begin()
        txn = self._session.current_transaction
        assert txn is not None
        try:
            for op in group.operations:
                if self._maintain_mirrors:
                    statement = self._transformer.transform(op.statement)
                    result = self._session.execute_statement(statement)
                    report.statements_issued += 1
                    report.rows_affected += result.rows_affected
                for view in self._views:
                    view.apply_operation(op, txn)
        except Exception as exc:
            if self._session.in_transaction:
                self._session.rollback()
            raise WarehouseError(
                f"op-delta integration of source transaction {group.txn_id} "
                f"failed: {exc}"
            ) from exc
        self._session.commit()

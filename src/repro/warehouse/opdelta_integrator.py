"""Op-Delta integration: per-source-transaction, online (§4.1).

Each committed source transaction's operations are transformed and replayed
as one self-contained warehouse transaction; materialized views are
maintained inside the same transaction.  Because every group is short and
self-contained, the integrator can interleave with OLAP queries — the
availability experiment (:mod:`repro.warehouse.scheduler`) exploits the
per-transaction timings this integrator reports.

When an :class:`~repro.analysis.OpDeltaAnalyzer` is supplied (or the
capture pipeline already attached analysis records to the operations), the
integrator additionally:

* **skips** statements the analyzer pruned as irrelevant to every view and
  mirror;
* **pins** time-dependent statements — ``NOW()`` is rewritten to the
  capture timestamp so the replay is faithful to the source execution;
* **falls back** to the captured before image for volatile statements that
  cannot be replayed (a volatile DELETE is re-expressed as a
  delete-by-key of the imaged rows; a volatile UPDATE/INSERT without a
  recoverable after state is rejected with a pointer at hybrid capture).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Mapping, Sequence

from ..analysis.analyzer import AnalysisRecord, OpDeltaAnalyzer, pin_time_functions
from ..analysis.certify import (
    InterferenceSanitizer,
    LaneSchedule,
    ScheduleCertifier,
    lpt_schedule,
    single_lane_schedule,
)
from ..analysis.conflict import ConflictGraph
from ..analysis.safety import Determinism
from ..columnar import ColumnarApplier
from ..core.apply import OpDeltaApplier
from ..core.opdelta import OpDelta, OpDeltaTransaction, OpKind
from ..core.transform import StatementTransformer
from ..engine.session import Session
from ..errors import WarehouseError
from ..obs.context import ambient_metrics
from ..obs.pipeline.context import ambient_pipeline
from ..semantics.planner import (
    DeltaRule,
    MaintenancePlan,
    RuleAction,
    plan_set_fingerprint,
)
from ..sql import ast_nodes as ast
from .aggregates import MaterializedAggregateView
from .value_integrator import IntegrationReport
from .views import MaterializedView

#: Resolves the delta rule for (view name, operation) — either the plain
#: plan-catalog walk or the batched mode's per-window memo around it.
RuleLookup = Callable[[str, OpDelta], "DeltaRule | None"]


class OpDeltaIntegrator:
    """Replays Op-Delta transaction groups onto mirrors and views.

    With ``plans`` (a :class:`~repro.semantics.planner.MaintenancePlan`
    catalog, keyed by view name) the integrator executes the statically
    compiled delta rule for each operation instead of re-classifying every
    statement; plans that declare a view not self-maintainable are rejected
    at construction — attach such views to a source-query refresh path
    instead of this integrator.

    Supplied plans are additionally put through the delta-rule verifier
    (:class:`~repro.analysis.verify.DeltaRuleVerifier`) as a pre-flight:
    a plan whose certificate comes back ``REFUTED`` raises
    :class:`~repro.errors.WarehouseError` with the counterexample, so an
    unsound rule can never silently corrupt a view.  Certificates are
    cached process-wide by (view SQL hash, schema fingerprint) — the
    proof is pay-once — and stamped onto every
    :class:`~repro.warehouse.value_integrator.IntegrationReport` this
    integrator produces.  ``verify=False`` opts out (fixture replay,
    deliberately broken plans under test); ``verifier=`` supplies a
    configured verifier (scope bounds, a private cache, a metered clock).
    """

    def __init__(
        self,
        session: Session,
        transformer: StatementTransformer | None = None,
        views: Sequence[MaterializedView] = (),
        maintain_mirrors: bool = True,
        analyzer: OpDeltaAnalyzer | None = None,
        aggregate_views: Sequence[MaterializedAggregateView] = (),
        plans: Mapping[str, MaintenancePlan] | None = None,
        sanitizer: InterferenceSanitizer | None = None,
        verifier: object | None = None,
        verify: bool = True,
    ) -> None:
        self._session = session
        self._sanitizer = sanitizer
        self._applier = OpDeltaApplier(session, transformer)
        self._views = list(views)
        self._aggregate_views = list(aggregate_views)
        self._maintain_mirrors = maintain_mirrors
        self._transformer = (
            transformer if transformer is not None else StatementTransformer()
        )
        self._analyzer = analyzer
        self._plans = dict(plans) if plans is not None else {}
        #: base table -> names of the views an op on it maintains (lineage).
        self._views_by_table: dict[str, tuple[str, ...]] = {}
        for view in [*self._views, *self._aggregate_views]:
            base = view.definition.base_table
            self._views_by_table[base] = self._views_by_table.get(base, ()) + (
                view.definition.name,
            )
        for view in [*self._views, *self._aggregate_views]:
            plan = self._plans.get(view.definition.name)
            if plan is None:
                continue
            if not plan.valid:
                raise WarehouseError(
                    f"view {view.definition.name!r} has an invalid maintenance "
                    "plan: "
                    + "; ".join(d.render() for d in plan.diagnostics)
                )
            if not plan.self_maintainable:
                raise WarehouseError(
                    f"view {view.definition.name!r} is planned "
                    f"{plan.classification.value}; it cannot be maintained by "
                    "the op-delta integrator"
                )
        #: view name -> certificate stamp, copied onto every report.
        self._plan_certificates: dict[str, str] = {}
        if verify and self._plans:
            self._verify_plans(verifier)
        #: Plan-certificate hash: partitions the persistent rule memo and
        #: the columnar kernel cache, so repeated windows over the same
        #: certified plan set reuse resolutions and compiled closures.
        self._plan_fingerprint = plan_set_fingerprint(
            self._plans, self._plan_certificates
        )
        #: fingerprint -> (table, kind, view) -> rule, surviving across
        #: integrate_batched calls (one window used to rebuild this).
        self._rule_memos: dict[
            str, dict[tuple[str, OpKind, str], DeltaRule | None]
        ] = {}
        self._columnar: ColumnarApplier | None = None

    def _columnar_applier(self) -> ColumnarApplier:
        """The lazily-built, window-surviving columnar apply engine."""
        if self._columnar is None:
            self._columnar = ColumnarApplier(
                self._session, plan_fingerprint=self._plan_fingerprint
            )
        return self._columnar

    def _verify_plans(self, verifier: object | None) -> None:
        """Pre-flight: demand a VERIFIED certificate for every plan used.

        Imported lazily — the verifier constructs the warehouse view
        classes, which this module defines the integrator around.
        """
        from ..analysis.verify import DeltaRuleVerifier

        if verifier is None:
            verifier = DeltaRuleVerifier()
        assert isinstance(verifier, DeltaRuleVerifier)
        database = self._session.database
        for view in [*self._views, *self._aggregate_views]:
            plan = self._plans.get(view.definition.name)
            if plan is None:
                continue
            definition = view.definition
            dim_schema = None
            join = getattr(definition, "join", None)
            if join is not None and join.columns and database.has_table(join.table):
                dim_schema = database.table(join.table).schema
            certificate = verifier.certify_plan(
                plan, definition, view.base_schema, dim_schema=dim_schema
            )
            self._plan_certificates[definition.name] = certificate.stamp
            if not certificate.verified:
                raise WarehouseError(
                    f"maintenance plan for view {definition.name!r} was "
                    "refuted by the delta-rule verifier; refusing to drive "
                    "the view with an unsound rule:\n" + certificate.render()
                )

    def integrate(
        self,
        groups: Iterable[OpDeltaTransaction],
        *,
        certify: bool = True,
    ) -> IntegrationReport:
        """Apply each source transaction as its own warehouse transaction.

        When an analyzer is attached, the apply order is first certified
        as a single-lane schedule: the pre-flight proves the given order
        preserves source order for every conflicting pair (out-of-order
        windows are rejected before any statement runs).  ``certify=False``
        opts out — the check is pure computation and costs no virtual
        time, but callers replaying deliberately non-serial fixtures can
        disable it.
        """
        groups = list(groups)
        report = IntegrationReport(mode="op-delta")
        report.plan_certificates = dict(self._plan_certificates)
        clock = self._session.database.clock
        started = clock.now
        if certify and self._analyzer is not None and groups:
            graph = self._analyzer.conflict_graph(groups)
            self._certify_schedule(
                groups, graph, single_lane_schedule(groups), report
            )
        for group in groups:
            group_started = clock.now
            self._apply_group(group, report)
            report.transactions += 1
            report.per_transaction_ms.append(clock.now - group_started)
        report.elapsed_ms = clock.now - started
        return report

    def integrate_batched(
        self,
        groups: Iterable[OpDeltaTransaction],
        graph: ConflictGraph | None = None,
        report: IntegrationReport | None = None,
        *,
        lanes: int | None = None,
        schedule: LaneSchedule | None = None,
        certify: bool = True,
        columnar: bool = False,
    ) -> IntegrationReport:
        """Group-commit apply: one warehouse transaction per conflict component.

        The per-source-transaction mode of :meth:`integrate` buys maximum
        interleaving with OLAP queries at the price of one warehouse
        begin/commit — and one plan/rule resolution per view — *per
        captured transaction*.  For a compacted shippable window
        (:mod:`repro.compaction`) that overhead dominates, so this mode:

        * merges each conflict-graph component into **one** warehouse
          transaction (capture order inside the component is kept, and
          components are mutually independent, so warehouse state is
          identical to the per-transaction replay — boundaries are merged,
          never reordered);
        * memoizes rule resolution per ``(table, kind, view)`` in a memo
          keyed on the plan-certificate hash that **survives across
          windows** — a repeated window over the same certified plan set
          starts with every resolution already cached
          (``report.rule_lookups`` / ``rule_cache_hits`` /
          ``rule_memo_preloaded``);
        * reports per-component apply times (``report.per_component_ms``)
          that :func:`repro.warehouse.scheduler.run_batched_schedule`
          replays on parallel worker lanes.

        ``graph`` defaults to the attached analyzer's conflict graph over
        ``groups``.

        **Certification pre-flight.**  When an analyzer is attached and
        ``certify`` is true (the default), the proposed apply order is
        statically proven serializable by the
        :class:`~repro.analysis.certify.ScheduleCertifier` before any
        statement runs; a ``REJECTED`` certificate raises
        :class:`~repro.errors.WarehouseError` with the positioned
        ``RACE*`` findings.  ``schedule`` is the lane assignment to
        certify (e.g. from :func:`~repro.analysis.certify.lpt_schedule`);
        with ``lanes`` set one is derived by LPT packing, and with
        neither the actual serial component order is certified.  When a
        :class:`~repro.analysis.certify.InterferenceSanitizer` was passed
        at construction, every settled op is additionally observed on its
        schedule lane (timestamped with its own ``captured_at`` — no
        clock reads, zero virtual-time overhead) so the runtime verdict
        cross-checks the static one.

        **Columnar mode.**  With ``columnar=True`` each component commits
        from :class:`~repro.columnar.apply.ColumnarApplier` batch buffers:
        one image scan per touched table per component, compiled kernels
        instead of per-row interpretation, and the engine's batch DML
        (columnar CPU factor, group WAL appends).  The certifier,
        sanitizer and auditor contracts are unchanged — the pre-flight
        runs before any statement, settled ops are observed and recorded
        identically, and the final state is bit-for-bit the row path's.
        """
        groups = list(groups)
        if report is None:
            report = IntegrationReport(
                mode="op-delta-columnar" if columnar else "op-delta-batched"
            )
        report.plan_certificates = dict(self._plan_certificates)
        clock = self._session.database.clock
        started = clock.now
        if not groups:
            return report
        if graph is None:
            if self._analyzer is None:
                raise WarehouseError(
                    "integrate_batched needs a conflict graph, or an "
                    "analyzer to build one"
                )
            graph = self._analyzer.conflict_graph(groups)
        by_id = {group.txn_id: group for group in groups}
        covered = {txn_id for c in graph.components for txn_id in c}
        missing = sorted(set(by_id) - covered)
        if missing:
            raise WarehouseError(
                f"conflict graph does not cover transactions {missing}; "
                "build it over the same window being applied"
            )
        if schedule is None:
            if lanes is not None:
                schedule = lpt_schedule(groups, graph, lanes=lanes)
            else:
                # The batched integrator itself applies components
                # serially in graph order; certify that actual order.
                schedule = LaneSchedule(
                    lanes=(
                        tuple(
                            txn_id
                            for component in graph.components
                            for txn_id in component
                        ),
                    )
                )
        if certify and self._analyzer is not None:
            self._certify_schedule(groups, graph, schedule, report)

        memo = self._rule_memos.setdefault(self._plan_fingerprint, {})
        report.rule_memo_key = self._plan_fingerprint
        report.rule_memo_preloaded = len(memo)

        def memoized_rule(view_name: str, op: OpDelta) -> DeltaRule | None:
            report.rule_lookups += 1
            key = (op.table, op.kind, view_name)
            if key in memo:
                report.rule_cache_hits += 1
                return memo[key]
            rule = self._rule_for(view_name, op)
            memo[key] = rule
            return rule

        applier = self._columnar_applier() if columnar else None
        if applier is not None:
            base_statements = applier.statements
            base_rows = applier.rows_batched
            base_fallbacks = applier.fallbacks
            base_compiles = applier.kernels.compiles
            base_hits = applier.kernels.hits

        for component in graph.components:
            members = [by_id[txn_id] for txn_id in component if txn_id in by_id]
            if not members:
                continue
            component_started = clock.now
            if applier is not None:
                applier.begin_component()
            self._session.begin()
            txn = self._session.current_transaction
            assert txn is not None
            applied: list[tuple[OpDeltaTransaction, list[OpDelta]]] = []
            try:
                for group in members:
                    settled: list[OpDelta] = []
                    for op in group.operations:
                        self._apply_op(
                            op, txn, report, memoized_rule, settled,
                            applier=applier,
                        )
                    applied.append((group, settled))
            except Exception as exc:
                if self._session.in_transaction:
                    self._session.rollback()
                raise WarehouseError(
                    "batched op-delta integration of component "
                    f"{tuple(component)} failed: {exc}"
                ) from exc
            self._session.commit()
            for group, settled in applied:
                self._record_applied(settled, group)
                if self._sanitizer is not None:
                    lane = schedule.lane_of(group.txn_id)
                    for op in settled:
                        self._sanitizer.observe(
                            lane if lane is not None else 0,
                            op,
                            at_ms=op.captured_at,
                        )
            report.transactions += len(members)
            report.components += 1
            report.per_component_ms.append(clock.now - component_started)
        report.elapsed_ms = clock.now - started
        if applier is not None:
            report.columnar_statements = applier.statements - base_statements
            report.columnar_rows = applier.rows_batched - base_rows
            report.columnar_fallbacks = applier.fallbacks - base_fallbacks
            report.kernel_compiles = applier.kernels.compiles - base_compiles
            report.kernel_cache_hits = applier.kernels.hits - base_hits
        metrics = ambient_metrics()
        if metrics is not None:
            metrics.counter("warehouse.batched.components").inc(report.components)
            metrics.counter("warehouse.batched.rule_lookups").inc(report.rule_lookups)
            metrics.counter("warehouse.batched.rule_cache_hits").inc(
                report.rule_cache_hits
            )
        return report

    def _certify_schedule(
        self,
        groups: Sequence[OpDeltaTransaction],
        graph: ConflictGraph,
        schedule: LaneSchedule,
        report: IntegrationReport,
    ) -> None:
        """Mandatory pre-flight: refuse to run an uncertified schedule."""
        certifier = ScheduleCertifier.for_analyzer(self._analyzer)
        certificate = certifier.certify(groups, graph, schedule)
        report.certificate_verdict = certificate.verdict
        report.race_findings = [f.render() for f in certificate.findings]
        if not certificate.certified:
            raise WarehouseError(
                "schedule certification rejected the proposed apply order "
                f"({len(certificate.findings)} finding(s)): "
                + "; ".join(report.race_findings)
            )

    def _apply_group(self, group: OpDeltaTransaction, report: IntegrationReport) -> None:
        self._session.begin()
        txn = self._session.current_transaction
        assert txn is not None
        settled: list[OpDelta] = []
        try:
            for op in group.operations:
                self._apply_op(op, txn, report, self._rule_for, settled)
        except Exception as exc:
            if self._session.in_transaction:
                self._session.rollback()
            raise WarehouseError(
                f"op-delta integration of source transaction {group.txn_id} "
                f"failed: {exc}"
            ) from exc
        self._session.commit()
        self._record_applied(settled, group)

    def _record_applied(
        self, settled: list[OpDelta], group: OpDeltaTransaction
    ) -> None:
        """Report replayed ops to the ambient pipeline recorder, post-commit."""
        recorder = ambient_pipeline()
        if recorder is None or not settled:
            return
        now = self._session.database.clock.now
        for op in settled:
            recorder.record_applied(
                op,
                at_ms=now,
                committed_at=group.committed_at,
                views=self._views_by_table.get(op.table, ()),
            )

    def _apply_op(
        self,
        op: OpDelta,
        txn: object,
        report: IntegrationReport,
        rule_for: RuleLookup,
        settled: list[OpDelta] | None = None,
        applier: ColumnarApplier | None = None,
    ) -> None:
        """Replay one operation onto the mirror and every attached view.

        With a :class:`~repro.columnar.ColumnarApplier` the mirror
        statement and eligible view rules run as compiled batch programs;
        without one (or across a compile barrier) the row path runs
        verbatim.
        """
        prepared = self._prepare(op, report)
        if prepared is None:
            return
        if settled is not None:
            settled.append(prepared)
        if self._maintain_mirrors:
            with self._session.database.tracer.span(
                "warehouse.apply.statement", table=prepared.table
            ):
                statement = self._transformer.transform(prepared.statement)
                if applier is not None:
                    affected = applier.apply_mirror(
                        statement, txn, prepared.statement_text
                    )
                else:
                    affected = self._session.execute_statement(
                        statement
                    ).rows_affected
            report.statements_issued += 1
            report.rows_affected += affected
        for view in self._views:
            rule = rule_for(view.definition.name, prepared)
            if applier is not None:
                applier.apply_view(view, prepared, txn, rule)
            else:
                view.apply_operation(prepared, txn, rule=rule)
            if (
                rule is not None
                and rule.action is not RuleAction.DYNAMIC
                and prepared.table == view.definition.base_table
            ):
                report.plan_rules_applied += 1
        for agg in self._aggregate_views:
            if prepared.table != agg.definition.base_table:
                continue
            agg.apply_operation(prepared, txn)
            rule = rule_for(agg.definition.name, prepared)
            if rule is not None and rule.action is not RuleAction.DYNAMIC:
                report.plan_rules_applied += 1

    def _rule_for(self, view_name: str, op: OpDelta) -> DeltaRule | None:
        """The planned delta rule for this view/op, if a plan exists."""
        plan = self._plans.get(view_name)
        if plan is None:
            return None
        try:
            return plan.rule_for(op.kind)
        except KeyError:
            return None

    # ------------------------------------------------------- analyzer-driven
    def _prepare(
        self, op: OpDelta, report: IntegrationReport
    ) -> OpDelta | None:
        """Apply the static-analysis verdict to one operation.

        Returns the (possibly rewritten) operation to replay, or ``None``
        when the statement was pruned or resolved entirely by fallback.
        """
        record = self._record_for(op)
        if record is None:
            return op
        if record.pruned:
            report.statements_pruned += 1
            recorder = ambient_pipeline()
            if recorder is not None:
                recorder.record_pruned(
                    op, at_ms=self._session.database.clock.now, stage="apply"
                )
            return None
        if record.pinnable:
            pinned = pin_time_functions(op.statement, op.captured_at)
            report.statements_pinned += 1
            return dataclasses.replace(
                op, statement_text=pinned.to_sql(), _parsed=pinned
            )
        if record.determinism is Determinism.VOLATILE:
            return self._volatile_fallback(op, report)
        return op

    def _reject(self, op: OpDelta, reason: str) -> None:
        recorder = ambient_pipeline()
        if recorder is not None:
            recorder.record_rejected_op(
                op, at_ms=self._session.database.clock.now, reason=reason
            )

    def _record_for(self, op: OpDelta) -> AnalysisRecord | None:
        if op.analysis is not None:
            return op.analysis
        if self._analyzer is not None:
            return self._analyzer.analyze_op(op)
        return None

    def _volatile_fallback(
        self, op: OpDelta, report: IntegrationReport
    ) -> OpDelta | None:
        """Re-express a volatile statement from its captured before image.

        Only a DELETE can be recovered this way: the before image names the
        rows that disappeared, and removing them by key is order- and
        time-independent.  A volatile UPDATE or INSERT has an after state
        that only the source execution knew, so it cannot be replayed from
        the operation at all.
        """
        if op.kind is not OpKind.DELETE or op.before_image is None:
            self._reject(
                op, f"volatile {op.kind.value} without a recoverable after state"
            )
            raise WarehouseError(
                f"volatile {op.kind.value} on {op.table!r} cannot be replayed "
                "from the operation alone; capture it with a hybrid policy "
                "(before images) or route the table through value deltas"
            )
        # Only the table name is needed here; transforming the volatile
        # statement itself could fail on the very expressions (RANDOM() etc.)
        # that forced the fallback.
        target = self._transformer.mapping_for(op.table).target_table
        schema = self._session.database.table(target).schema
        key_index = schema.primary_key_index()
        if schema.primary_key is None or key_index is None:
            self._reject(op, "volatile DELETE fallback without a primary key")
            raise WarehouseError(
                f"volatile DELETE fallback on {op.table!r} needs a primary "
                "key to address the imaged rows"
            )
        report.fallback_images_applied += 1
        if not op.before_image:
            # The delete matched no rows at the source — a no-op replay
            # still settles the op for lineage conservation.
            recorder = ambient_pipeline()
            if recorder is not None:
                recorder.record_applied(
                    op, at_ms=self._session.database.clock.now
                )
            return None
        keys = tuple(
            ast.Literal(row[key_index]) for row in op.before_image
        )
        where: ast.Expression
        if len(keys) == 1:
            where = ast.BinaryOp("=", ast.ColumnRef(schema.primary_key), keys[0])
        else:
            where = ast.InList(ast.ColumnRef(schema.primary_key), keys)
        rewritten = ast.DeleteStmt(table=op.table, where=where)
        return dataclasses.replace(
            op, statement_text=rewritten.to_sql(), _parsed=rewritten
        )

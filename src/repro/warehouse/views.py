"""Materialized SPJ views with two maintenance paths (paper §4.1, ref [8]).

A :class:`MaterializedView` stores a select-project(-join) view of one
source table inside the warehouse database and can be maintained either

* from **Op-Deltas** (:meth:`MaterializedView.apply_operation`) — using the
  self-maintainability analysis: operations that are maintainable alone are
  rewritten onto the view; operations that are not use the hybrid before
  image; or
* from **value deltas** (:meth:`MaterializedView.apply_value_delta`) — the
  classic per-row image path.

Both paths must produce the same state as recomputing the view from the
base table — the equivalence the property tests check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..core.opdelta import OpDelta, OpKind
from ..core.selfmaint import Maintainability, ViewDefinition, classify_operation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..semantics.planner import DeltaRule
from ..engine.database import Database
from ..engine.schema import Column, TableSchema
from ..engine.table import InsertMode, Table
from ..engine.transactions import Transaction
from ..errors import WarehouseError
from ..sql import ast_nodes as ast
from ..sql.executor import Executor
from ..sql.expressions import evaluate, is_true


class MaterializedView:
    """One materialized view inside the warehouse database."""

    def __init__(
        self,
        warehouse_db: Database,
        definition: ViewDefinition,
        base_schema: TableSchema,
    ) -> None:
        if definition.base_table != base_schema.name:
            raise WarehouseError(
                f"view {definition.name!r} is over {definition.base_table!r} "
                f"but was given the schema of {base_schema.name!r}"
            )
        unknown = set(definition.columns) - set(base_schema.column_names)
        if unknown:
            raise WarehouseError(
                f"view {definition.name!r} projects unknown columns: {sorted(unknown)}"
            )
        self._db = warehouse_db
        self._executor = Executor(warehouse_db)
        self.definition = definition
        self.base_schema = base_schema
        self._base_columns = base_schema.column_names
        self._predicate = definition.predicate_ast()
        self._key = definition.key_column
        if self._key is not None and self._key not in base_schema.column_names:
            raise WarehouseError(
                f"view key {self._key!r} is not a column of {base_schema.name!r}"
            )

        columns = [base_schema.column(name) for name in definition.columns]
        join = definition.join
        if join is not None and join.columns:
            # A join projecting no dimension columns needs no local copy:
            # there is nothing to look up at maintenance time.
            if not warehouse_db.has_table(join.table):
                raise WarehouseError(
                    f"view {definition.name!r} joins {join.table!r}, which is "
                    "not mirrored at the warehouse"
                )
            dim_schema = warehouse_db.table(join.table).schema
            for name in join.columns:
                # Dimension columns are nullable in the view even when NOT
                # NULL at the dimension: a fact row whose join key has no
                # mirrored dimension row materialises NULL (found by the
                # delta-rule verifier's unmatched-key micro-databases).
                column = dim_schema.column(name)
                columns.append(Column(column.name, column.datatype, nullable=True))
        storage_key = (
            self._key if self._key in definition.columns else None
        )
        storage_schema = TableSchema(
            definition.name, columns, primary_key=storage_key
        )
        self.table: Table = warehouse_db.create_table(storage_schema)
        self._m_refresh = warehouse_db.metrics.counter(
            "warehouse.view.refresh", view=definition.name
        )

    # ------------------------------------------------------------------ state
    def rows(self) -> list[tuple[Any, ...]]:
        return sorted(values for _rid, values in self.table.scan())

    def initialize(self, base_rows: Iterable[tuple[Any, ...]], txn: Transaction) -> int:
        """Populate the view from a full base-table extract."""
        count = 0
        for row in base_rows:
            projected = self._qualify_and_project(row)
            if projected is not None:
                self.table.insert(txn, projected, mode=InsertMode.BULK_INTERNAL)
                count += 1
        return count

    def recompute(self, base_rows: Iterable[tuple[Any, ...]]) -> list[tuple[Any, ...]]:
        """Pure recomputation (no storage, no costs) — the testing oracle."""
        result = []
        for row in base_rows:
            projected = self._qualify_and_project(row)
            if projected is not None:
                result.append(projected)
        return sorted(result)

    # -------------------------------------------------------- op-delta path
    def apply_operation(
        self, op: OpDelta, txn: Transaction, rule: "DeltaRule | None" = None
    ) -> Maintainability:
        """Maintain the view from one Op-Delta; returns the path taken.

        With a compiled :class:`~repro.semantics.planner.DeltaRule` the
        per-statement classification is skipped wherever the planner
        decided the strategy ahead of time; only ``DYNAMIC`` rules fall
        back to classifying the individual statement.
        """
        if op.table != self.definition.base_table:
            return Maintainability.OP_ONLY  # not our base table: no-op
        level = self._resolve_level(op, rule)
        if level is Maintainability.NOT_SELF_MAINTAINABLE:
            raise WarehouseError(
                f"view {self.definition.name!r} cannot be maintained from "
                f"this {op.kind.value} without querying the sources"
            )
        with self._db.tracer.span(
            "warehouse.view.apply_op", view=self.definition.name
        ):
            if op.kind is OpKind.INSERT:
                self._apply_insert_op(op, txn)
            elif level is Maintainability.OP_ONLY:
                self._apply_rewritten(op, txn)
            else:
                self._apply_with_before_image(op, txn)
        self._m_refresh.inc()
        return level

    def _resolve_level(
        self, op: OpDelta, rule: "DeltaRule | None"
    ) -> Maintainability:
        if rule is None or rule.action.value == "dynamic":
            return classify_operation(self.definition, op)
        if rule.action.value == "source-query":
            return Maintainability.NOT_SELF_MAINTAINABLE
        if rule.needs_before_image:
            return Maintainability.NEEDS_BEFORE_IMAGE
        return Maintainability.OP_ONLY

    def _apply_insert_op(self, op: OpDelta, txn: Transaction) -> None:
        stmt = op.statement
        assert isinstance(stmt, ast.InsertStmt)
        for expr_row in stmt.rows:
            values = tuple(evaluate(expr, {}) for expr in expr_row)
            if stmt.columns is not None:
                mapping = dict(zip(stmt.columns, values))
                row = tuple(mapping.get(name) for name in self._base_columns)
            else:
                if len(values) != len(self._base_columns):
                    raise WarehouseError(
                        f"INSERT row width {len(values)} does not match base "
                        f"table {self.base_schema.name!r}"
                    )
                row = values
            projected = self._qualify_and_project(row)
            if projected is not None:
                self.table.insert(txn, projected)

    def _apply_rewritten(self, op: OpDelta, txn: Transaction) -> None:
        """Execute the operation directly against the view storage table.

        Valid only on the OP_ONLY path: every referenced column is
        projected, and membership cannot change.
        """
        stmt = op.statement
        if isinstance(stmt, ast.UpdateStmt):
            rewritten: ast.Statement = ast.UpdateStmt(
                self.definition.name, stmt.assignments, self._narrow(stmt.where)
            )
        elif isinstance(stmt, ast.DeleteStmt):
            rewritten = ast.DeleteStmt(self.definition.name, self._narrow(stmt.where))
        else:  # pragma: no cover - inserts take _apply_insert_op
            raise WarehouseError("unexpected statement kind on the rewrite path")
        self._executor.execute(rewritten, txn)

    def _narrow(self, where: ast.Expression | None) -> ast.Expression | None:
        """Conjoin the view's selection predicate with the operation's WHERE.

        The operation's predicate may match base rows outside the view; the
        view predicate keeps the rewrite from touching rows that were never
        materialised (all referenced columns are projected on this path).
        """
        if self._predicate is None:
            return where
        if where is None:
            return self._predicate
        return ast.BinaryOp("AND", self._predicate, where)

    def _apply_with_before_image(self, op: OpDelta, txn: Transaction) -> None:
        if op.before_image is None:
            raise WarehouseError(
                f"view {self.definition.name!r} needs before images for this "
                f"{op.kind.value} but the Op-Delta was captured lean "
                "(configure a hybrid capture policy)"
            )
        if op.kind is OpKind.DELETE:
            for before in op.before_image:
                if self._qualifies(before):
                    self._delete_by_key(before, txn)
            return
        assert op.kind is OpKind.UPDATE
        stmt = op.statement
        assert isinstance(stmt, ast.UpdateStmt)
        for before in op.before_image:
            env = dict(zip(self._base_columns, before))
            after_map = dict(env)
            for assignment in stmt.assignments:
                after_map[assignment.column] = evaluate(assignment.expr, env)
            after = tuple(after_map[name] for name in self._base_columns)
            was_in = self._qualifies(before)
            now_in = self._qualifies(after)
            if was_in:
                self._delete_by_key(before, txn)
            if now_in:
                projected = self._project(after)
                self.table.insert(txn, projected)

    # ------------------------------------------------------ columnar support
    # Public seams for :mod:`repro.columnar.apply`: the columnar fast path
    # needs the view's predicate, base layout and the rewrite narrowing,
    # without reaching into privates.  Semantics stay defined here.

    @property
    def predicate(self) -> ast.Expression | None:
        """The view's selection predicate AST (None selects everything)."""
        return self._predicate

    @property
    def base_columns(self) -> tuple[str, ...]:
        """Base-table column names, in storage order."""
        return tuple(self._base_columns)

    def narrowed(self, where: ast.Expression | None) -> ast.Expression | None:
        """The rewrite-path predicate: view predicate AND the op's WHERE."""
        return self._narrow(where)

    def note_columnar_refresh(self) -> None:
        """Count a columnar maintenance application as a view refresh."""
        self._m_refresh.inc()

    # ------------------------------------------------------ value-delta path
    def apply_value_delta(self, records, txn: Transaction) -> None:
        """Maintain the view from row-image deltas (the classic path)."""
        with self._db.tracer.span(
            "warehouse.view.apply_value_delta", view=self.definition.name
        ):
            self._apply_value_delta(records, txn)
        self._m_refresh.inc()

    def _apply_value_delta(self, records, txn: Transaction) -> None:
        for record in records:
            kind = record.kind.name
            if kind == "INSERT":
                projected = self._qualify_and_project(record.after)
                if projected is not None:
                    self.table.insert(txn, projected)
            elif kind == "DELETE":
                if self._qualifies(record.before):
                    self._delete_by_key(record.before, txn)
            elif kind == "UPDATE":
                if self._qualifies(record.before):
                    self._delete_by_key(record.before, txn)
                projected = self._qualify_and_project(record.after)
                if projected is not None:
                    self.table.insert(txn, projected)
            else:  # UPSERT: provenance unknown — remove any old image, re-add
                self._delete_by_key_if_present(record.after, txn)
                projected = self._qualify_and_project(record.after)
                if projected is not None:
                    self.table.insert(txn, projected)

    # --------------------------------------------------------------- plumbing
    def _qualifies(self, row: tuple[Any, ...] | None) -> bool:
        if row is None:
            return False
        if self._predicate is None:
            return True
        env = dict(zip(self._base_columns, row))
        return is_true(evaluate(self._predicate, env))

    def _project(self, row: tuple[Any, ...]) -> tuple[Any, ...]:
        env: Mapping[str, Any] = dict(zip(self._base_columns, row))
        projected = [env[name] for name in self.definition.columns]
        join = self.definition.join
        if join is not None and join.columns:
            dim_values = self._dim_lookup(env[join.left_column])
            for name in join.columns:
                dim_schema = self._db.table(join.table).schema
                projected.append(
                    dim_values[dim_schema.column_index(name)]
                    if dim_values is not None
                    else None
                )
        return tuple(projected)

    def _qualify_and_project(self, row: tuple[Any, ...] | None):
        if row is None or not self._qualifies(row):
            return None
        return self._project(row)

    def _dim_lookup(self, key: Any) -> tuple[Any, ...] | None:
        join = self.definition.join
        assert join is not None
        dim = self._db.table(join.table)
        index = dim.index_on(join.right_column)
        if index is not None:
            matches = index.lookup(key)
            return dim.read(matches[0]) if matches else None
        position = dim.schema.column_index(join.right_column)
        for _rid, values in dim.scan():
            if values[position] == key:
                return values
        return None

    def _delete_by_key(self, base_row: tuple[Any, ...], txn: Transaction) -> None:
        if not self._delete_by_key_if_present(base_row, txn):
            raise WarehouseError(
                f"view {self.definition.name!r}: expected a materialised row "
                "to delete but found none (view state diverged)"
            )

    def _delete_by_key_if_present(
        self, base_row: tuple[Any, ...], txn: Transaction
    ) -> bool:
        if self._key is None or self._key not in self.definition.columns:
            raise WarehouseError(
                f"view {self.definition.name!r} does not project its key; "
                "image-based maintenance cannot locate rows"
            )
        key_value = base_row[self.base_schema.column_index(self._key)]
        index = self.table.index_on(self._key)
        if index is not None:
            matches = index.lookup(key_value)
            if not matches:
                return False
            self.table.delete(txn, matches[0])
            return True
        position = self.table.schema.column_index(self._key)
        for row_id, values in self.table.scan():
            if values[position] == key_value:
                self.table.delete(txn, row_id)
                return True
        return False

"""OLAP query workload for the warehouse availability experiments.

A small set of decision-support queries over the mirrored fact table —
aggregates, group-bys, selective filters, and (when a dimension mirror
exists) a join.  The scheduler uses their measured virtual costs as the
query service times in the availability simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.database import Database
from ..engine.session import Session
from ..errors import WarehouseError


@dataclass(frozen=True)
class OlapQuery:
    name: str
    sql: str


def standard_queries(
    fact_table: str,
    measure_column: str,
    group_column: str,
    filter_column: str,
    filter_value: str,
    dimension_table: str | None = None,
    dimension_key: str | None = None,
    fact_foreign_key: str | None = None,
) -> list[OlapQuery]:
    """The canned DSS query mix used by the availability benchmarks."""
    queries = [
        OlapQuery(
            "total_measure",
            f"SELECT COUNT(*), SUM({measure_column}) FROM {fact_table}",
        ),
        OlapQuery(
            "by_group",
            f"SELECT {group_column}, COUNT(*), AVG({measure_column}) "
            f"FROM {fact_table} GROUP BY {group_column}",
        ),
        OlapQuery(
            "filtered",
            f"SELECT COUNT(*) FROM {fact_table} "
            f"WHERE {filter_column} = '{filter_value}'",
        ),
    ]
    if dimension_table is not None:
        if dimension_key is None or fact_foreign_key is None:
            raise WarehouseError(
                "a dimension query needs both dimension_key and fact_foreign_key"
            )
        queries.append(
            OlapQuery(
                "dimension_join",
                f"SELECT COUNT(*) FROM {fact_table} f JOIN {dimension_table} d "
                f"ON f.{fact_foreign_key} = d.{dimension_key}",
            )
        )
    return queries


def measure_query_cost(database: Database, session: Session, query: OlapQuery) -> float:
    """Run one query and return its virtual cost in milliseconds."""
    with database.clock.stopwatch() as watch:
        with database.tracer.span("warehouse.olap.query", query=query.name):
            session.execute(query.sql)
    database.metrics.histogram(
        "warehouse.olap.query_ms", query=query.name
    ).observe(watch.elapsed)
    return watch.elapsed


def measure_mix_cost(
    database: Database, session: Session, queries: list[OlapQuery]
) -> dict[str, float]:
    """Measure the whole mix; returns name -> virtual milliseconds."""
    return {q.name: measure_query_cost(database, session, q) for q in queries}

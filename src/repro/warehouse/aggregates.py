"""Materialized aggregate views (the paper's [19] connection).

§1 cites Labio, Yerneni & Garcia-Molina, *Shrinking the Warehouse Update
Window* — maintaining **aggregate** views efficiently is the other half of
making warehouse maintenance fast.  This module implements incrementally
maintainable aggregate views over one base table:

* grouping by one or more columns, with ``COUNT(*)``, ``COUNT(col)``,
  ``SUM(col)`` and ``AVG(col)`` aggregates;
* maintenance from value deltas **or** Op-Deltas with before images —
  inserts add to their group, deletes subtract, updates move contributions
  between groups; a group whose count reaches zero disappears;
* ``MIN``/``MAX`` are rejected: they are *not* self-maintainable under
  deletions (removing the current minimum requires re-reading the base
  data, violating requirement 1 of §2.3) — the definition-time error states
  exactly that.

AVG is stored as (sum, count) and derived on read, the standard
self-maintainable decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..core.opdelta import OpDelta, OpKind
from ..engine.database import Database
from ..engine.schema import Column, TableSchema
from ..engine.table import InsertMode, Table
from ..engine.transactions import Transaction
from ..engine.types import FLOAT, INTEGER
from ..errors import EngineError, SelfMaintenanceError, WarehouseError
from ..extraction.deltas import ChangeKind, DeltaRecord
from ..sql import ast_nodes as ast
from ..sql.expressions import evaluate, is_true
from ..sql.parser import parse_expression

#: Aggregate functions that are self-maintainable under insert+delete.
SELF_MAINTAINABLE_FUNCTIONS = ("COUNT", "SUM", "AVG")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column of the view: ``function(argument)``."""

    function: str
    argument: str | None = None  # None only for COUNT(*)

    def __post_init__(self) -> None:
        function = self.function.upper()
        if function in ("MIN", "MAX"):
            raise SelfMaintenanceError(
                f"{function} is not self-maintainable: deleting the current "
                f"extremum requires re-querying the base data (§2.3 req. 1)"
            )
        if function not in SELF_MAINTAINABLE_FUNCTIONS:
            raise SelfMaintenanceError(f"unknown aggregate function {function!r}")
        if function != "COUNT" and self.argument is None:
            raise SelfMaintenanceError(f"{function} requires a column argument")
        object.__setattr__(self, "function", function)

    @property
    def label(self) -> str:
        arg = self.argument if self.argument is not None else "all"
        return f"{self.function.lower()}_{arg}"


@dataclass(frozen=True)
class AggregateViewDefinition:
    """A GROUP BY view over one base table."""

    name: str
    base_table: str
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    predicate: str | None = None

    def __post_init__(self) -> None:
        if not self.group_by:
            raise SelfMaintenanceError(
                f"aggregate view {self.name!r} needs at least one grouping column"
            )
        if not self.aggregates:
            raise SelfMaintenanceError(
                f"aggregate view {self.name!r} needs at least one aggregate"
            )

    def predicate_ast(self) -> ast.Expression | None:
        return parse_expression(self.predicate) if self.predicate else None


class MaterializedAggregateView:
    """Stored group rows, incrementally maintained from deltas.

    Storage layout: the grouping columns, then ``group_count`` (live rows
    in the group — the existence counter), then per aggregate a pair of
    internal columns holding its running state.
    """

    def __init__(
        self,
        warehouse_db: Database,
        definition: AggregateViewDefinition,
        base_schema: TableSchema,
    ) -> None:
        if definition.base_table != base_schema.name:
            raise WarehouseError(
                f"aggregate view {definition.name!r} is over "
                f"{definition.base_table!r}, got schema of {base_schema.name!r}"
            )
        self.definition = definition
        self.base_schema = base_schema
        self._base_columns = base_schema.column_names
        self._predicate = definition.predicate_ast()
        for name in definition.group_by:
            base_schema.column(name)  # validates
        for spec in definition.aggregates:
            if spec.argument is not None:
                column = base_schema.column(spec.argument)
                if column.datatype.name not in ("INTEGER", "FLOAT", "TIMESTAMP"):
                    raise SelfMaintenanceError(
                        f"{spec.function}({spec.argument}) needs a numeric "
                        f"column, got {column.datatype.name}"
                    )

        columns: list[Column] = [
            base_schema.column(name) for name in definition.group_by
        ]
        columns.append(Column("group_count", INTEGER, nullable=False))
        for spec in definition.aggregates:
            columns.append(Column(f"{spec.label}_sum", FLOAT, nullable=False))
            columns.append(Column(f"{spec.label}_count", INTEGER, nullable=False))
        self.table: Table = warehouse_db.create_table(
            TableSchema(definition.name, columns)
        )
        self._db = warehouse_db
        # In-memory group directory: group key -> RowId of its stored row.
        self._directory: dict[tuple, Any] = {}

    # ------------------------------------------------------------------ reads
    def groups(self) -> dict[tuple, dict[str, Any]]:
        """Current group values: key -> {label: aggregate value, 'count': n}."""
        out: dict[tuple, dict[str, Any]] = {}
        width = len(self.definition.group_by)
        for _rid, values in self.table.scan():
            key = tuple(values[:width])
            row: dict[str, Any] = {"count": values[width]}
            for position, spec in enumerate(self.definition.aggregates):
                total = values[width + 1 + 2 * position]
                count = values[width + 2 + 2 * position]
                row[spec.label] = self._finalise(spec, total, count)
            out[key] = row
        return out

    @staticmethod
    def _finalise(spec: AggregateSpec, total: float, count: int) -> Any:
        if spec.function == "COUNT":
            return count
        if spec.function == "SUM":
            return total if count else None
        return total / count if count else None  # AVG

    def recompute(self, base_rows: Iterable[Sequence[Any]]) -> dict[tuple, dict]:
        """Pure recomputation oracle (no storage)."""
        groups: dict[tuple, list[Sequence[Any]]] = {}
        for row in base_rows:
            if not self._qualifies(row):
                continue
            key = tuple(
                row[self.base_schema.column_index(name)]
                for name in self.definition.group_by
            )
            groups.setdefault(key, []).append(row)
        out = {}
        for key, rows in groups.items():
            entry: dict[str, Any] = {"count": len(rows)}
            for spec in self.definition.aggregates:
                total, count = 0.0, 0
                for row in rows:
                    contribution = self._contribution(spec, row)
                    if contribution is not None:
                        total += contribution
                        count += 1
                    elif spec.function == "COUNT" and spec.argument is None:
                        count += 1
                entry[spec.label] = self._finalise(spec, total, count)
            out[key] = entry
        return out

    # ------------------------------------------------------------ maintenance
    def initialize(self, base_rows: Iterable[Sequence[Any]], txn: Transaction) -> int:
        count = 0
        for row in base_rows:
            self._add_row(tuple(row), txn)
            count += 1
        return count

    def apply_value_delta(
        self, records: Iterable[DeltaRecord], txn: Transaction
    ) -> None:
        for record in records:
            if record.kind is ChangeKind.INSERT:
                assert record.after is not None
                self._add_row(record.after, txn)
            elif record.kind is ChangeKind.DELETE:
                assert record.before is not None
                self._remove_row(record.before, txn)
            elif record.kind is ChangeKind.UPDATE:
                assert record.before is not None and record.after is not None
                self._remove_row(record.before, txn)
                self._add_row(record.after, txn)
            else:
                raise WarehouseError(
                    "aggregate views cannot apply UPSERT deltas: the before "
                    "contribution is unknown (timestamp extraction does not "
                    "carry it)"
                )

    def apply_operation(self, op: OpDelta, txn: Transaction) -> None:
        """Maintain from an Op-Delta; UPDATE/DELETE require before images."""
        if op.table != self.definition.base_table:
            return
        if op.kind is OpKind.INSERT:
            for row in self._rows_from_insert(op):
                self._add_row(row, txn)
            return
        if op.before_image is None:
            raise WarehouseError(
                f"aggregate view {self.definition.name!r} needs before images "
                f"for {op.kind.value} operations (hybrid capture)"
            )
        if op.kind is OpKind.DELETE:
            for before in op.before_image:
                self._remove_row(before, txn)
            return
        statement = op.statement
        assert isinstance(statement, ast.UpdateStmt)
        for before in op.before_image:
            env = dict(zip(self._base_columns, before))
            after_map = dict(env)
            for assignment in statement.assignments:
                after_map[assignment.column] = evaluate(assignment.expr, env)
            after = tuple(after_map[name] for name in self._base_columns)
            self._remove_row(before, txn)
            self._add_row(after, txn)

    # --------------------------------------------------------------- internals
    def _rows_from_insert(self, op: OpDelta) -> list[tuple]:
        statement = op.statement
        assert isinstance(statement, ast.InsertStmt)
        rows = []
        for expr_row in statement.rows:
            values = tuple(evaluate(expr, {}) for expr in expr_row)
            if statement.columns is not None:
                mapping = dict(zip(statement.columns, values))
                rows.append(tuple(mapping.get(c) for c in self._base_columns))
            else:
                rows.append(values)
        return rows

    def _qualifies(self, row: Sequence[Any]) -> bool:
        if self._predicate is None:
            return True
        env = dict(zip(self._base_columns, row))
        return is_true(evaluate(self._predicate, env))

    def _contribution(self, spec: AggregateSpec, row: Sequence[Any]) -> float | None:
        if spec.argument is None:
            return None
        value = row[self.base_schema.column_index(spec.argument)]
        return float(value) if value is not None else None

    def _group_key(self, row: Sequence[Any]) -> tuple:
        return tuple(
            row[self.base_schema.column_index(name)]
            for name in self.definition.group_by
        )

    def _add_row(self, row: Sequence[Any], txn: Transaction) -> None:
        if not self._qualifies(row):
            return
        self._apply_contribution(row, txn, sign=+1)

    def _remove_row(self, row: Sequence[Any], txn: Transaction) -> None:
        if not self._qualifies(row):
            return
        self._apply_contribution(row, txn, sign=-1)

    def _rebuild_directory(self) -> None:
        """Re-derive the group directory from storage.

        The directory is a cache; transaction aborts physically restore
        stored rows but can leave it stale, so any inconsistency triggers a
        rebuild rather than an error.
        """
        width = len(self.definition.group_by)
        self._directory = {
            tuple(values[:width]): row_id for row_id, values in self.table.scan()
        }

    def _locate_group(self, key: tuple) -> Any | None:
        row_id = self._directory.get(key)
        if row_id is not None:
            try:
                width = len(self.definition.group_by)
                if tuple(self.table.read(row_id)[:width]) == key:
                    return row_id
            except EngineError:
                pass  # stale entry (post-abort); fall through to rebuild
        self._rebuild_directory()
        return self._directory.get(key)

    def _apply_contribution(self, row: Sequence[Any], txn: Transaction, sign: int) -> None:
        key = self._group_key(row)
        width = len(self.definition.group_by)
        row_id = self._locate_group(key)
        if row_id is None:
            if sign < 0:
                raise WarehouseError(
                    f"aggregate view {self.definition.name!r}: removing a "
                    f"contribution from unknown group {key!r} (state diverged)"
                )
            values: list[Any] = list(key) + [0]
            for _spec in self.definition.aggregates:
                values.extend([0.0, 0])
            row_id = self.table.insert(
                txn, tuple(values), mode=InsertMode.BULK_INTERNAL
            )
            self._directory[key] = row_id
        current = list(self.table.read(row_id))
        new_count = current[width] + sign
        if new_count < 0:
            raise WarehouseError(
                f"aggregate view {self.definition.name!r}: group {key!r} "
                "count went negative (state diverged)"
            )
        if new_count == 0:
            self.table.delete(txn, row_id)
            del self._directory[key]
            return
        current[width] = new_count
        for position, spec in enumerate(self.definition.aggregates):
            sum_slot = width + 1 + 2 * position
            count_slot = width + 2 + 2 * position
            contribution = self._contribution(spec, row)
            if contribution is not None:
                current[sum_slot] += sign * contribution
                current[count_slot] += sign
            elif spec.function == "COUNT" and spec.argument is None:
                current[count_slot] += sign
        assignments: Mapping[str, Any] = dict(
            zip(self.table.schema.column_names, current)
        )
        self.table.update(
            txn, row_id,
            {name: value for name, value in assignments.items()
             if name not in self.definition.group_by},
        )

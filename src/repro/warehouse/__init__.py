"""Warehouse side: mirrors, SPJ views, integrators, availability scheduler."""

from .aggregates import (
    AggregateSpec,
    AggregateViewDefinition,
    MaterializedAggregateView,
)
from .olap import OlapQuery, measure_mix_cost, measure_query_cost, standard_queries
from .opdelta_integrator import OpDeltaIntegrator
from .scheduler import (
    AvailabilityReport,
    QueryRecord,
    ScheduleReport,
    run_availability_experiment,
    run_batched_schedule,
    run_conflict_schedule,
)
from .value_integrator import IntegrationReport, ValueDeltaIntegrator
from .views import MaterializedView
from .warehouse import Warehouse

__all__ = [
    "Warehouse",
    "MaterializedView",
    "AggregateSpec",
    "AggregateViewDefinition",
    "MaterializedAggregateView",
    "ValueDeltaIntegrator",
    "OpDeltaIntegrator",
    "IntegrationReport",
    "OlapQuery",
    "standard_queries",
    "measure_query_cost",
    "measure_mix_cost",
    "AvailabilityReport",
    "QueryRecord",
    "run_availability_experiment",
    "ScheduleReport",
    "run_batched_schedule",
    "run_conflict_schedule",
]

"""Accounting for one compaction pass over a shippable window."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class AbsorbedEdge:
    """One op rewritten away, attributed to its surviving absorber.

    ``absorbed_by`` is the lineage key of the statement that now carries
    the effect, or ``None`` when the effect vanished entirely (INSERT ∘
    DELETE annihilation).  These edges feed the pipeline auditor's
    conservation proof (:mod:`repro.obs.pipeline`): a compacted-away op is
    *accounted for*, not lost.
    """

    absorbed: str
    absorbed_by: str | None
    rule: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "absorbed": self.absorbed,
            "absorbed_by": self.absorbed_by,
            "rule": self.rule,
        }


@dataclass(frozen=True)
class ReorderObligation:
    """One commutativity proof the coalescer relied on to move an effect.

    When a combining rewrite fires, the surviving statement's effect
    teleports backwards past every op the scan commuted over; each hop is
    recorded here so the schedule certifier
    (:meth:`repro.analysis.certify.ScheduleCertifier.verify_compaction`)
    can independently re-prove it against the uncompacted window.
    ``moved``/``over`` are lineage keys; the ``(txn_id, sequence)``
    coordinates locate the ops in the original groups.
    """

    moved: str
    over: str
    table: str
    txn_id: int
    moved_sequence: int
    over_sequence: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "moved": self.moved,
            "over": self.over,
            "table": self.table,
            "txn_id": self.txn_id,
            "moved_sequence": self.moved_sequence,
            "over_sequence": self.over_sequence,
        }


@dataclass
class CompactionReport:
    """What one :meth:`~repro.compaction.Coalescer.compact_window` did.

    ``ops_in``/``ops_out`` and ``bytes_in``/``bytes_out`` measure the
    window before and after rewriting (bytes via
    :attr:`~repro.core.opdelta.OpDelta.size_bytes`, i.e. the wire
    encoding).  The per-rule counters attribute every removed statement to
    the rewrite that claimed it, and :attr:`absorbed` names each removed
    statement's surviving absorber (lineage "absorbed-by" edges).
    """

    ops_in: int = 0
    ops_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    transactions_in: int = 0
    transactions_out: int = 0
    #: UPDATE∘UPDATE pairs folded into one statement.
    updates_folded: int = 0
    #: INSERT statements fused into a preceding multi-row INSERT.
    inserts_fused: int = 0
    #: INSERT/DELETE pairs that annihilated (both statements dropped).
    pairs_annihilated: int = 0
    #: UPDATEs dropped because a later DELETE provably removes every row
    #: they touch.
    updates_superseded: int = 0
    #: Lineage edges: every op a rewrite removed, with its absorber.
    absorbed: list[AbsorbedEdge] = field(default_factory=list)
    #: Commutativity proofs behind every effect the compactor moved; the
    #: schedule certifier re-derives each one before apply.
    reorder_obligations: list[ReorderObligation] = field(
        default_factory=list
    )

    @property
    def ops_removed(self) -> int:
        return self.ops_in - self.ops_out

    @property
    def bytes_saved(self) -> int:
        return self.bytes_in - self.bytes_out

    @property
    def bytes_ratio(self) -> float:
        """Shipped fraction: ``bytes_out / bytes_in`` (1.0 for an empty window)."""
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in

    def merge(self, other: "CompactionReport") -> None:
        """Fold another pass's accounting into this one (multi-window runs)."""
        self.ops_in += other.ops_in
        self.ops_out += other.ops_out
        self.bytes_in += other.bytes_in
        self.bytes_out += other.bytes_out
        self.transactions_in += other.transactions_in
        self.transactions_out += other.transactions_out
        self.updates_folded += other.updates_folded
        self.inserts_fused += other.inserts_fused
        self.pairs_annihilated += other.pairs_annihilated
        self.updates_superseded += other.updates_superseded
        self.absorbed.extend(other.absorbed)
        self.reorder_obligations.extend(other.reorder_obligations)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ops_in": self.ops_in,
            "ops_out": self.ops_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "bytes_saved": self.bytes_saved,
            "bytes_ratio": self.bytes_ratio,
            "transactions_in": self.transactions_in,
            "transactions_out": self.transactions_out,
            "updates_folded": self.updates_folded,
            "inserts_fused": self.inserts_fused,
            "pairs_annihilated": self.pairs_annihilated,
            "updates_superseded": self.updates_superseded,
            "absorbed": [edge.to_dict() for edge in self.absorbed],
            "reorder_obligations": [
                obligation.to_dict()
                for obligation in self.reorder_obligations
            ],
        }

"""Op-Delta log compaction: safe statement-stream rewriting.

The paper's case for Op-Delta is *compactness* — one captured statement
stands in for arbitrarily many affected rows (§4).  The stream itself
still carries redundancy the literature shows is removable (DBToaster
condenses delta streams before application; staging-area ETL batches
before loading): a row inserted and deleted inside the same source
transaction never needs to reach the warehouse at all, two UPDATEs over
the same key range collapse into one statement, and a run of single-row
INSERTs is one multi-row INSERT wearing n statement headers.

:class:`Coalescer` rewrites a shippable window of captured
:class:`~repro.core.opdelta.OpDeltaTransaction` groups under four rules,
every one justified by the static analysis layer (:mod:`repro.analysis`):

* **UPDATE ∘ UPDATE fold** — same table, structurally identical WHERE,
  no WHERE column assigned by either statement: the later statement's
  assignments overwrite (or, for accumulating ``c = c + k`` shapes,
  numerically fold into) the earlier ones.
* **INSERT run fusion** — plain ``VALUES`` inserts into the same table
  with the same column list concatenate their row lists.
* **INSERT ∘ DELETE annihilation** — when the DELETE's predicate range
  pins the primary key to a point set *inside* the inserted key set
  (nothing pre-existing can match — the inserted keys were fresh at the
  source, or the INSERT would have failed) *and* the predicate evaluates
  true on every inserted row (so every inserted row dies), both
  statements vanish.
* **UPDATE superseded by DELETE** — the UPDATE is dropped when its WHERE
  structurally implies the DELETE's (:func:`repro.analysis.safety.
  conjuncts_imply`, exact — no range approximation) and none of its
  assignments touches a DELETE predicate column.

**Safety argument.**  Rules combine only *adjacent* operations; to bring
a pair together the later operation must provably commute
(:func:`repro.analysis.safety.commutes`) with everything between them —
commuting-only reordering, exactly the guarantee the conflict graph is
built on.  Operations outside the ``DETERMINISTIC`` class of the
determinism lattice (``TIME_DEPENDENT``, ``VOLATILE``) and hybrid
operations carrying before images are never rewritten, never consumed by
a rule, and act as reordering barriers.  Source transaction boundaries
are preserved: each group is compacted independently, so no operation
ever crosses into another transaction (a fully annihilated group is
dropped — an empty transaction has no observable effect).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping, Sequence, Union

from ..analysis.analyzer import OpDeltaAnalyzer
from ..analysis.rwsets import StatementFootprint, extract_footprint
from ..analysis.safety import (
    Determinism,
    commutes,
    conjuncts_imply,
    self_accumulation,
    statement_determinism,
)
from ..clock import VirtualClock
from ..core.opdelta import OpDelta, OpDeltaTransaction
from ..errors import SqlAnalysisError
from ..obs.context import ambient_metrics, ambient_tracer
from ..obs.metrics import NULL_REGISTRY, MetricsLike
from ..obs.pipeline.context import ambient_pipeline
from ..obs.pipeline.events import lineage_key
from ..sql import ast_nodes as ast
from ..sql.expressions import evaluate, is_true, referenced_columns
from .report import AbsorbedEdge, CompactionReport, ReorderObligation


@dataclasses.dataclass(frozen=True)
class _Entry:
    """One operation in flight through the window scan."""

    op: OpDelta
    footprint: StatementFootprint
    #: DETERMINISTIC, non-hybrid: may be rewritten and moved past.
    coalescible: bool


class _Outcome:
    """Sentinel results of a pairwise combine attempt."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<combine:{self.name}>"


#: Both operations vanish (INSERT ∘ DELETE annihilation).
DROP_BOTH = _Outcome("drop-both")
#: The earlier operation vanishes; the later keeps scanning downward.
DROP_PREV = _Outcome("drop-prev")

CombineResult = Union[_Entry, _Outcome, None]


class Coalescer:
    """Compacts windows of captured Op-Delta transaction groups.

    ``analyzer`` supplies the key/table catalogs that sharpen the
    commutativity and annihilation proofs, and — when present — re-attaches
    a fresh :class:`~repro.analysis.AnalysisRecord` to every rewritten
    operation so downstream pruning/pinning still works.  Without one, the
    coalescer falls back to bare footprint extraction and attaches no
    records (omissions only make it more conservative).

    ``clock`` enables the per-pass trace span (virtual time); ``metrics``
    overrides the ambient registry.
    """

    def __init__(
        self,
        analyzer: OpDeltaAnalyzer | None = None,
        key_columns: Mapping[str, str] | None = None,
        table_columns: Mapping[str, Sequence[str]] | None = None,
        clock: VirtualClock | None = None,
        metrics: MetricsLike | None = None,
    ) -> None:
        self._analyzer = analyzer
        self._key_columns: dict[str, str] = dict(
            analyzer.key_columns if analyzer is not None else (key_columns or {})
        )
        self._table_columns: dict[str, tuple[str, ...]] = {
            t: tuple(cols)
            for t, cols in (
                analyzer.table_columns
                if analyzer is not None
                else (table_columns or {})
            ).items()
        }
        self._clock = clock
        self._metrics = metrics

    @property
    def metrics(self) -> MetricsLike:
        if self._metrics is not None:
            return self._metrics
        ambient = ambient_metrics()
        return ambient if ambient is not None else NULL_REGISTRY

    # ------------------------------------------------------------------ window
    def compact_window(
        self, groups: Iterable[OpDeltaTransaction]
    ) -> tuple[list[OpDeltaTransaction], CompactionReport]:
        """Rewrite one shippable window; returns ``(groups, report)``.

        Transaction boundaries are preserved — each group is compacted on
        its own, and groups whose every operation annihilated are dropped
        from the window entirely.
        """
        report = CompactionReport()
        tracer = ambient_tracer()
        if tracer is not None and self._clock is not None:
            with tracer.span("compaction.window.pass", clock=self._clock):
                compacted = self._compact(list(groups), report)
        else:
            compacted = self._compact(list(groups), report)
        self._emit(report)
        return compacted, report

    def _compact(
        self, groups: list[OpDeltaTransaction], report: CompactionReport
    ) -> list[OpDeltaTransaction]:
        out: list[OpDeltaTransaction] = []
        for group in groups:
            report.transactions_in += 1
            report.ops_in += len(group.operations)
            report.bytes_in += group.size_bytes
            entries = self._compact_group(group.operations, report)
            if not entries:
                continue  # fully annihilated: an empty txn has no effect
            report.transactions_out += 1
            ops = [entry.op for entry in entries]
            kept = (
                group
                if len(ops) == len(group.operations)
                and all(a is b for a, b in zip(ops, group.operations))
                else dataclasses.replace(group, operations=ops)
            )
            report.ops_out += len(ops)
            report.bytes_out += kept.size_bytes
            out.append(kept)
        return out

    # ------------------------------------------------------------------- group
    def _compact_group(
        self, operations: Sequence[OpDelta], report: CompactionReport
    ) -> list[_Entry]:
        entries: list[_Entry] = []
        for op in operations:
            current = self._entry(op)
            if current.coalescible and self._place(entries, current, report):
                continue
            entries.append(current)
        return entries

    def _place(
        self, entries: list[_Entry], current: _Entry, report: CompactionReport
    ) -> bool:
        """Try to combine ``current`` with an earlier kept operation.

        Scans backwards from the window tail.  ``current`` may only reach
        a candidate by provably commuting with every operation after it;
        non-coalescible operations are hard barriers.  Returns ``True``
        when ``current`` was consumed by a rule.  Every op the scan
        commuted past on the way to a *successful* combine is recorded as
        a :class:`~repro.compaction.report.ReorderObligation` — the
        surviving statement's effect moved earlier, and the certifier
        re-proves each hop before the window is applied.
        """
        hops: list[OpDelta] = []
        i = len(entries) - 1
        while i >= 0:
            candidate = entries[i]
            if candidate.coalescible:
                outcome = self._combine(candidate, current, report)
                if outcome is DROP_BOTH:
                    del entries[i]
                    self._record_reorders(report, current.op, hops)
                    return True
                if outcome is DROP_PREV:
                    del entries[i]
                    i -= 1
                    continue
                if isinstance(outcome, _Entry):
                    entries[i] = outcome
                    self._record_reorders(report, current.op, hops)
                    return True
            if not candidate.coalescible or not commutes(
                candidate.footprint, current.footprint, self._key_columns
            ):
                return False
            hops.append(candidate.op)
            i -= 1
        return False

    def _record_reorders(
        self,
        report: CompactionReport,
        moved: OpDelta,
        hops: Sequence[OpDelta],
    ) -> None:
        """Flush the commutativity proofs a successful combine relied on."""
        for passed in hops:
            report.reorder_obligations.append(
                ReorderObligation(
                    moved=lineage_key(moved),
                    over=lineage_key(passed),
                    table=moved.table or "",
                    txn_id=moved.txn_id,
                    moved_sequence=moved.sequence,
                    over_sequence=passed.sequence,
                )
            )

    # ------------------------------------------------------------------- rules
    def _combine(
        self, cand: _Entry, current: _Entry, report: CompactionReport
    ) -> CombineResult:
        if cand.footprint.table != current.footprint.table:
            return None
        kind_c = cand.footprint.kind.name
        kind_n = current.footprint.kind.name
        if kind_c == "UPDATE" and kind_n == "UPDATE":
            merged = self._fold_updates(cand, current)
            if merged is not None:
                report.updates_folded += 1
                # The merged statement keeps the candidate's identity, so
                # the later update is absorbed into the earlier one.
                self._absorb(report, current.op, cand.op, "fold_updates")
            return merged
        if kind_c == "INSERT" and kind_n == "INSERT":
            merged = self._fuse_inserts(cand, current)
            if merged is not None:
                report.inserts_fused += 1
                self._absorb(report, current.op, cand.op, "fuse_inserts")
            return merged
        if kind_c == "INSERT" and kind_n == "DELETE":
            if self._annihilates(cand, current):
                report.pairs_annihilated += 1
                # Annihilation: neither statement survives — both effects
                # vanish, with no absorber to point at.
                self._absorb(report, cand.op, None, "annihilate_pair")
                self._absorb(report, current.op, None, "annihilate_pair")
                return DROP_BOTH
            return None
        if kind_c == "UPDATE" and kind_n == "DELETE":
            if self._superseded(cand, current):
                report.updates_superseded += 1
                self._absorb(report, cand.op, current.op, "supersede_update")
                return DROP_PREV
            return None
        return None

    def _absorb(
        self,
        report: CompactionReport,
        absorbed: OpDelta,
        absorber: OpDelta | None,
        rule: str,
    ) -> None:
        """Account one removed statement: report edge + lineage event."""
        report.absorbed.append(
            AbsorbedEdge(
                absorbed=lineage_key(absorbed),
                absorbed_by=None if absorber is None else lineage_key(absorber),
                rule=rule,
            )
        )
        recorder = ambient_pipeline()
        if recorder is not None:
            at_ms = self._clock.now if self._clock is not None else None
            recorder.record_absorbed(absorbed, absorber, rule, at_ms=at_ms)

    def _fold_updates(self, cand: _Entry, current: _Entry) -> _Entry | None:
        c = cand.op.statement
        n = current.op.statement
        assert isinstance(c, ast.UpdateStmt) and isinstance(n, ast.UpdateStmt)
        if c.where != n.where:
            return None
        assigned_c = {a.column for a in c.assignments}
        assigned_n = {a.column for a in n.assignments}
        # The first update must not change which rows the (identical)
        # second predicate matches, and vice versa.
        if cand.footprint.where_columns & (assigned_c | assigned_n):
            return None
        merged: dict[str, ast.Assignment] = {a.column: a for a in c.assignments}
        for assignment in n.assignments:
            reads = referenced_columns(assignment.expr) & assigned_c
            if not reads:
                # Reads only columns the first update left alone: the
                # later assignment sees pre-state either way.  Overwrite.
                merged[assignment.column] = assignment
                continue
            if reads != {assignment.column}:
                return None  # reads a column the first update rewrote
            earlier = merged.get(assignment.column)
            if earlier is None:
                return None
            folded = self._fold_accumulation(
                assignment.column, earlier.expr, assignment.expr
            )
            if folded is None:
                return None
            merged[assignment.column] = ast.Assignment(
                assignment.column, folded
            )
        statement = ast.UpdateStmt(
            table=c.table, assignments=tuple(merged.values()), where=c.where
        )
        return self._merged_entry(cand, statement)

    @staticmethod
    def _fold_accumulation(
        column: str, earlier: ast.Expression, later: ast.Expression
    ) -> ast.Expression | None:
        """``c = c + k1`` then ``c = c + k2`` becomes ``c = c + (k1+k2)``."""
        acc_earlier = self_accumulation(column, earlier)
        acc_later = self_accumulation(column, later)
        if acc_earlier is None or acc_later is None:
            return None
        op, k1 = acc_earlier
        op_later, k2 = acc_later
        if op != op_later:
            return None
        value = k1 + k2 if op == "+" else k1 * k2
        return ast.BinaryOp(op, ast.ColumnRef(column), ast.Literal(value))

    def _fuse_inserts(self, cand: _Entry, current: _Entry) -> _Entry | None:
        c = cand.op.statement
        n = current.op.statement
        assert isinstance(c, ast.InsertStmt) and isinstance(n, ast.InsertStmt)
        if c.select is not None or n.select is not None:
            return None
        if c.columns != n.columns:
            return None
        statement = ast.InsertStmt(
            table=c.table, columns=c.columns, rows=c.rows + n.rows
        )
        return self._merged_entry(cand, statement)

    def _annihilates(self, cand: _Entry, current: _Entry) -> bool:
        insert = cand.op.statement
        delete = current.op.statement
        assert isinstance(insert, ast.InsertStmt)
        assert isinstance(delete, ast.DeleteStmt)
        if insert.select is not None or delete.where is None:
            return False
        table = cand.footprint.table
        pk = self._key_columns.get(table)
        if pk is None:
            return False
        names = (
            insert.columns
            if insert.columns is not None
            else self._table_columns.get(table)
        )
        if names is None or pk not in names:
            return False
        rows: list[dict[str, Any]] = []
        for row in insert.rows:
            if len(row) != len(names) or not all(
                isinstance(expr, ast.Literal) for expr in row
            ):
                return False
            rows.append(
                {name: expr.value for name, expr in zip(names, row)}  # type: ignore[union-attr]
            )
        inserted_keys = {env[pk] for env in rows}
        # (1) Nothing *but* inserted rows can match: the DELETE's range
        # must pin the primary key to points inside the inserted key set.
        # Inserted keys were fresh at the source, so any row with such a
        # key is an inserted row.
        row_range = current.footprint.row_range
        constraint = None if row_range is None else row_range.get(pk)
        if constraint is None or constraint.null_only or not constraint.intervals:
            return False
        if not all(interval.is_point for interval in constraint.intervals):
            return False
        if not {interval.low for interval in constraint.intervals} <= inserted_keys:
            return False
        # (2) Every inserted row must actually match: evaluate the real
        # predicate (exact, unlike the range superset) on each row.
        for env in rows:
            try:
                if not is_true(evaluate(delete.where, env)):
                    return False
            except SqlAnalysisError:
                return False
        return True

    def _superseded(self, cand: _Entry, current: _Entry) -> bool:
        update = cand.op.statement
        delete = current.op.statement
        assert isinstance(update, ast.UpdateStmt)
        assert isinstance(delete, ast.DeleteStmt)
        # The UPDATE must not change the DELETE's membership...
        assigned = {a.column for a in update.assignments}
        if assigned & current.footprint.where_columns:
            return False
        # ...and every row it touches must be provably deleted right after.
        return conjuncts_imply(update.where, delete.where)

    # ---------------------------------------------------------------- plumbing
    def _entry(self, op: OpDelta) -> _Entry:
        if op.analysis is not None:
            footprint = op.analysis.footprint
            determinism = op.analysis.determinism
        else:
            footprint = extract_footprint(
                op.statement, self._table_columns or None
            )
            determinism = statement_determinism(op.statement)
        coalescible = (
            determinism is Determinism.DETERMINISTIC and op.before_image is None
        )
        return _Entry(op=op, footprint=footprint, coalescible=coalescible)

    def _merged_entry(self, cand: _Entry, statement: ast.Statement) -> _Entry:
        op = dataclasses.replace(
            cand.op,
            statement_text=statement.to_sql(),
            _parsed=statement,
            analysis=(
                self._analyzer.analyze_statement(statement)
                if self._analyzer is not None
                else None
            ),
        )
        footprint = (
            op.analysis.footprint
            if op.analysis is not None
            else extract_footprint(statement, self._table_columns or None)
        )
        return _Entry(op=op, footprint=footprint, coalescible=True)

    def _emit(self, report: CompactionReport) -> None:
        metrics = self.metrics
        metrics.counter("compaction.window.passes").inc()
        metrics.counter("compaction.window.ops_in").inc(report.ops_in)
        metrics.counter("compaction.window.ops_out").inc(report.ops_out)
        metrics.counter("compaction.window.bytes_in").inc(report.bytes_in)
        metrics.counter("compaction.window.bytes_out").inc(report.bytes_out)
        metrics.counter("compaction.rule.updates_folded").inc(
            report.updates_folded
        )
        metrics.counter("compaction.rule.inserts_fused").inc(
            report.inserts_fused
        )
        metrics.counter("compaction.rule.pairs_annihilated").inc(
            report.pairs_annihilated
        )
        metrics.counter("compaction.rule.updates_superseded").inc(
            report.updates_superseded
        )

"""Op-Delta log compaction and batching (between capture and integration).

The stage the paper's §4 compactness argument earns but never builds: a
captured Op-Delta window is *rewritten* before it is shipped — redundant
statements coalesce, annihilate or fuse under proofs from
:mod:`repro.analysis` — and the warehouse applies the compacted window in
group-commit batches (one transaction per conflict component) instead of
one transaction per source commit.

* :class:`Coalescer` — the window rewriter (see
  :mod:`repro.compaction.coalescer` for the rule set and safety argument);
* :class:`CompactionReport` — ops/bytes in/out and per-rule accounting;
* the batched apply side lives on
  :meth:`repro.warehouse.OpDeltaIntegrator.integrate_batched`.
"""

from .coalescer import Coalescer
from .report import CompactionReport

__all__ = ["Coalescer", "CompactionReport"]

"""Trigger-based delta extraction (paper §3.1.3, Figure 2).

Row-level triggers capture every state change into a delta table: inserts
record the new values, deletes the old values, updates both images.  The
paper's findings, all reproduced by this implementation on the engine's
trigger machinery:

* the triggered inserts run inside the user's transaction, so their cost
  lands directly on the user's response time (Figure 2's overhead curves);
* insert overhead is roughly constant (~80-100%) because each inserted row
  triggers exactly one extra insert; update/delete overhead *grows* with
  transaction size because the per-row base cost shrinks (scan
  amortisation) while the trigger cost per row does not;
* writing the captured rows to an external database — a staging area on the
  same machine or across the LAN — multiplies the cost by one to two orders
  of magnitude (§3.1.3, reproduced by the remote modes here);
* a failing trigger aborts the user transaction.
"""

from __future__ import annotations

from typing import Any

from ..engine.database import Database
from ..engine.remote import LinkKind, RemoteSession, open_remote
from ..engine.triggers import Trigger, TriggerContext, TriggerEvent, TriggerTiming
from ..engine.utilities import AsciiFile, ExportDump, ascii_dump_table, export_table
from ..errors import ExtractionError
from ..sql.ast_nodes import sql_literal
from .deltas import DeltaBatch
from .writers import DeltaTableWriter, delta_rows_to_batch, delta_table_schema


class TriggerExtractor:
    """Installs capture triggers on one source table and drains the deltas."""

    TRIGGER_PREFIX = "cdc"

    def __init__(
        self,
        database: Database,
        table_name: str,
        delta_table: str | None = None,
    ) -> None:
        self._database = database
        self._table = database.table(table_name)
        self.table_name = table_name
        self.delta_table_name = (
            delta_table if delta_table is not None else f"{table_name}_cdc"
        )
        self._writer: DeltaTableWriter | None = None
        self._remote: RemoteSession | None = None
        self._remote_seq = 0
        self._installed = False
        self._m_captured = database.metrics.counter(
            "extract.trigger.rows_captured", table=table_name
        )

    # ------------------------------------------------------------------ setup
    def install(self) -> None:
        """Create the local delta table and the three capture triggers."""
        if self._installed:
            raise ExtractionError("capture triggers are already installed")
        self._writer = DeltaTableWriter(
            self._database, self._table.schema, self.delta_table_name
        )
        self._add_triggers(self._local_insert, self._local_update, self._local_delete)
        self._installed = True

    def install_remote(self, staging: Database, link: LinkKind) -> None:
        """Capture into a delta table in *another* database over a link.

        Models §3.1.3's remote-capture experiment: every triggered row
        becomes a statement shipped over IPC or the LAN, inside the user's
        transaction.
        """
        if self._installed:
            raise ExtractionError("capture triggers are already installed")
        schema = delta_table_schema(self._table.schema, self.delta_table_name)
        if not staging.has_table(self.delta_table_name):
            staging.create_table(schema)
        self._remote = open_remote(self._database, staging, link)
        self._add_triggers(self._remote_insert, self._remote_update, self._remote_delete)
        self._installed = True

    def uninstall(self) -> None:
        """Drop the capture triggers (the delta table is left for draining)."""
        if not self._installed:
            return
        for event in TriggerEvent:
            self._table.triggers.drop(self._trigger_name(event))
        self._installed = False

    @property
    def is_installed(self) -> bool:
        return self._installed

    def _add_triggers(self, on_insert, on_update, on_delete) -> None:
        actions = {
            TriggerEvent.INSERT: on_insert,
            TriggerEvent.UPDATE: on_update,
            TriggerEvent.DELETE: on_delete,
        }
        for event, action in actions.items():
            self._table.triggers.add(
                Trigger(self._trigger_name(event), event, TriggerTiming.AFTER, action)
            )

    def _trigger_name(self, event: TriggerEvent) -> str:
        return f"{self.TRIGGER_PREFIX}_{self.table_name}_{event.value.lower()}"

    # ----------------------------------------------------------- local actions
    def _local_insert(self, context: TriggerContext) -> None:
        assert self._writer is not None and context.new_values is not None
        self._writer.write_insert(context.transaction, context.new_values)
        self._m_captured.inc()

    def _local_update(self, context: TriggerContext) -> None:
        assert self._writer is not None
        assert context.old_values is not None and context.new_values is not None
        self._writer.write_update(
            context.transaction, context.old_values, context.new_values
        )
        self._m_captured.inc()

    def _local_delete(self, context: TriggerContext) -> None:
        assert self._writer is not None and context.old_values is not None
        self._writer.write_delete(context.transaction, context.old_values)
        self._m_captured.inc()

    # ---------------------------------------------------------- remote actions
    def _remote_insert(self, context: TriggerContext) -> None:
        assert context.new_values is not None
        self._ship(context, "I", "A", context.new_values)

    def _remote_update(self, context: TriggerContext) -> None:
        assert context.old_values is not None and context.new_values is not None
        self._remote_seq += 1
        seq = self._remote_seq
        self._ship(context, "U", "B", context.old_values, seq)
        self._ship(context, "U", "A", context.new_values, seq)

    def _remote_delete(self, context: TriggerContext) -> None:
        assert context.old_values is not None
        self._ship(context, "D", "B", context.old_values)

    def _ship(
        self,
        context: TriggerContext,
        op: str,
        img: str,
        row: tuple[Any, ...],
        seq: int | None = None,
    ) -> None:
        assert self._remote is not None
        if seq is None:
            self._remote_seq += 1
            seq = self._remote_seq
        values = (seq, op, img, context.transaction.txn_id) + tuple(row)
        literals = ", ".join(sql_literal(v) for v in values)
        self._remote.execute(
            f"INSERT INTO {self.delta_table_name} VALUES ({literals})"
        )
        self._m_captured.inc()

    # ------------------------------------------------------------------ drain
    def drain_rows(self) -> list[tuple[Any, ...]]:
        """Read and clear the local delta table's rows."""
        writer = self._require_local()
        with self._database.tracer.span(
            "extract.trigger.drain", table=self.table_name
        ):
            rows = [values for _rid, values in writer.table.scan()]
            writer.truncate()
        self._database.metrics.counter(
            "extract.trigger.rows_drained", table=self.table_name
        ).inc(len(rows))
        return rows

    def drain_to_batch(self) -> DeltaBatch:
        """Drain the delta table into structured delta records."""
        batch = delta_rows_to_batch(self._table.schema, self.drain_rows())
        self._database.metrics.counter(
            "extract.trigger.delta_bytes", table=self.table_name
        ).inc(batch.size_bytes)
        return batch

    def export_delta_table(self) -> ExportDump:
        """Export the delta table (the extra step "output to table" needs)."""
        self._require_local()
        return export_table(self._database, self.delta_table_name)

    def ascii_dump_delta_table(self) -> AsciiFile:
        """ASCII-dump the delta table (portable alternative to Export)."""
        self._require_local()
        return ascii_dump_table(self._database, self.delta_table_name)

    def _require_local(self) -> DeltaTableWriter:
        if self._writer is None:
            raise ExtractionError(
                "no local delta table (extractor was installed in remote mode)"
            )
        return self._writer

"""Timestamp-based delta extraction (paper §3.1.1, Table 2).

If the source maintains a ``last_modified`` column, deltas within a period
are obtained by a query — ``SELECT * FROM PARTS WHERE last_modified_date >
12/5/99``.  The method:

* requires a table scan unless an index exists on the timestamp column —
  and even then the optimizer ignores the index when the delta is a large
  fraction of the table (modelled by the planner's selectivity threshold);
* can output to a **file** (nothing further needed) or to a **table**
  (which must then be Exported or dumped to leave the source system);
* only sees the *final* state of each row — intermediate state changes and
  deletes are invisible (tests demonstrate both limitations).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..engine.database import Database
from ..engine.schema import TableSchema
from ..engine.session import Session
from ..engine.utilities import AsciiFile, ExportDump, ascii_dump_rows, export_table
from ..errors import ExtractionError
from .deltas import ChangeKind, DeltaBatch, DeltaRecord


@dataclass
class TimestampExtraction:
    """Outcome of one timestamp-based extraction run."""

    rows_extracted: int
    elapsed_ms: float
    plan: str
    file: AsciiFile | None = None
    delta_table: str | None = None
    export: ExportDump | None = None

    @property
    def output_bytes(self) -> int:
        if self.file is not None:
            return self.file.size_bytes
        if self.export is not None:
            return self.export.size_bytes
        return 0


class TimestampExtractor:
    """Extracts rows modified after a cutoff from one source table."""

    def __init__(self, database: Database, table_name: str,
                 session: Session | None = None) -> None:
        self._database = database
        self._table = database.table(table_name)
        if self._table.schema.timestamp_column is None:
            raise ExtractionError(
                f"table {table_name!r} has no timestamp column; the "
                "timestamp method only applies to sources that support "
                "time stamps natively"
            )
        self.table_name = table_name
        self.timestamp_column = self._table.schema.timestamp_column
        self._session = session if session is not None else database.internal_session()

    # ------------------------------------------------------------------ output
    def extract_to_file(self, since: float) -> TimestampExtraction:
        """SELECT the delta and write complete records to a flat file."""
        started = self._database.clock.now
        with self._scan_metrics("file"):
            with self._database.tracer.span(
                "extract.timestamp.file", table=self.table_name
            ):
                result = self._session.execute(self._select_sql(since))
                output = ascii_dump_rows(
                    self._database, self._table.schema, result.rows
                )
        self._record_output(len(result.rows), output.size_bytes)
        return TimestampExtraction(
            rows_extracted=len(result.rows),
            elapsed_ms=self._database.clock.now - started,
            plan=result.plan,
            file=output,
        )

    def extract_to_table(
        self, since: float, delta_table: str | None = None
    ) -> TimestampExtraction:
        """INSERT .. SELECT the delta into a local delta table."""
        started = self._database.clock.now
        target = delta_table if delta_table is not None else f"{self.table_name}_delta"
        if not self._database.has_table(target):
            # The delta table is a plain unindexed copy of the source shape.
            plain = TableSchema(
                target, self._table.schema.columns, primary_key=None,
                timestamp_column=self._table.schema.timestamp_column,
            )
            self._database.create_table(plain)
        insert_sql = f"INSERT INTO {target} {self._select_sql(since)}"
        with self._scan_metrics("table"):
            with self._database.tracer.span(
                "extract.timestamp.table", table=self.table_name
            ):
                result = self._session.execute(insert_sql)
        self._record_output(result.rows_affected, 0)
        return TimestampExtraction(
            rows_extracted=result.rows_affected,
            elapsed_ms=self._database.clock.now - started,
            plan=result.plan,
            delta_table=target,
        )

    def extract_to_table_and_export(
        self, since: float, delta_table: str | None = None
    ) -> TimestampExtraction:
        """Table output followed by the Export utility (Table 2, row 3)."""
        extraction = self.extract_to_table(since, delta_table)
        started = self._database.clock.now
        assert extraction.delta_table is not None
        with self._database.tracer.span(
            "extract.timestamp.export", table=self.table_name
        ):
            dump = export_table(self._database, extraction.delta_table)
        self._database.metrics.counter(
            "extract.timestamp.delta_bytes"
        ).inc(dump.size_bytes)
        extraction.export = dump
        extraction.elapsed_ms += self._database.clock.now - started
        return extraction

    # ------------------------------------------------------------------ deltas
    def extract_deltas(self, since: float) -> DeltaBatch:
        """Return the delta as records (all UPSERTs — see module docstring)."""
        key_index = self._table.schema.primary_key_index()
        if key_index is None:
            raise ExtractionError(
                f"table {self.table_name!r} needs a primary key to build "
                "delta records"
            )
        with self._scan_metrics("deltas"):
            with self._database.tracer.span(
                "extract.timestamp.deltas", table=self.table_name
            ):
                result = self._session.execute(self._select_sql(since))
        batch = DeltaBatch(self.table_name, self._table.schema)
        for row in result.rows:
            batch.append(
                DeltaRecord(ChangeKind.UPSERT, row[key_index], after=tuple(row))
            )
        self._record_output(len(batch.records), batch.size_bytes)
        return batch

    def _select_sql(self, since: float) -> str:
        return (
            f"SELECT * FROM {self.table_name} "
            f"WHERE {self.timestamp_column} > {since!r}"
        )

    # ------------------------------------------------------------------- obs
    @contextmanager
    def _scan_metrics(self, output: str) -> Iterator[None]:
        """Attribute the rows the query visits to this extraction method.

        ``engine.table.rows_scanned`` advances as the executor walks the
        source table; the delta across the region is what *this* method
        scanned — the denominator of the paper's scanned-vs-emitted story.
        """
        metrics = self._database.metrics
        before = metrics.total("engine.table.rows_scanned")
        try:
            yield
        finally:
            metrics.counter("extract.timestamp.rows_scanned").inc(
                metrics.total("engine.table.rows_scanned") - before
            )

    def _record_output(self, rows_emitted: int, output_bytes: int) -> None:
        metrics = self._database.metrics
        metrics.counter("extract.timestamp.rows_emitted").inc(rows_emitted)
        if output_bytes:
            metrics.counter("extract.timestamp.delta_bytes").inc(output_bytes)

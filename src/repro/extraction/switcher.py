"""Cost-model-driven adaptive extraction switching.

The paper prices each extraction method in isolation (§3) and Op-Delta
against value deltas at the warehouse (§4); a production pipeline has to
*choose*, per table and per shippable window.  The switcher closes that
loop: it prices one window under every capture method — the four §3
value-delta extractors plus Op-Delta capture — using the same calibrated
:class:`~repro.engine.costs.CostModel` the engine charges, and routes
each table to the cheapest.

Op-Delta replay wins whenever the window is shallow: its capture cost is
constant per statement and its apply cost is proportional to the *rows
the statements touch*.  But when backlog depth (many windows' worth of
churn against the same rows) or transaction shape (scan-heavy updates
over a small table) make the statement history more expensive than the
state it produces, a snapshot extract plus bulk-load staging
(:meth:`~repro.warehouse.warehouse.Warehouse.staging_refresh`) is
cheaper — the switcher flips exactly there.

Every decision is recorded as a ``ROUTED`` pipeline lifecycle event, and
every op a decision routes away from op-delta replay is settled as
``PRUNED`` with a ``switcher-<method>`` stage, so the
:class:`~repro.obs.pipeline.auditor.PipelineAuditor`'s conservation law
still closes over a routed window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.opdelta import OpDelta, OpDeltaTransaction, OpKind
from ..engine.costs import DEFAULT_COST_MODEL, CostModel
from ..obs.pipeline.context import ambient_pipeline


class ExtractionMethod(enum.Enum):
    """The five capture methods the switcher prices (paper §3 + §4)."""

    OP_DELTA = "op-delta"
    TIMESTAMP = "timestamp"
    SNAPSHOT_DIFF = "snapshot-diff"
    TRIGGER = "trigger"
    LOG_SCAN = "log-scan"


#: Methods whose warehouse side is a staged bulk reload instead of
#: statement replay (the snapshot ships the whole state, so the cheapest
#: apply is the Loader path — paper Table 1).
STAGING_METHODS = frozenset({ExtractionMethod.SNAPSHOT_DIFF})


@dataclass(frozen=True)
class TableProfile:
    """What the switcher knows about one source table's steady state."""

    #: Current cardinality of the table (drives scan/snapshot costs).
    rows: int
    #: Mean encoded row width in bytes (drives transport/log costs).
    row_bytes: int = 64


@dataclass(frozen=True)
class WindowShape:
    """Per-table summary of one shippable window of Op-Deltas."""

    table: str
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    #: Total wire bytes of the table's ops (statements + before images).
    payload_bytes: int = 0

    @property
    def statements(self) -> int:
        return self.inserts + self.updates + self.deletes

    @classmethod
    def from_window(
        cls, table: str, groups: Iterable[OpDeltaTransaction]
    ) -> "WindowShape":
        inserts = updates = deletes = payload = 0
        for group in groups:
            for op in group.operations:
                if op.table != table:
                    continue
                if op.kind is OpKind.INSERT:
                    inserts += 1
                elif op.kind is OpKind.UPDATE:
                    updates += 1
                else:
                    deletes += 1
                payload += op.size_bytes
        return cls(
            table=table,
            inserts=inserts,
            updates=updates,
            deletes=deletes,
            payload_bytes=payload,
        )

    def backlog_depth(self, profile: TableProfile) -> float:
        """Churn statements per live row — the backlog-pressure signal.

        Around 0 the window barely grazes the table and statement replay
        is obviously right; near (or past) 1.0 the window rewrites the
        table wholesale and shipping the state starts to win.
        """
        if profile.rows <= 0:
            return float(self.updates + self.deletes)
        return (self.updates + self.deletes) / profile.rows


@dataclass(frozen=True)
class MethodEstimate:
    """Priced capture + transport + apply for one method on one window."""

    method: ExtractionMethod
    capture_ms: float
    transport_ms: float
    apply_ms: float

    @property
    def total_ms(self) -> float:
        return self.capture_ms + self.transport_ms + self.apply_ms


@dataclass(frozen=True)
class RoutingDecision:
    """One (table, window) routing verdict, with its full price sheet."""

    table: str
    method: ExtractionMethod
    estimates: tuple[MethodEstimate, ...]
    shape: WindowShape
    backlog_depth: float = 0.0

    @property
    def use_staging(self) -> bool:
        """True when the table leaves the op-delta replay path."""
        return self.method is not ExtractionMethod.OP_DELTA

    def estimate_for(self, method: ExtractionMethod) -> MethodEstimate:
        for estimate in self.estimates:
            if estimate.method is method:
                return estimate
        raise KeyError(method.value)

    def render(self) -> str:
        prices = ", ".join(
            f"{e.method.value}={e.total_ms:.1f}ms" for e in self.estimates
        )
        return (
            f"{self.table}: {self.method.value} "
            f"(backlog {self.backlog_depth:.2f}; {prices})"
        )


class AdaptiveExtractionSwitcher:
    """Prices a window per table under all five methods and routes it.

    ``profiles`` supplies table cardinalities/row widths (tables without
    a profile default to :attr:`default_profile`).  ``staging_bias``
    scales the non-op-delta estimates before comparison — above 1.0 the
    switcher is conservative about leaving the replay path (hysteresis
    against flapping on windows priced near the crossover).
    """

    def __init__(
        self,
        costs: CostModel = DEFAULT_COST_MODEL,
        profiles: Mapping[str, TableProfile] | None = None,
        staging_bias: float = 1.1,
        default_profile: TableProfile = TableProfile(rows=10_000),
    ) -> None:
        self._costs = costs
        self._profiles = dict(profiles) if profiles is not None else {}
        self._staging_bias = staging_bias
        self.default_profile = default_profile
        #: Every decision ever taken, in window order (for reports).
        self.decisions: list[RoutingDecision] = []

    def profile_for(self, table: str) -> TableProfile:
        return self._profiles.get(table, self.default_profile)

    def set_profile(self, table: str, profile: TableProfile) -> None:
        self._profiles[table] = profile

    # ------------------------------------------------------------- estimates
    def estimate(self, shape: WindowShape) -> tuple[MethodEstimate, ...]:
        """Price the window under every method, op-delta first."""
        profile = self.profile_for(shape.table)
        return (
            self._estimate_op_delta(shape),
            self._estimate_timestamp(shape, profile),
            self._estimate_snapshot_diff(shape, profile),
            self._estimate_trigger(shape, profile),
            self._estimate_log_scan(shape, profile),
        )

    def _row_apply_ms(self, shape: WindowShape, rows_touched: float) -> float:
        """Warehouse-side cost of replaying the window's statements."""
        c = self._costs
        per_row = (
            shape.inserts * (c.row_insert_cpu + c.index_insert)
            + shape.updates * c.row_update_cpu
            + shape.deletes * (c.row_delete_cpu + c.index_delete)
        )
        wal = shape.statements * c.log_append(
            self.profile_for(shape.table).row_bytes
        )
        scans = rows_touched * c.row_scan_cpu
        return shape.statements * c.stmt_overhead + per_row + wal + scans

    def _value_delta_apply_ms(self, shape: WindowShape, records: float) -> float:
        """Value-delta integration: DELETE + INSERT per update record."""
        c = self._costs
        profile = self.profile_for(shape.table)
        statements = shape.inserts + 2 * (shape.updates + shape.deletes)
        per_row = (
            shape.inserts * (c.row_insert_cpu + c.index_insert)
            + (shape.updates + shape.deletes)
            * (c.row_delete_cpu + c.index_delete + c.row_insert_cpu + c.index_insert)
        )
        wal = records * c.log_append(profile.row_bytes)
        return statements * c.stmt_overhead + per_row + wal

    def _estimate_op_delta(self, shape: WindowShape) -> MethodEstimate:
        c = self._costs
        profile = self.profile_for(shape.table)
        # Capture is the paper's headline: constant per statement, no
        # scans, no triggers — one middleware interception each.
        capture = shape.statements * c.ascii_format_row
        transport = c.network_transfer(shape.payload_bytes)
        # Each UPDATE/DELETE statement re-finds its rows at the warehouse.
        rows_touched = (shape.updates + shape.deletes) * profile.rows
        return MethodEstimate(
            ExtractionMethod.OP_DELTA,
            capture_ms=capture,
            transport_ms=transport,
            apply_ms=self._row_apply_ms(shape, rows_touched),
        )

    def _estimate_timestamp(
        self, shape: WindowShape, profile: TableProfile
    ) -> MethodEstimate:
        c = self._costs
        touched = shape.statements
        # One predicate scan over the last-modified column, then render
        # the touched rows.  Deletes are invisible to this method — the
        # extra snapshot reconciliation is priced in, like §3.1 notes.
        capture = (
            profile.rows * (c.row_scan_cpu + c.index_lookup)
            + touched * c.ascii_format_row
            + shape.deletes * profile.rows * c.row_scan_cpu
        )
        transport = c.network_transfer(touched * profile.row_bytes)
        return MethodEstimate(
            ExtractionMethod.TIMESTAMP,
            capture_ms=capture,
            transport_ms=transport,
            apply_ms=self._value_delta_apply_ms(shape, touched),
        )

    def _estimate_snapshot_diff(
        self, shape: WindowShape, profile: TableProfile
    ) -> MethodEstimate:
        c = self._costs
        # Dump the table, read the previous snapshot back, sort-merge.
        capture = profile.rows * (
            c.row_scan_cpu
            + c.export_row_cpu
            + c.ascii_format_row
            + c.ascii_parse_row
        ) + c.file_read(profile.rows * profile.row_bytes)
        # The whole state ships: that is what staging reloads from.
        transport = c.network_transfer(profile.rows * profile.row_bytes)
        # Apply is the Loader path: truncate + direct block bulk load,
        # plus re-deriving the views over the staged rows.
        apply = profile.rows * (
            c.loader_row_cpu
            + c.row_insert_cpu * c.bulk_internal_cpu_factor
            + c.index_insert
        )
        return MethodEstimate(
            ExtractionMethod.SNAPSHOT_DIFF,
            capture_ms=capture,
            transport_ms=transport,
            apply_ms=apply,
        )

    def _estimate_trigger(
        self, shape: WindowShape, profile: TableProfile
    ) -> MethodEstimate:
        c = self._costs
        touched = shape.statements
        # Row triggers tax the source OLTP per touched row (Figure 2):
        # firing machinery + one delta-table insert + its WAL append.
        capture = touched * (
            c.trigger_invoke + c.row_insert_cpu + c.log_append(profile.row_bytes)
        )
        transport = c.network_transfer(touched * profile.row_bytes)
        return MethodEstimate(
            ExtractionMethod.TRIGGER,
            capture_ms=capture,
            transport_ms=transport,
            apply_ms=self._value_delta_apply_ms(shape, touched),
        )

    def _estimate_log_scan(
        self, shape: WindowShape, profile: TableProfile
    ) -> MethodEstimate:
        c = self._costs
        touched = shape.statements
        # Read the archive-log bytes the window produced and parse the
        # relevant records out of everything else in the log.
        log_bytes = touched * (profile.row_bytes + 32)
        capture = c.file_read(log_bytes) + touched * c.ascii_parse_row
        transport = c.network_transfer(touched * profile.row_bytes)
        return MethodEstimate(
            ExtractionMethod.LOG_SCAN,
            capture_ms=capture,
            transport_ms=transport,
            apply_ms=self._value_delta_apply_ms(shape, touched),
        )

    # -------------------------------------------------------------- decisions
    def decide(self, shape: WindowShape) -> RoutingDecision:
        """Route one table's window to its cheapest method.

        Pure computation — no virtual time is charged and no events are
        recorded here; :meth:`route_window` records the decision.
        """
        estimates = self.estimate(shape)
        op_delta = estimates[0]
        best = op_delta
        for estimate in estimates[1:]:
            if estimate.total_ms * self._staging_bias < best.total_ms:
                best = estimate
        # Only methods with a staged warehouse path actually divert the
        # window; a cheaper pure-value-delta price is advisory (the ops
        # are already captured as op-deltas) and keeps replay.
        chosen = (
            best.method if best.method in STAGING_METHODS else op_delta.method
        )
        decision = RoutingDecision(
            table=shape.table,
            method=chosen,
            estimates=estimates,
            shape=shape,
            backlog_depth=shape.backlog_depth(self.profile_for(shape.table)),
        )
        self.decisions.append(decision)
        return decision

    def route_window(
        self,
        groups: Iterable[OpDeltaTransaction],
        at_ms: float | None = None,
    ) -> tuple[list[OpDeltaTransaction], list[RoutingDecision]]:
        """Split one window: groups to replay vs tables to stage.

        Returns the surviving groups (ops on staged tables removed,
        emptied groups dropped) and every per-table decision.  Each
        decision is recorded as a ``ROUTED`` lifecycle event; each op
        routed away is settled as ``PRUNED`` with stage
        ``switcher-<method>``, so lineage conservation closes.
        """
        window = list(groups)
        tables = sorted({op.table for g in window for op in g.operations})
        decisions = [
            self.decide(WindowShape.from_window(table, window))
            for table in tables
        ]
        staged = {d.table: d for d in decisions if d.use_staging}
        recorder = ambient_pipeline()
        if recorder is not None:
            for decision in decisions:
                chosen = decision.estimate_for(decision.method)
                recorder.record_routed(
                    decision.table,
                    decision.method.value,
                    at_ms=at_ms if at_ms is not None else 0.0,
                    detail=(
                        f"backlog={decision.backlog_depth:.2f} "
                        f"est={chosen.total_ms:.1f}ms"
                    ),
                )
        if not staged:
            return window, decisions
        kept: list[OpDeltaTransaction] = []
        for group in window:
            surviving: list[OpDelta] = []
            for op in group.operations:
                decision = staged.get(op.table)
                if decision is None:
                    surviving.append(op)
                elif recorder is not None:
                    recorder.record_pruned(
                        op,
                        at_ms=at_ms,
                        stage=f"switcher-{decision.method.value}",
                    )
            if not surviving:
                continue
            if len(surviving) == len(group.operations):
                kept.append(group)
            else:
                kept.append(
                    OpDeltaTransaction(
                        txn_id=group.txn_id,
                        operations=surviving,
                        committed_at=group.committed_at,
                    )
                )
        return kept, decisions

    @property
    def staged_tables(self) -> list[str]:
        """Tables the most recent window diverted to bulk-load staging."""
        latest: dict[str, RoutingDecision] = {}
        for decision in self.decisions:
            latest[decision.table] = decision
        return sorted(t for t, d in latest.items() if d.use_staging)

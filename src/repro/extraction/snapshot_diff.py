"""Differential snapshots (paper §3.1.2; Labio & Garcia-Molina, VLDB '96).

When a source only offers periodic dumps, the delta is computed by
comparing consecutive snapshots.  Three of the LGM algorithm families are
implemented:

* ``naive`` — nested-loop comparison; quadratic, the baseline.
* ``sort_merge`` — sort both snapshots by key, then merge; the classic
  O(n log n) approach.
* ``window`` — a single pass over both files with bounded aging buffers.
  It never sorts and uses constant memory, but a row pair whose positions
  drift apart by more than the window is reported as a delete + insert
  instead of an update.  That output is *non-minimal but still correct*:
  applying it to the old snapshot yields the new one (the property the
  tests verify for all three algorithms).

Like the timestamp method, snapshot differentials only see final states —
intermediate changes between snapshots are lost.

Each public ``diff_*`` entry point runs under an
``extract.snapshot.<algorithm>`` span and records the scanned-vs-emitted
counters on the database's metrics registry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from ..engine.database import Database
from ..engine.snapshots import Snapshot
from ..errors import SnapshotError
from .deltas import ChangeKind, DeltaBatch, DeltaRecord

#: Default aging-buffer size (rows) for the window algorithm.
DEFAULT_WINDOW = 256


def _common_checks(old: Snapshot, new: Snapshot) -> int:
    if old.table_name != new.table_name:
        raise SnapshotError(
            f"cannot diff snapshots of different tables: "
            f"{old.table_name!r} vs {new.table_name!r}"
        )
    if old.schema.signature() != new.schema.signature():
        raise SnapshotError("snapshot schemas diverge; cannot compute a differential")
    key_index = old.schema.primary_key_index()
    if key_index is None:
        raise SnapshotError("differential snapshots require a primary key")
    return key_index


def _observe_diff(
    database: Database,
    algorithm: str,
    old: Snapshot,
    new: Snapshot,
    batch: DeltaBatch,
) -> DeltaBatch:
    """Record the scanned-vs-emitted story for one differential run."""
    metrics = database.metrics
    metrics.counter(
        "extract.snapshot.rows_scanned", algorithm=algorithm
    ).inc(len(old.rows) + len(new.rows))
    metrics.counter(
        "extract.snapshot.rows_emitted", algorithm=algorithm
    ).inc(len(batch.records))
    metrics.counter(
        "extract.snapshot.delta_bytes", algorithm=algorithm
    ).inc(batch.size_bytes)
    return batch


def diff_naive(database: Database, old: Snapshot, new: Snapshot) -> DeltaBatch:
    """Nested-loop differential: compare every old row against every new row."""
    key_index = _common_checks(old, new)
    with database.tracer.span("extract.snapshot.naive", table=old.table_name):
        batch = _diff_naive(database, key_index, old, new)
    return _observe_diff(database, "naive", old, new, batch)


def _diff_naive(
    database: Database, key_index: int, old: Snapshot, new: Snapshot
) -> DeltaBatch:
    clock, costs = database.clock, database.costs
    batch = DeltaBatch(old.table_name, old.schema)
    matched_new: set[int] = set()
    for old_row in old.rows:
        old_key = old_row[key_index]
        found = None
        for position, new_row in enumerate(new.rows):
            clock.advance(costs.row_scan_cpu)
            if new_row[key_index] == old_key:
                found = (position, new_row)
                break
        if found is None:
            batch.append(DeltaRecord(ChangeKind.DELETE, old_key, before=old_row))
        else:
            position, new_row = found
            matched_new.add(position)
            if new_row != old_row:
                batch.append(
                    DeltaRecord(ChangeKind.UPDATE, old_key, before=old_row, after=new_row)
                )
    for position, new_row in enumerate(new.rows):
        clock.advance(costs.row_scan_cpu)
        if position not in matched_new:
            batch.append(
                DeltaRecord(ChangeKind.INSERT, new_row[key_index], after=new_row)
            )
    return batch


def diff_sort_merge(database: Database, old: Snapshot, new: Snapshot) -> DeltaBatch:
    """Sort both snapshots by key, then merge-compare."""
    key_index = _common_checks(old, new)
    with database.tracer.span("extract.snapshot.sort_merge", table=old.table_name):
        batch = _diff_sort_merge(database, key_index, old, new)
    return _observe_diff(database, "sort_merge", old, new, batch)


def _diff_sort_merge(
    database: Database, key_index: int, old: Snapshot, new: Snapshot
) -> DeltaBatch:
    clock, costs = database.clock, database.costs

    def sort_cost(rows: list) -> None:
        n = len(rows)
        if n > 1:
            comparisons = n * max(1, n.bit_length())  # ~ n log2 n
            clock.advance(costs.row_scan_cpu * comparisons)

    old_sorted = sorted(old.rows, key=lambda row: row[key_index])
    sort_cost(old_sorted)
    new_sorted = sorted(new.rows, key=lambda row: row[key_index])
    sort_cost(new_sorted)

    batch = DeltaBatch(old.table_name, old.schema)
    i = j = 0
    while i < len(old_sorted) or j < len(new_sorted):
        clock.advance(costs.row_scan_cpu)
        if j >= len(new_sorted):
            row = old_sorted[i]
            batch.append(DeltaRecord(ChangeKind.DELETE, row[key_index], before=row))
            i += 1
        elif i >= len(old_sorted):
            row = new_sorted[j]
            batch.append(DeltaRecord(ChangeKind.INSERT, row[key_index], after=row))
            j += 1
        else:
            old_row, new_row = old_sorted[i], new_sorted[j]
            old_key, new_key = old_row[key_index], new_row[key_index]
            if old_key == new_key:
                if old_row != new_row:
                    batch.append(
                        DeltaRecord(ChangeKind.UPDATE, old_key,
                                    before=old_row, after=new_row)
                    )
                i += 1
                j += 1
            elif old_key < new_key:
                batch.append(DeltaRecord(ChangeKind.DELETE, old_key, before=old_row))
                i += 1
            else:
                batch.append(DeltaRecord(ChangeKind.INSERT, new_key, after=new_row))
                j += 1
    return batch


def diff_window(
    database: Database, old: Snapshot, new: Snapshot, window: int = DEFAULT_WINDOW
) -> DeltaBatch:
    """Single-pass differential with bounded aging buffers.

    Both files are consumed in file order.  Unmatched rows wait in a
    bounded buffer; a row aged out of the buffer is reported immediately
    (old rows as deletes, new rows as inserts), so a matching pair further
    apart than ``window`` degrades to delete + insert.
    """
    if window < 1:
        raise SnapshotError(f"window must be at least 1, got {window}")
    key_index = _common_checks(old, new)
    with database.tracer.span("extract.snapshot.window", table=old.table_name):
        batch = _order_pairs(_diff_window(database, key_index, old, new, window))
    return _observe_diff(database, "window", old, new, batch)


def _diff_window(
    database: Database, key_index: int, old: Snapshot, new: Snapshot, window: int
) -> DeltaBatch:
    clock, costs = database.clock, database.costs
    batch = DeltaBatch(old.table_name, old.schema)

    old_buffer: OrderedDict[Any, tuple[Any, ...]] = OrderedDict()
    new_buffer: OrderedDict[Any, tuple[Any, ...]] = OrderedDict()

    def emit_aged(buffer: OrderedDict, is_old: bool) -> None:
        while len(buffer) > window:
            key, row = buffer.popitem(last=False)
            if is_old:
                batch.append(DeltaRecord(ChangeKind.DELETE, key, before=row))
            else:
                batch.append(DeltaRecord(ChangeKind.INSERT, key, after=row))

    i = j = 0
    while i < len(old.rows) or j < len(new.rows):
        if i < len(old.rows):
            row = old.rows[i]
            i += 1
            clock.advance(costs.row_scan_cpu)
            key = row[key_index]
            match = new_buffer.pop(key, None)
            if match is not None:
                if match != row:
                    batch.append(
                        DeltaRecord(ChangeKind.UPDATE, key, before=row, after=match)
                    )
            else:
                old_buffer[key] = row
                emit_aged(old_buffer, is_old=True)
        if j < len(new.rows):
            row = new.rows[j]
            j += 1
            clock.advance(costs.row_scan_cpu)
            key = row[key_index]
            match = old_buffer.pop(key, None)
            if match is not None:
                if match != row:
                    batch.append(
                        DeltaRecord(ChangeKind.UPDATE, key, before=match, after=row)
                    )
            else:
                new_buffer[key] = row
                emit_aged(new_buffer, is_old=False)
    for key, row in old_buffer.items():
        batch.append(DeltaRecord(ChangeKind.DELETE, key, before=row))
    for key, row in new_buffer.items():
        batch.append(DeltaRecord(ChangeKind.INSERT, key, after=row))
    return batch


def _order_pairs(batch: DeltaBatch) -> DeltaBatch:
    """Ensure a key's spurious DELETE precedes its spurious INSERT.

    An out-of-window match degrades to a delete + insert pair, and the new
    file's insert can be emitted before the old file's delete.  Keys are
    independent, so the pairs are moved to the end of the batch in
    delete-then-insert order, making the batch directly applicable.
    """
    delete_keys = {r.key for r in batch.records if r.kind is ChangeKind.DELETE}
    insert_keys = {r.key for r in batch.records if r.kind is ChangeKind.INSERT}
    paired = delete_keys & insert_keys
    if not paired:
        return batch
    kept = [r for r in batch.records if r.key not in paired]
    deletes = {r.key: r for r in batch.records
               if r.key in paired and r.kind is ChangeKind.DELETE}
    inserts = {r.key: r for r in batch.records
               if r.key in paired and r.kind is ChangeKind.INSERT}
    for key in deletes:
        kept.append(deletes[key])
        kept.append(inserts[key])
    batch.records = kept
    return batch


#: Registry used by the benchmark harness and the ablation study.
ALGORITHMS: dict[str, Callable[[Database, Snapshot, Snapshot], DeltaBatch]] = {
    "naive": diff_naive,
    "sort_merge": diff_sort_merge,
    "window": diff_window,
}


def diff_snapshots(
    database: Database, old: Snapshot, new: Snapshot, algorithm: str = "sort_merge"
) -> DeltaBatch:
    """Compute the differential with the named algorithm."""
    try:
        function = ALGORITHMS[algorithm]
    except KeyError:
        raise SnapshotError(
            f"unknown snapshot-differential algorithm {algorithm!r}; "
            f"choose from {sorted(ALGORITHMS)}"
        ) from None
    return function(database, old, new)

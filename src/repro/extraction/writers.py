"""Output targets for captured deltas (paper §3, "Output to File / Table").

Every extraction method except log scanning has to put its deltas
somewhere.  Two targets exist:

* **file** — an OS flat file; no further step is needed to move the deltas
  out of the source system.
* **table** — a delta table inside the source database; an extra Export or
  ASCII dump step is then required to get the deltas out, which is what
  makes the "Table output" rows of Table 2 slower end to end.

The delta-table layout prefixes the source columns with bookkeeping
columns: a change sequence (pairs an update's before/after rows), the
change operation, which image the row is, and the capturing transaction.
"""

from __future__ import annotations

from typing import Any

from ..engine.database import Database
from ..engine.schema import Column, TableSchema
from ..engine.table import InsertMode, Table
from ..engine.transactions import Transaction
from ..engine.types import INTEGER, char
from ..errors import ExtractionError
from .deltas import ChangeKind, DeltaBatch, DeltaRecord

#: Bookkeeping columns prepended to the source schema in a delta table.
DELTA_PREFIX_COLUMNS = (
    Column("change_seq", INTEGER, nullable=False),
    Column("change_op", char(1), nullable=False),
    Column("change_img", char(1), nullable=False),  # B(efore), A(fter), N(one)
    Column("change_txn", INTEGER),
)


def delta_table_schema(source_schema: TableSchema, delta_table_name: str) -> TableSchema:
    """The schema of the delta table capturing changes to ``source_schema``."""
    return TableSchema(
        delta_table_name,
        list(DELTA_PREFIX_COLUMNS) + list(source_schema.columns),
        primary_key=None,
        timestamp_column=None,
    )


class DeltaTableWriter:
    """Appends captured images to a delta table inside a database.

    Used by the trigger extractor (locally) and reusable for any method
    that chooses "output to table".  Each ``write_*`` call performs real
    inserts in the supplied transaction, so the capture cost lands on the
    transaction that caused the change — the effect Figure 2 measures.
    """

    def __init__(self, database: Database, source_schema: TableSchema,
                 delta_table_name: str) -> None:
        self._database = database
        self.source_schema = source_schema
        self.delta_table_name = delta_table_name
        schema = delta_table_schema(source_schema, delta_table_name)
        if database.has_table(delta_table_name):
            existing = database.table(delta_table_name)
            if existing.schema.signature() != schema.signature():
                raise ExtractionError(
                    f"table {delta_table_name!r} exists with an incompatible shape"
                )
            self._table: Table = existing
        else:
            self._table = database.create_table(schema)
        self._next_seq = 1

    @property
    def table(self) -> Table:
        return self._table

    def next_sequence(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    # ------------------------------------------------------------------ writes
    def write_insert(self, txn: Transaction, new: tuple[Any, ...]) -> None:
        seq = self.next_sequence()
        self._append(txn, seq, "I", "A", new)

    def write_update(
        self, txn: Transaction, old: tuple[Any, ...], new: tuple[Any, ...]
    ) -> None:
        seq = self.next_sequence()
        self._append(txn, seq, "U", "B", old)
        self._append(txn, seq, "U", "A", new)

    def write_delete(self, txn: Transaction, old: tuple[Any, ...]) -> None:
        seq = self.next_sequence()
        self._append(txn, seq, "D", "B", old)

    def write_upsert(self, txn: Transaction, new: tuple[Any, ...]) -> None:
        seq = self.next_sequence()
        self._append(txn, seq, "P", "A", new)

    def _append(self, txn: Transaction, seq: int, op: str, img: str,
                row: tuple[Any, ...]) -> None:
        values = (seq, op, img, txn.txn_id) + tuple(row)
        self._table.insert(txn, values, mode=InsertMode.STATEMENT,
                           fire_triggers=False)

    # ------------------------------------------------------------------- reads
    def truncate(self) -> int:
        """Empty the delta table after it has been drained."""
        return self._table.truncate()


def delta_rows_to_batch(
    source_schema: TableSchema,
    rows: list[tuple[Any, ...]],
) -> DeltaBatch:
    """Decode delta-table rows (prefix + source columns) into a DeltaBatch.

    Rows must be in capture order; an update's B and A rows are paired by
    their shared change sequence.
    """
    key_index = source_schema.primary_key_index()
    if key_index is None:
        raise ExtractionError(
            f"source table {source_schema.name!r} needs a primary key to "
            "convert captured images into delta records"
        )
    prefix = len(DELTA_PREFIX_COLUMNS)
    batch = DeltaBatch(source_schema.name, source_schema)
    pending_updates: dict[int, tuple[Any, ...]] = {}
    # Physical scan order can diverge from capture order once slots are
    # reused; the change sequence is authoritative (B sorts before A).
    rows = sorted(rows, key=lambda row: (row[0], row[2] == "A"))
    for row in rows:
        seq, op, img, txn_id = row[:prefix]
        image = tuple(row[prefix:])
        if op == "I":
            batch.append(DeltaRecord(
                ChangeKind.INSERT, image[key_index], after=image,
                txn_id=txn_id, sequence=seq,
            ))
        elif op == "D":
            batch.append(DeltaRecord(
                ChangeKind.DELETE, image[key_index], before=image,
                txn_id=txn_id, sequence=seq,
            ))
        elif op == "P":
            batch.append(DeltaRecord(
                ChangeKind.UPSERT, image[key_index], after=image,
                txn_id=txn_id, sequence=seq,
            ))
        elif op == "U":
            if img == "B":
                if seq in pending_updates:
                    raise ExtractionError(f"duplicate before image for seq {seq}")
                pending_updates[seq] = image
            else:
                before = pending_updates.pop(seq, None)
                if before is None:
                    raise ExtractionError(f"after image without before for seq {seq}")
                batch.append(DeltaRecord(
                    ChangeKind.UPDATE, before[key_index], before=before,
                    after=image, txn_id=txn_id, sequence=seq,
                ))
        else:
            raise ExtractionError(f"unknown change op {op!r} in delta table")
    if pending_updates:
        raise ExtractionError(
            f"unpaired update before-images for sequences {sorted(pending_updates)}"
        )
    return batch

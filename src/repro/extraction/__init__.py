"""The four value-delta extraction methods of paper §3.

* :mod:`~repro.extraction.timestamp` — query on a last-modified column
* :mod:`~repro.extraction.snapshot_diff` — differential snapshots (LGM '96)
* :mod:`~repro.extraction.trigger` — row triggers into a delta table
* :mod:`~repro.extraction.logscan` — archive-log scanning

All methods emit the same currency, :class:`~repro.extraction.deltas.DeltaBatch`.

:mod:`~repro.extraction.switcher` sits above them: it prices each method
(plus Op-Delta capture) per table per window with the calibrated cost
model and routes the table to the cheapest — op-delta replay by default,
snapshot/bulk-load staging when backlog depth or txn shape favors it.
"""

from .deltas import ChangeKind, DeltaBatch, DeltaRecord, apply_batch_to_rows
from .switcher import (
    AdaptiveExtractionSwitcher,
    ExtractionMethod,
    MethodEstimate,
    RoutingDecision,
    TableProfile,
    WindowShape,
)
from .logscan import LogExtraction, LogExtractor
from .snapshot_diff import (
    ALGORITHMS,
    diff_naive,
    diff_snapshots,
    diff_sort_merge,
    diff_window,
)
from .timestamp import TimestampExtraction, TimestampExtractor
from .trigger import TriggerExtractor
from .writers import DeltaTableWriter, delta_rows_to_batch, delta_table_schema

__all__ = [
    "AdaptiveExtractionSwitcher",
    "ExtractionMethod",
    "MethodEstimate",
    "RoutingDecision",
    "TableProfile",
    "WindowShape",
    "ChangeKind",
    "DeltaBatch",
    "DeltaRecord",
    "apply_batch_to_rows",
    "TimestampExtractor",
    "TimestampExtraction",
    "diff_snapshots",
    "diff_naive",
    "diff_sort_merge",
    "diff_window",
    "ALGORITHMS",
    "TriggerExtractor",
    "LogExtractor",
    "LogExtraction",
    "DeltaTableWriter",
    "delta_rows_to_batch",
    "delta_table_schema",
]

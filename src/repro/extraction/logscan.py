"""Log-based delta extraction (paper §3.1.4).

Reading archived redo logs is the lowest-impact method: the DBMS writes the
log anyway, and shipping segments is off the critical path of user
transactions.  The hazards the paper lists are all enforced here:

* **archiving must be on** — without it, segments are recycled at
  checkpoint and there is nothing to extract;
* **proprietary formats** — a reader must match the producing product,
  product version and log-format version exactly
  (:func:`repro.engine.wal.require_compatible`);
* **schema rigidity** — decoding record images requires the exact source
  schema; applying them elsewhere requires an identical destination schema
  ("log based techniques depend on the schema of the source and the
  destination to match exactly");
* **only full re-creation** — the natural consumer is
  :func:`repro.engine.recovery.recover_from_archive`, i.e. a hot standby.

Unlike triggers and timestamps, the method *can* capture every state
change and requires no application modification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.database import Database
from ..engine.rows import decode_row
from ..engine.wal import LogRecordKind, LogSegment, committed_txn_ids, require_compatible
from ..errors import ExtractionError, LogError
from .deltas import ChangeKind, DeltaBatch, DeltaRecord


@dataclass
class LogExtraction:
    """Outcome of one archive-log extraction pass."""

    segments: list[LogSegment] = field(default_factory=list)
    batches: dict[str, DeltaBatch] = field(default_factory=dict)
    records_scanned: int = 0
    changes_decoded: int = 0
    uncommitted_skipped: int = 0

    @property
    def log_bytes(self) -> int:
        return sum(
            record.payload_bytes
            for segment in self.segments
            for record in segment.records
        )


class LogExtractor:
    """Scans archived WAL segments into per-table value deltas."""

    def __init__(
        self,
        database: Database,
        tables: set[str] | None = None,
        reader_product: str | None = None,
        reader_version: str | None = None,
    ) -> None:
        if not database.log.archive_mode:
            raise ExtractionError(
                f"database {database.name!r} does not have archiving turned "
                "on; redo segments are recycled at checkpoint time and "
                "cannot be extracted (§3.1.4)"
            )
        self._database = database
        self._tables = tables
        # By default the reader is the same product/version tooling — the
        # only configuration that actually works; mismatches model the
        # license/compatibility hazards and raise LogError.
        self.reader_product = (
            reader_product if reader_product is not None else database.product
        )
        self.reader_version = (
            reader_version if reader_version is not None else database.product_version
        )

    def extract(self, drain: bool = True, checkpoint_first: bool = True) -> LogExtraction:
        """Decode archived segments into value deltas.

        Parameters
        ----------
        drain:
            Remove the decoded segments from the archive (they have been
            shipped).  Pass ``False`` to peek.
        checkpoint_first:
            Force a checkpoint so changes since the last one are visible.
        """
        if checkpoint_first:
            self._database.checkpoint()
        segments = (
            self._database.log.drain_archive()
            if drain
            else list(self._database.log.archived_segments)
        )
        result = LogExtraction(segments=segments)
        costs = self._database.costs
        clock = self._database.clock

        all_records = [r for segment in segments for r in segment.records]
        for segment in segments:
            require_compatible(segment, self.reader_product, self.reader_version)
        committed = committed_txn_ids(all_records)

        with self._database.tracer.span(
            "extract.log.scan", segments=len(segments)
        ):
            for record in all_records:
                result.records_scanned += 1
                clock.advance(costs.file_read(record.payload_bytes))
                if not record.is_data_change():
                    continue
                assert record.table is not None
                if self._tables is not None and record.table not in self._tables:
                    continue
                if record.txn_id not in committed:
                    result.uncommitted_skipped += 1
                    continue
                batch = result.batches.get(record.table)
                if batch is None:
                    if not self._database.has_table(record.table):
                        raise LogError(
                            f"log references table {record.table!r} with no "
                            "catalog entry; cannot decode its images"
                        )
                    schema = self._database.table(record.table).schema
                    batch = DeltaBatch(record.table, schema)
                    result.batches[record.table] = batch
                batch.append(self._decode(record, batch))
                result.changes_decoded += 1
        metrics = self._database.metrics
        metrics.counter("extract.log.records_scanned").inc(result.records_scanned)
        metrics.counter("extract.log.rows_emitted").inc(result.changes_decoded)
        metrics.counter("extract.log.delta_bytes").inc(
            sum(batch.size_bytes for batch in result.batches.values())
        )
        return result

    def _decode(self, record, batch: DeltaBatch) -> DeltaRecord:
        schema = batch.schema
        key_index = schema.primary_key_index()
        before = decode_row(schema, record.before) if record.before else None
        after = decode_row(schema, record.after) if record.after else None

        def key_of(values):
            if values is None:
                raise LogError(f"record at LSN {record.lsn} is missing its image")
            return values[key_index] if key_index is not None else record.row_id

        if record.kind is LogRecordKind.INSERT:
            return DeltaRecord(
                ChangeKind.INSERT, key_of(after), after=after, txn_id=record.txn_id,
                sequence=record.lsn,
            )
        if record.kind is LogRecordKind.DELETE:
            return DeltaRecord(
                ChangeKind.DELETE, key_of(before), before=before, txn_id=record.txn_id,
                sequence=record.lsn,
            )
        return DeltaRecord(
            ChangeKind.UPDATE, key_of(before), before=before, after=after,
            txn_id=record.txn_id, sequence=record.lsn,
        )

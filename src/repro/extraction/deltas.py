"""Value deltas: the common currency of the §3 extraction methods.

A *value delta* is what the classic methods produce: per-row before/after
images.  The paper contrasts their size and warehouse-application cost with
Op-Delta (:mod:`repro.core`), whose records are operations instead.

``UPSERT`` exists because timestamp extraction cannot distinguish an insert
from the final state of an updated row — and cannot see deletes at all
(§3.1.1: "only detectable changes are the final changes in the database
just prior to the extraction process").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..engine.schema import TableSchema
from ..errors import ExtractionError


class ChangeKind(enum.Enum):
    INSERT = "I"
    UPDATE = "U"
    DELETE = "D"
    #: Timestamp extraction's ambiguous "row now looks like this".
    UPSERT = "P"


@dataclass(frozen=True)
class DeltaRecord:
    """One row-level change.

    ``before``/``after`` are full row-value tuples:

    * INSERT: after only
    * DELETE: before only
    * UPDATE: both images
    * UPSERT: after only (provenance unknown)
    """

    kind: ChangeKind
    key: Any
    before: tuple[Any, ...] | None = None
    after: tuple[Any, ...] | None = None
    txn_id: int | None = None
    sequence: int | None = None

    def __post_init__(self) -> None:
        if self.kind in (ChangeKind.INSERT, ChangeKind.UPSERT):
            if self.after is None or self.before is not None:
                raise ExtractionError(f"{self.kind.name} delta must carry only an after image")
        elif self.kind is ChangeKind.DELETE:
            if self.before is None or self.after is not None:
                raise ExtractionError("DELETE delta must carry only a before image")
        else:
            if self.before is None or self.after is None:
                raise ExtractionError("UPDATE delta must carry both images")

    def image_count(self) -> int:
        """Number of full row images this record carries."""
        return int(self.before is not None) + int(self.after is not None)


@dataclass
class DeltaBatch:
    """An ordered set of value deltas for one table."""

    table: str
    schema: TableSchema
    records: list[DeltaRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DeltaRecord]:
        return iter(self.records)

    def append(self, record: DeltaRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[DeltaRecord]) -> None:
        self.records.extend(records)

    @property
    def size_bytes(self) -> int:
        """Value-delta volume: one full record per image carried.

        This is the quantity §4.1 compares against Op-Delta's statement
        size — for a 10,000-row update, value delta is 20,000 images while
        the Op-Delta is one ~70-byte statement.
        """
        return sum(r.image_count() for r in self.records) * self.schema.record_size

    def counts(self) -> dict[ChangeKind, int]:
        out = {kind: 0 for kind in ChangeKind}
        for record in self.records:
            out[record.kind] += 1
        return out

    def keys(self) -> set[Any]:
        return {record.key for record in self.records}

    def net_effect(self) -> dict[Any, DeltaRecord]:
        """Collapse the batch to its final per-key effect (in batch order)."""
        latest: dict[Any, DeltaRecord] = {}
        for record in self.records:
            latest[record.key] = record
        return latest


def apply_batch_to_rows(
    batch: DeltaBatch, rows: Iterable[tuple[Any, ...]], key_index: int
) -> list[tuple[Any, ...]]:
    """Apply a delta batch to an in-memory row set (test/verification helper).

    Returns the new row list.  Raises :class:`ExtractionError` on
    inconsistencies (delete of a missing key, insert of a duplicate key) —
    the property-based tests use this to check extractor correctness.
    """
    state: dict[Any, tuple[Any, ...]] = {}
    for row in rows:
        key = row[key_index]
        if key in state:
            raise ExtractionError(f"duplicate key {key!r} in the base rows")
        state[key] = row
    for record in batch.records:
        if record.kind is ChangeKind.INSERT:
            if record.key in state:
                raise ExtractionError(f"INSERT delta for existing key {record.key!r}")
            assert record.after is not None
            state[record.key] = record.after
        elif record.kind is ChangeKind.DELETE:
            if record.key not in state:
                raise ExtractionError(f"DELETE delta for missing key {record.key!r}")
            del state[record.key]
        elif record.kind is ChangeKind.UPDATE:
            if record.key not in state:
                raise ExtractionError(f"UPDATE delta for missing key {record.key!r}")
            assert record.after is not None
            new_key = record.after[key_index]
            if new_key != record.key:
                del state[record.key]
                state[new_key] = record.after
            else:
                state[record.key] = record.after
        else:  # UPSERT
            assert record.after is not None
            state[record.key] = record.after
    return list(state.values())

"""Discrete-event simulation kernel for the availability experiments."""

from .kernel import Environment, Event, Process, Timeout
from .resources import LockMode, RWLock

__all__ = ["Environment", "Event", "Process", "Timeout", "RWLock", "LockMode"]

"""Locks for the simulation kernel.

The availability experiment needs exactly the classic warehouse locking
picture: OLAP queries take *shared* locks on the fact table; integrators
take *exclusive* locks.  Value-delta integration holds its exclusive lock
for the whole indivisible batch (the outage); Op-Delta integration holds it
per source transaction (interleaving with queries).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from ..errors import SimulationError
from .kernel import Environment, Event


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _Waiter:
    event: Event
    mode: LockMode


class RWLock:
    """A fair readers-writer lock (FIFO, no starvation of either side)."""

    def __init__(self, env: Environment, name: str = "lock") -> None:
        self._env = env
        self.name = name
        self._readers = 0
        self._writer = False
        self._waiters: deque[_Waiter] = deque()
        # Telemetry for the availability report.
        self.exclusive_acquisitions = 0
        self.shared_acquisitions = 0

    # ----------------------------------------------------------------- acquire
    def acquire(self, mode: LockMode) -> Event:
        """Request the lock; yield the returned event to wait for the grant."""
        event = Event(self._env)
        waiter = _Waiter(event, mode)
        self._waiters.append(waiter)
        self._dispatch()
        return event

    def release(self, mode: LockMode) -> None:
        if mode is LockMode.SHARED:
            if self._readers <= 0:
                raise SimulationError(f"lock {self.name!r}: shared release underflow")
            self._readers -= 1
        else:
            if not self._writer:
                raise SimulationError(f"lock {self.name!r}: exclusive release without hold")
            self._writer = False
        self._dispatch()

    # ---------------------------------------------------------------- dispatch
    def _dispatch(self) -> None:
        while self._waiters:
            head = self._waiters[0]
            if head.mode is LockMode.EXCLUSIVE:
                if self._writer or self._readers:
                    return
                self._waiters.popleft()
                self._writer = True
                self.exclusive_acquisitions += 1
                head.event.succeed()
                return
            if self._writer:
                return
            # Grant the shared head (and any further leading shared waiters
            # are granted on subsequent loop iterations).
            self._waiters.popleft()
            self._readers += 1
            self.shared_acquisitions += 1
            head.event.succeed()

    @property
    def held_exclusive(self) -> bool:
        return self._writer

    @property
    def active_readers(self) -> int:
        return self._readers

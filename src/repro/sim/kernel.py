"""A small discrete-event simulation kernel (SimPy-flavoured).

The warehouse availability experiment (paper §4.1: Op-Delta "can be applied
concurrently with existing user queries ... not requiring the data
warehouse be shutdown") needs concurrency over virtual time.  The engine
itself is single-threaded, so concurrency is modelled here: processes are
generators yielding events; the environment advances time to the next
scheduled event.

Supported yields:

* :meth:`Environment.timeout` — resume after a delay
* another :class:`Process` — resume when it finishes (join)
* a lock request from :mod:`repro.sim.resources`
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

from ..errors import SimulationError


class Event:
    """Something that will happen; processes wait on events."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event scheduled ``delay`` into the future."""

    def __init__(self, env: "Environment", delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay cannot be negative: {delay}")
        super().__init__(env)
        env._schedule(env.now + delay, self)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Drives a generator; is itself an event that fires on completion."""

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str = "process") -> None:
        super().__init__(env)
        self.name = name
        self._generator = generator
        # Start at the current time (first resume happens via the queue so
        # process creation order does not matter within a timestep).
        bootstrap = Event(env)
        bootstrap.add_callback(self._resume)
        env._schedule(env.now, bootstrap)

    def _resume(self, completed: Event) -> None:
        try:
            target = self._generator.send(completed.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield events (timeout, lock request, or another process)"
            )
        target.add_callback(self._resume)


class Environment:
    """The event queue and the simulation clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()

    def _schedule(self, at: float, event: Event) -> None:
        heapq.heappush(self._queue, (at, next(self._sequence), event))

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def process(self, generator: ProcessGenerator, name: str = "process") -> Process:
        return Process(self, generator, name)

    def run(self, until: float | None = None) -> float:
        """Process events until the queue is empty (or ``until`` is reached)."""
        while self._queue:
            at, _seq, event = self._queue[0]
            if until is not None and at > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = at
            if not event.triggered:
                event.succeed(event.value)
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when every input event has fired."""
        events = list(events)
        gate = Event(self)
        remaining = len(events)
        if remaining == 0:
            self._schedule(self.now, gate)
            return gate

        def on_done(_event: Event) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0 and not gate.triggered:
                gate.succeed()

        for event in events:
            event.add_callback(on_done)
        return gate

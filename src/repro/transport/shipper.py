"""Shipping delta artifacts to the warehouse / staging area.

Wraps the network model with knowledge of the artifact kinds the
extraction layer produces (ASCII files, Export dumps, log segments,
Op-Delta transaction groups) so end-to-end experiments can move them with
one call and the right payload sizes.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from ..compaction.report import CompactionReport
from ..core.opdelta import OpDeltaTransaction
from ..engine.snapshots import Snapshot
from ..engine.utilities import AsciiFile, ExportDump
from ..engine.wal import LogSegment
from ..errors import TransportError
from ..extraction.deltas import DeltaBatch
from ..obs.context import ambient_tracer
from ..obs.pipeline.context import ambient_pipeline
from ..obs.pipeline.events import lineage_key
from ..obs.tracing import NULL_TRACER
from .network import NetworkModel
from .queue import PersistentQueue


class TransactionPruner(Protocol):
    """View-relevance pruning at the transport boundary.

    Structural stand-in for :class:`repro.analysis.OpDeltaAnalyzer` so the
    transport layer stays independent of the analysis package: statements
    no warehouse view can observe are dropped *before* they cost network
    bytes or queue space.
    """

    def prune_transaction(
        self, group: OpDeltaTransaction
    ) -> OpDeltaTransaction | None: ...


class Compactor(Protocol):
    """Window rewriting at the transport boundary.

    Structural stand-in for :class:`repro.compaction.Coalescer` (same
    reasoning as :class:`TransactionPruner`): the shippable window is
    rewritten — redundant statements folded, annihilated or fused — before
    it costs network bytes or queue space.
    """

    def compact_window(
        self, groups: Iterable[OpDeltaTransaction]
    ) -> tuple[list[OpDeltaTransaction], CompactionReport]: ...


class ReorderCertifier(Protocol):
    """Compaction-reorder verification at the transport boundary.

    Structural stand-in for
    :class:`repro.analysis.certify.ScheduleCertifier` (same reasoning as
    the other seams): every commutativity proof the compactor relied on
    to move an effect is re-derived against the *uncompacted* window
    before a single rewritten byte is shipped or enqueued.
    """

    def verify_compaction(
        self,
        groups: Iterable[OpDeltaTransaction],
        obligations: Iterable[object],
    ) -> "_CertificateLike": ...


class _CertificateLike(Protocol):
    @property
    def certified(self) -> bool: ...
    @property
    def findings(self) -> tuple[object, ...]: ...


class WindowRouter(Protocol):
    """Adaptive extraction switching at the transport boundary.

    Structural stand-in for
    :class:`repro.extraction.switcher.AdaptiveExtractionSwitcher` (same
    reasoning as the other seams): tables whose backlog is cheaper to
    reload than to replay are diverted to bulk-load staging *before*
    their ops cost network bytes or queue space.  The router records its
    own lifecycle events (``ROUTED`` decisions, ``PRUNED`` settlements).
    """

    def route_window(
        self,
        groups: Iterable[OpDeltaTransaction],
        at_ms: float | None = None,
    ) -> tuple[list[OpDeltaTransaction], list[object]]: ...


def _shippable_window(
    groups: Iterable[OpDeltaTransaction],
    pruner: TransactionPruner | None,
    compactor: Compactor | None,
    certifier: ReorderCertifier | None = None,
) -> Iterable[OpDeltaTransaction]:
    """Prune first (cheap, per-statement), then compact what remains.

    With a ``certifier``, the compaction pass's reorder obligations are
    re-proven against the uncompacted window; an unproven reordering
    aborts the shipment with :class:`~repro.errors.TransportError` —
    a miscompacted window must never reach the warehouse.
    """
    pruned = _pruned_groups(groups, pruner)
    if compactor is None:
        return pruned
    if certifier is None:
        compacted, _report = compactor.compact_window(pruned)
        return compacted
    window = list(pruned)
    compacted, report = compactor.compact_window(window)
    certificate = certifier.verify_compaction(
        window, report.reorder_obligations
    )
    if not certificate.certified:
        rendered = "; ".join(
            getattr(f, "render", lambda: str(f))()
            for f in certificate.findings
        )
        raise TransportError(
            "compaction certification rejected the shippable window "
            f"({len(certificate.findings)} finding(s)): {rendered}"
        )
    return compacted


def _pruned_groups(
    groups: Iterable[OpDeltaTransaction], pruner: TransactionPruner | None
) -> Iterable[OpDeltaTransaction]:
    if pruner is None:
        yield from groups
        return
    for group in groups:
        kept = pruner.prune_transaction(group)
        recorder = ambient_pipeline()
        if recorder is not None and kept is not group:
            surviving = (
                set() if kept is None else {lineage_key(op) for op in kept.operations}
            )
            for op in group.operations:
                if lineage_key(op) not in surviving:
                    recorder.record_pruned(op, at_ms=None, stage="transport")
        if kept is not None:
            yield kept


class FileShipper:
    """Moves extraction artifacts across the LAN."""

    def __init__(self, network: NetworkModel) -> None:
        self._network = network

    def ship_ascii(self, file: AsciiFile) -> float:
        return self._network.transfer(file.size_bytes, f"ascii:{file.schema.name}")

    def ship_export(self, dump: ExportDump) -> float:
        return self._network.transfer(dump.size_bytes, f"export:{dump.schema.name}")

    def ship_snapshot(self, snapshot: Snapshot) -> float:
        return self._network.transfer(
            snapshot.size_bytes, f"snapshot:{snapshot.table_name}"
        )

    def ship_value_deltas(self, batch: DeltaBatch) -> float:
        return self._network.transfer(batch.size_bytes, f"value-delta:{batch.table}")

    def ship_log_segments(self, segments: Iterable[LogSegment]) -> float:
        payload = sum(
            record.payload_bytes for segment in segments for record in segment.records
        )
        return self._network.transfer(payload, "log-segments")

    def ship_op_deltas(
        self,
        groups: Iterable[OpDeltaTransaction],
        pruner: TransactionPruner | None = None,
        compactor: Compactor | None = None,
        certifier: ReorderCertifier | None = None,
    ) -> float:
        window = list(_shippable_window(groups, pruner, compactor, certifier))
        payload = sum(group.size_bytes for group in window)
        tracer = ambient_tracer() or NULL_TRACER
        with tracer.span(
            "transport.ship.op_deltas",
            clock=self._network.clock,
            groups=len(window),
            bytes=payload,
        ):
            elapsed = self._network.transfer(payload, "op-deltas")
        recorder = ambient_pipeline()
        if recorder is not None:
            # Stamped when the transfer completes: the whole window moves
            # as one payload, so every op shares the arrival time.
            arrived = self._network.clock.now
            for group in window:
                recorder.record_shipped(group, at_ms=arrived)
            recorder.record_window_shipped(at_ms=arrived, groups=len(window))
        return elapsed


def enqueue_op_deltas(
    queue: PersistentQueue[OpDeltaTransaction],
    groups: Iterable[OpDeltaTransaction],
    pruner: TransactionPruner | None = None,
    compactor: Compactor | None = None,
    certifier: ReorderCertifier | None = None,
    switcher: WindowRouter | None = None,
) -> int:
    """Feed Op-Delta groups into a persistent queue (one message per txn).

    With a ``pruner``, statements irrelevant to every warehouse view are
    dropped first and transactions left empty by pruning are not enqueued
    at all.  With a ``compactor``, the surviving window is rewritten
    (:mod:`repro.compaction`) before any message is enqueued, so the queue
    stores — and later ships — the compacted statements.  With a
    ``certifier``, the compactor's reorder obligations are re-proven
    first and an unproven reordering raises
    :class:`~repro.errors.TransportError` instead of enqueuing.  With a
    ``switcher``, the adaptive extraction switcher routes each table's
    slice of the window first — tables diverted to bulk-load staging
    never reach the queue (the caller stages them via
    :meth:`~repro.warehouse.warehouse.Warehouse.staging_refresh`).
    """
    if switcher is not None:
        groups, _decisions = switcher.route_window(
            groups, at_ms=queue.clock.now
        )
    count = 0
    tracer = ambient_tracer() or NULL_TRACER
    with tracer.span("transport.queue.enqueue_window", clock=queue.clock):
        for group in _shippable_window(groups, pruner, compactor, certifier):
            queue.enqueue(group, group.size_bytes)
            count += 1
    recorder = ambient_pipeline()
    if recorder is not None:
        recorder.record_window_shipped(at_ms=queue.clock.now, groups=count)
    return count

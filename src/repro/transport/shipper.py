"""Shipping delta artifacts to the warehouse / staging area.

Wraps the network model with knowledge of the artifact kinds the
extraction layer produces (ASCII files, Export dumps, log segments,
Op-Delta transaction groups) so end-to-end experiments can move them with
one call and the right payload sizes.
"""

from __future__ import annotations

from typing import Iterable

from ..core.opdelta import OpDeltaTransaction
from ..engine.snapshots import Snapshot
from ..engine.utilities import AsciiFile, ExportDump
from ..engine.wal import LogSegment
from ..extraction.deltas import DeltaBatch
from .network import NetworkModel
from .queue import PersistentQueue


class FileShipper:
    """Moves extraction artifacts across the LAN."""

    def __init__(self, network: NetworkModel) -> None:
        self._network = network

    def ship_ascii(self, file: AsciiFile) -> float:
        return self._network.transfer(file.size_bytes, f"ascii:{file.schema.name}")

    def ship_export(self, dump: ExportDump) -> float:
        return self._network.transfer(dump.size_bytes, f"export:{dump.schema.name}")

    def ship_snapshot(self, snapshot: Snapshot) -> float:
        return self._network.transfer(
            snapshot.size_bytes, f"snapshot:{snapshot.table_name}"
        )

    def ship_value_deltas(self, batch: DeltaBatch) -> float:
        return self._network.transfer(batch.size_bytes, f"value-delta:{batch.table}")

    def ship_log_segments(self, segments: Iterable[LogSegment]) -> float:
        payload = sum(
            record.payload_bytes for segment in segments for record in segment.records
        )
        return self._network.transfer(payload, "log-segments")

    def ship_op_deltas(self, groups: Iterable[OpDeltaTransaction]) -> float:
        payload = sum(group.size_bytes for group in groups)
        return self._network.transfer(payload, "op-deltas")


def enqueue_op_deltas(
    queue: PersistentQueue[OpDeltaTransaction],
    groups: Iterable[OpDeltaTransaction],
) -> int:
    """Feed Op-Delta groups into a persistent queue (one message per txn)."""
    count = 0
    for group in groups:
        queue.enqueue(group, group.size_bytes)
        count += 1
    return count

"""Persistent queue with transactional dequeue semantics.

§1 of the paper: "Several techniques such as ftp, persistent queues, and
fault tolerant logs all apply and the choice of technique depends on the
requirement of transaction guarantees."  This queue provides the strong
option: enqueue is durable (pays a local log force), dequeue is
peek/acknowledge — an unacknowledged message is redelivered, so a consumer
crash between apply and ack never loses a delta (at-least-once delivery).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generic, Iterable, TypeVar

from ..clock import VirtualClock
from ..engine.costs import DEFAULT_COST_MODEL, CostModel
from ..errors import TransportError
from ..obs.metrics import MetricsLike, MetricsRegistry
from ..obs.pipeline.context import ambient_pipeline

T = TypeVar("T")


@dataclass
class _Envelope(Generic[T]):
    delivery_id: int
    payload: T
    size_bytes: int
    #: Delivery attempts so far; >1 on a receive means redelivery.
    attempts: int = 0


class PersistentQueue(Generic[T]):
    """FIFO queue with durable enqueue and ack-based dequeue."""

    def __init__(
        self,
        clock: VirtualClock,
        costs: CostModel = DEFAULT_COST_MODEL,
        name: str = "delta-queue",
        metrics: MetricsLike | None = None,
    ) -> None:
        self._clock = clock
        self._costs = costs
        self.name = name
        self._ready: deque[_Envelope[T]] = deque()
        self._in_flight: dict[int, _Envelope[T]] = {}
        self._next_id = 1
        self.enqueued = 0
        self.acknowledged = 0
        self.redelivered = 0
        if metrics is None:
            metrics = MetricsRegistry()
        self._m_enqueued = metrics.counter("transport.queue.enqueued", queue=name)
        self._m_bytes = metrics.counter("transport.queue.bytes", queue=name)
        # High-water depth counts ready + in-flight: everything the queue
        # still has to durably hold for at-least-once delivery.
        self._m_depth = metrics.gauge("transport.queue.depth", queue=name)
        self._m_redelivered = metrics.counter(
            "transport.queue.redelivered", queue=name
        )

    def _track_depth(self) -> None:
        self._m_depth.set(len(self._ready) + len(self._in_flight))

    @property
    def clock(self) -> VirtualClock:
        """The queue's own clock (for callers stamping queue-side events)."""
        return self._clock

    def __len__(self) -> int:
        return len(self._ready)

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    # ------------------------------------------------------------------ produce
    def enqueue(self, payload: T, size_bytes: int) -> int:
        """Durably append a message; returns its delivery id."""
        if size_bytes < 0:
            raise TransportError(f"message size cannot be negative: {size_bytes}")
        self._clock.advance(
            self._costs.file_write(size_bytes) + self._costs.file_sync
        )
        envelope = _Envelope(self._next_id, payload, size_bytes)
        self._next_id += 1
        self._ready.append(envelope)
        self.enqueued += 1
        self._m_enqueued.inc()
        self._m_bytes.inc(size_bytes)
        self._track_depth()
        recorder = ambient_pipeline()
        if recorder is not None:
            recorder.record_enqueued(payload, at_ms=self._clock.now)
        return envelope.delivery_id

    # ------------------------------------------------------------------ consume
    def receive(self) -> tuple[int, T] | None:
        """Take the next message without removing it durably.

        Returns ``(delivery_id, payload)`` or ``None`` when empty.  The
        message stays in flight until :meth:`ack` (success) or
        :meth:`nack` (requeue at the front).
        """
        if not self._ready:
            return None
        envelope = self._ready.popleft()
        self._clock.advance(self._costs.file_read(envelope.size_bytes))
        self._in_flight[envelope.delivery_id] = envelope
        envelope.attempts += 1
        if envelope.attempts > 1:
            # A nacked/recovered message coming around again: the
            # at-least-once duplicate risk becomes an observable event.
            self._m_redelivered.inc()
            recorder = ambient_pipeline()
            if recorder is not None:
                recorder.record_redelivered(
                    envelope.payload, envelope.attempts, at_ms=self._clock.now
                )
        return envelope.delivery_id, envelope.payload

    def receive_window(self, limit: int) -> list[tuple[int, T]]:
        """Take up to ``limit`` messages as one shippable window.

        The batched-apply seam: a consumer drains a window, applies it as
        group-commit batches, then settles the whole window with
        :meth:`ack_window` — the at-least-once guarantee now covers the
        window, not each message.  Every received message stays in flight
        until individually (or collectively) settled.
        """
        if limit < 1:
            raise TransportError(f"window size must be positive: {limit}")
        window: list[tuple[int, T]] = []
        while len(window) < limit:
            received = self.receive()
            if received is None:
                break
            window.append(received)
        return window

    def ack_window(self, delivery_ids: Iterable[int]) -> int:
        """Acknowledge a whole received window; returns messages settled.

        Fails on the first unknown delivery id — earlier ids in the window
        are already settled at that point, exactly the partial-failure
        surface :meth:`recover` redelivers after.
        """
        settled = 0
        for delivery_id in delivery_ids:
            self.ack(delivery_id)
            settled += 1
        return settled

    def ack(self, delivery_id: int) -> None:
        """Acknowledge successful processing; the message is gone for good."""
        envelope = self._in_flight.get(delivery_id)
        if envelope is None:
            raise TransportError(f"unknown or already-settled delivery {delivery_id}")
        self._clock.advance(self._costs.file_write(16) + self._costs.file_sync)
        del self._in_flight[delivery_id]
        self.acknowledged += 1
        self._track_depth()
        recorder = ambient_pipeline()
        if recorder is not None:
            recorder.record_acked(envelope.payload, at_ms=self._clock.now)

    def nack(self, delivery_id: int) -> None:
        """Return an unprocessed message to the front of the queue."""
        envelope = self._in_flight.pop(delivery_id, None)
        if envelope is None:
            raise TransportError(f"unknown or already-settled delivery {delivery_id}")
        self._ready.appendleft(envelope)
        self.redelivered += 1

    def recover(self) -> int:
        """Consumer crash: every in-flight message is redelivered."""
        recovered = 0
        for delivery_id in sorted(self._in_flight, reverse=True):
            envelope = self._in_flight.pop(delivery_id)
            self._ready.appendleft(envelope)
            recovered += 1
            self.redelivered += 1
        return recovered

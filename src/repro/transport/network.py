"""Network cost model for delta transport.

Moving deltas from the sources to the warehouse (or a staging area) costs
latency plus payload time on the paper's 10 Mb/s switched LAN.  The model
charges the shared virtual clock, so transport composes with extraction and
integration into end-to-end timings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import VirtualClock
from ..engine.costs import DEFAULT_COST_MODEL, CostModel
from ..obs.metrics import MetricsLike, MetricsRegistry


@dataclass
class TransferRecord:
    """One completed transfer."""

    description: str
    payload_bytes: int
    elapsed_ms: float


class NetworkModel:
    """Charges round trips and payload transfer times."""

    def __init__(
        self,
        clock: VirtualClock,
        costs: CostModel = DEFAULT_COST_MODEL,
        metrics: MetricsLike | None = None,
    ) -> None:
        self._clock = clock
        self._costs = costs
        self.transfers: list[TransferRecord] = []
        if metrics is None:
            metrics = MetricsRegistry()
        self._m_bytes = metrics.counter("transport.network.bytes")
        self._m_round_trips = metrics.counter("transport.network.round_trips")
        self._m_latency = metrics.histogram("transport.network.latency_ms")

    @property
    def bytes_moved(self) -> int:
        return sum(t.payload_bytes for t in self.transfers)

    @property
    def clock(self) -> VirtualClock:
        """The network's virtual clock (stamps transfer completion times)."""
        return self._clock

    def transfer(self, payload_bytes: int, description: str = "transfer") -> float:
        """Ship a payload; returns the elapsed virtual milliseconds."""
        if payload_bytes < 0:
            raise ValueError(f"payload cannot be negative: {payload_bytes}")
        with self._clock.stopwatch() as watch:
            self._clock.advance(
                self._costs.lan_round_trip
                + self._costs.network_transfer(payload_bytes)
            )
        record = TransferRecord(description, payload_bytes, watch.elapsed)
        self.transfers.append(record)
        self._m_bytes.inc(payload_bytes)
        self._m_latency.observe(record.elapsed_ms)
        return record.elapsed_ms

    def round_trip(self) -> float:
        """One control-message round trip (acknowledgements etc.)."""
        self._clock.advance(self._costs.lan_round_trip)
        self._m_round_trips.inc()
        return self._costs.lan_round_trip

"""Delta transport: network model, file shipper, persistent queue."""

from .network import NetworkModel, TransferRecord
from .queue import PersistentQueue
from .shipper import Compactor, FileShipper, TransactionPruner, enqueue_op_deltas

__all__ = [
    "NetworkModel",
    "TransferRecord",
    "PersistentQueue",
    "FileShipper",
    "TransactionPruner",
    "Compactor",
    "enqueue_op_deltas",
]

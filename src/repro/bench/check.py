"""``repro-bench --check``: static semantic validation as a CLI gate.

Two modes:

* **seed mode** (no file arguments) — run the representative statements of
  the bench workloads through the semantic checker against the seed
  catalog (``parts``, ``suppliers``, ``audit_log``), then dump the
  maintenance plans the planner compiles for the seed views.  Any ERROR
  diagnostic on a workload statement is a regression (the workloads are
  known-good), so the run fails.
* **fixture mode** (file arguments) — each file is a ``;``-separated list
  of statements, each optionally annotated with ``-- expect: CODE[, CODE]``
  comment lines.  The checker must produce *exactly* the annotated
  diagnostic codes for each statement: a missed diagnostic and a spurious
  one are both failures.  This is how CI pins the diagnostic catalogue.
"""

from __future__ import annotations

import sys
from typing import Iterable, Sequence, TextIO

from ..core.selfmaint import ViewDefinition
from ..engine.schema import Column, TableSchema
from ..engine.types import INTEGER, char
from ..errors import SqlError
from ..semantics import SchemaCatalog, SemanticChecker, ViewMaintenancePlanner
from ..warehouse.aggregates import AggregateSpec, AggregateViewDefinition
from ..workloads.records import parts_schema, suppliers_schema

#: Statement shapes the bench workloads issue — the zero-false-positive set.
SEED_STATEMENTS = (
    "INSERT INTO parts (part_id, part_ref, part_no, description, status, "
    "quantity, price, last_modified, supplier_id) VALUES (1000001, 999, "
    "'PN-000999', 'seed part', 'active', 5, 12.5, NULL, 3)",
    "UPDATE parts SET status = 'revised' "
    "WHERE part_ref >= 0 AND part_ref < 100",
    "UPDATE parts SET quantity = quantity + 7 "
    "WHERE part_ref >= 0 AND part_ref < 100",
    "UPDATE parts SET price = price * 1.1 "
    "WHERE part_ref >= 50 AND part_ref < 60",
    "DELETE FROM parts WHERE part_ref >= 100 AND part_ref < 200",
    "INSERT INTO audit_log (event_id, part_id, note) "
    "VALUES (1, 2, 'batch update')",
    "UPDATE suppliers SET region = 'EMEA' WHERE supplier_id = 7",
    "SELECT part_id, status FROM parts WHERE quantity > 10",
)

SEED_VIEWS = (
    ViewDefinition(
        name="active_parts",
        base_table="parts",
        columns=("part_id", "part_no", "status", "quantity", "price"),
        predicate="status = 'active'",
        key_column="part_id",
    ),
)

SEED_AGGREGATE_VIEWS = (
    AggregateViewDefinition(
        "qty_by_supplier",
        "parts",
        group_by=("supplier_id",),
        aggregates=(AggregateSpec("COUNT"), AggregateSpec("SUM", "quantity")),
    ),
)


def audit_log_schema(name: str = "audit_log") -> TableSchema:
    """The analysis experiment's source-only side table."""
    return TableSchema(
        name,
        [
            Column("event_id", INTEGER, nullable=False),
            Column("part_id", INTEGER, nullable=False),
            Column("note", char(20)),
        ],
        primary_key="event_id",
    )


def seed_catalog() -> SchemaCatalog:
    """The schemas every bench workload runs against."""
    return SchemaCatalog(
        [parts_schema(), suppliers_schema(), audit_log_schema()]
    )


def run_check(paths: Sequence[str], out: TextIO = sys.stdout) -> int:
    """Entry point for ``repro-bench --check``; returns the exit code."""
    catalog = seed_catalog()
    checker = SemanticChecker(catalog)
    if paths:
        failures = 0
        for path in paths:
            failures += _check_fixture(path, checker, out)
        if failures:
            print(f"semantics-check: {failures} statement(s) FAILED", file=out)
            return 1
        print("semantics-check: all fixture statements match", file=out)
        return 0
    return _check_seed(checker, catalog, out)


# ------------------------------------------------------------------ seed mode
def _check_seed(
    checker: SemanticChecker, catalog: SchemaCatalog, out: TextIO
) -> int:
    errors = 0
    print("== seed workload statements ==", file=out)
    for sql in SEED_STATEMENTS:
        result = checker.check_sql(sql)
        status = "ok" if result.ok else "FAIL"
        print(f"[{status}] {sql}", file=out)
        for diagnostic in result.diagnostics:
            print(f"    {diagnostic.render()}", file=out)
        if not result.ok:
            errors += 1
    print(file=out)
    print("== maintenance plans ==", file=out)
    plans = ViewMaintenancePlanner(catalog).plan_catalog(
        SEED_VIEWS, SEED_AGGREGATE_VIEWS
    )
    for name, plan in plans.items():
        print(f"{name} [{plan.view_kind}] -> {plan.classification.value}", file=out)
        for rule in plan.rules:
            image = "before-image" if rule.needs_before_image else "op-only"
            print(
                f"    {rule.kind.value:<6} {rule.action.value:<15} [{image}]  "
                f"{rule.reason}",
                file=out,
            )
        for diagnostic in plan.diagnostics:
            print(f"    {diagnostic.render()}", file=out)
        if not plan.valid:
            errors += 1
    if errors:
        print(f"semantics-check: {errors} FAILURE(S)", file=out)
        return 1
    print("semantics-check: seed workloads are clean", file=out)
    return 0


# --------------------------------------------------------------- fixture mode
def _check_fixture(path: str, checker: SemanticChecker, out: TextIO) -> int:
    """Check one annotated fixture file; returns the failure count."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        print(f"semantics-check: cannot read {path}: {exc.strerror}", file=out)
        return 1
    failures = 0
    for sql, expected in parse_fixture(text):
        try:
            result = checker.check_sql(sql)
        except SqlError as exc:
            print(f"[FAIL] {sql}", file=out)
            print(f"    statement does not parse: {exc}", file=out)
            failures += 1
            continue
        actual = sorted(d.code for d in result.diagnostics)
        if actual == sorted(expected):
            print(f"[ok]   {sql}", file=out)
            continue
        failures += 1
        print(f"[FAIL] {sql}", file=out)
        print(f"    expected: {', '.join(sorted(expected)) or '(none)'}", file=out)
        print(f"    actual:   {', '.join(actual) or '(none)'}", file=out)
        for diagnostic in result.diagnostics:
            print(f"    {diagnostic.render()}", file=out)
    return failures


def parse_fixture(text: str) -> list[tuple[str, tuple[str, ...]]]:
    """Split an annotated fixture into (sql, expected-codes) pairs.

    Statements are separated by ``;``.  ``-- expect:`` comment lines inside
    a statement's chunk list the diagnostic codes the checker must produce
    for it (one annotation may list several, comma-separated); chunks with
    no annotation must check clean.
    """
    cases: list[tuple[str, tuple[str, ...]]] = []
    pending: list[str] = []
    buffer: list[str] = []

    def flush() -> None:
        sql = " ".join(" ".join(buffer).split())
        buffer.clear()
        if sql:
            cases.append((sql, tuple(pending)))
            pending.clear()

    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("--"):
            comment = stripped[2:].strip()
            if comment.lower().startswith("expect:"):
                codes = comment.split(":", 1)[1]
                pending.extend(
                    code.strip() for code in codes.split(",") if code.strip()
                )
            continue  # comments never contribute SQL text
        while ";" in line:
            fragment, line = line.split(";", 1)
            buffer.append(fragment)
            flush()
        buffer.append(line)
    flush()
    return cases


__all__ = ["run_check", "parse_fixture", "seed_catalog"]

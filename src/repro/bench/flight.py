"""``repro-bench --flight``: the flight-recorded pipeline run.

Drives the seed workload through the flagship capture → queue → batched
apply pipeline in **windows**, with the full observability stack on:

* a :class:`~repro.obs.pipeline.PipelineRecorder` carrying a
  :class:`~repro.obs.flight.FlightRecorder` that samples lags, per-view
  staleness, watermarks, queue depth and the metrics registry on every
  shipped window;
* a :class:`~repro.obs.tracing.Tracer` whose span tree the
  :class:`~repro.obs.flight.CostAttributor` folds into the exact
  per-(stage × entity) cost ledger;
* an :class:`~repro.obs.flight.SLOEngine` with a freshness objective on
  the ``parts_catalog`` view and a latency objective on the end-to-end
  lag, evaluated at every window boundary.

The workload has a **seeded load spike** baked into its window schedule
(:data:`WINDOW_TXNS`): the apply side drains at most
:data:`APPLY_BUDGET` queue messages per window, so the spike windows
outrun the consumer, backlog builds, the view goes stale, and the
freshness SLO's burn-rate alert must fire — then clear once the cooldown
windows drain the backlog.  Everything runs on the virtual clock, so the
whole :class:`FlightReport` (timeline dump included) is byte-identical
across runs.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any

from ..core.capture import OpDeltaCapture
from ..core.stores import FileLogStore
from ..obs.context import observe
from ..obs.flight import (
    CostAttributor,
    FlightRecorder,
    FreshnessSLO,
    LatencySLO,
    SLOEngine,
    TimeSeriesStore,
)
from ..obs.metrics import MetricsRegistry
from ..obs.pipeline import PipelineRecorder, observe_pipeline
from ..obs.tracing import Tracer
from ..semantics import SchemaCatalog, SemanticChecker
from ..transport.queue import PersistentQueue
from ..transport.shipper import enqueue_op_deltas
from ..warehouse.opdelta_integrator import OpDeltaIntegrator
from ..warehouse.warehouse import Warehouse
from ..workloads.records import parts_schema
from .experiments.common import build_workload_database
from .experiments.compaction import build_analyzer

#: Version of the ``--flight --json`` document layout.  Bump on any
#: structural change to :meth:`FlightReport.to_dict`.
SCHEMA_VERSION = 1

#: Source transactions per window: steady state, a 3-window load spike,
#: then a cooldown during which the consumer drains the backlog.
WINDOW_TXNS = (2, 2, 2, 6, 6, 6, 2, 1, 1, 1)
#: Windows (0-based) that carry the seeded spike.
SPIKE_WINDOWS = (3, 4, 5)
#: Queue messages the consumer applies per window (its fixed capacity).
APPLY_BUDGET = 3
#: Rows seeded into the source ``parts`` table.
TABLE_ROWS = 200
#: Rows touched by each source transaction's UPDATE.
TXN_ROWS = 8

#: The freshness objective on the maintained view (virtual ms staleness).
FRESHNESS_TARGET_MS = 120.0
#: The latency objective on the end-to-end per-window mean lag.
LATENCY_TARGET_MS = 400.0
#: Burn-rate evaluation windows (virtual ms).
SHORT_WINDOW_MS = 60.0
LONG_WINDOW_MS = 300.0


@dataclass
class FlightReport:
    """One flight-recorded pipeline run, as plain data."""

    sampled: bool = True
    final_virtual_ms: float = 0.0
    #: Per-window timeline rows, in schedule order.
    windows: list[dict[str, Any]] = field(default_factory=list)
    #: SLO state transitions, in evaluation order (dicts of SLOFinding).
    findings: list[dict[str, Any]] = field(default_factory=list)
    #: The SLO engine's objectives + full finding history.
    slo: dict[str, Any] = field(default_factory=dict)
    #: The time-series store dump (empty when ``sampled`` is off).
    store: dict[str, Any] = field(default_factory=dict)
    #: The conservative cost ledger (:meth:`CostLedger.to_dict`).
    ledger: dict[str, Any] = field(default_factory=dict)

    @property
    def fired(self) -> list[dict[str, Any]]:
        return [f for f in self.findings if f["severity"] == "error"]

    @property
    def cleared(self) -> list[dict[str, Any]]:
        return [f for f in self.findings if f["code"] in ("SLO002", "SLO004")]

    @property
    def spike_detected(self) -> bool:
        """Did a freshness alert fire and later clear?"""
        fired = [f["at_ms"] for f in self.findings if f["code"] == "SLO001"]
        cleared = [f["at_ms"] for f in self.findings if f["code"] == "SLO002"]
        return bool(fired) and bool(cleared) and min(fired) < max(cleared)

    @property
    def conservative(self) -> bool:
        return bool(self.ledger.get("conservative"))

    @property
    def all_clear(self) -> bool:
        """No objective still firing at the end of the run."""
        return not any(
            objective["firing"] for objective in self.slo.get("objectives", ())
        )

    @property
    def exit_code(self) -> int:
        """0 = spike alert fired and cleared, and the ledger is exact."""
        if not self.sampled:
            return 0
        healthy = self.spike_detected and self.all_clear and self.conservative
        return 0 if healthy else 1

    def top(self, k: int = 8) -> list[dict[str, Any]]:
        """The k most expensive cost-ledger rows."""
        return list(self.ledger.get("rows", ()))[:k]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "sampled": self.sampled,
            "exit_code": self.exit_code,
            "spike_detected": self.spike_detected,
            "all_clear": self.all_clear,
            "conservative": self.conservative,
            "final_virtual_ms": self.final_virtual_ms,
            "windows": self.windows,
            "findings": self.findings,
            "slo": self.slo,
            "store": self.store,
            "ledger": self.ledger,
        }


def _window_workload(session, window: int, txns: int) -> None:
    """One window's source transactions (disjoint row ranges per txn)."""
    for txn in range(txns):
        low = ((window * 7 + txn) * TXN_ROWS) % TABLE_ROWS
        high = low + TXN_ROWS
        base = 800_000 + window * 100 + txn * 10
        session.begin()
        session.execute(
            f"UPDATE parts SET quantity = quantity + 1 "
            f"WHERE part_ref >= {low} AND part_ref < {high}"
        )
        session.execute(
            f"UPDATE parts SET status = 'w{window}' "
            f"WHERE part_ref >= {low} AND part_ref < {high}"
        )
        session.execute(
            "INSERT INTO parts (part_id, part_ref, part_no, description, "
            "status, quantity, price, last_modified, supplier_id) VALUES "
            f"({base}, {base}, 'PN-{base}', 'flight row', 'new', 1, 9.5, 0, 7)"
        )
        session.commit()


def run_flight(sample: bool = True) -> FlightReport:
    """Run the windowed spike scenario under the full flight stack.

    With ``sample=False`` the flight recorder is absent (no store, no SLO
    engine) but the workload, tracer and pipeline are identical — the
    obs-overhead bench asserts the final virtual time matches exactly.
    """
    report = FlightReport(sampled=sample)
    schema = parts_schema()
    analyzer = build_analyzer()

    metrics = MetricsRegistry()
    tracer = Tracer()
    flight = FlightRecorder(store=TimeSeriesStore(), metrics=metrics)
    engine = SLOEngine(
        flight.store,
        [
            FreshnessSLO(
                "parts_catalog",
                target_ms=FRESHNESS_TARGET_MS,
                short_window_ms=SHORT_WINDOW_MS,
                long_window_ms=LONG_WINDOW_MS,
            ),
            LatencySLO(
                "end_to_end",
                target_ms=LATENCY_TARGET_MS,
                short_window_ms=SHORT_WINDOW_MS,
                long_window_ms=LONG_WINDOW_MS,
            ),
        ],
    )

    with ExitStack() as stack:
        stack.enter_context(observe(metrics=metrics, tracer=tracer))
        # Built inside the ambient context so the source database binds
        # the tracer — capture-side spans must reach the cost ledger.
        source, workload = build_workload_database(
            TABLE_ROWS, name="flight-source"
        )
        initial_rows = [values for _rid, values in source.table("parts").scan()]
        store = FileLogStore(source)
        recorder = PipelineRecorder(
            clock=source.clock,
            metrics=metrics,
            flight=flight if sample else None,
        )
        stack.enter_context(observe_pipeline(recorder))
        capture = OpDeltaCapture(
            workload.session,
            store,
            tables={"parts"},
            analyzer=analyzer,
            checker=SemanticChecker(SchemaCatalog.from_database(source)),
            source="flight-source",
        )
        capture.attach()

        warehouse = Warehouse("flight-wh", clock=source.clock)
        warehouse.create_mirror(schema)
        warehouse.initial_load_rows("parts", initial_rows)
        view = warehouse.define_view(analyzer.views[0], schema)
        txn = warehouse.database.begin()
        view.initialize(initial_rows, txn)
        warehouse.database.commit(txn)
        integrator = OpDeltaIntegrator(
            warehouse.database.internal_session(),
            views=[view],
            analyzer=analyzer,
        )
        queue: PersistentQueue = PersistentQueue(
            source.clock, name="flight", metrics=metrics
        )
        if sample:
            flight.watch_queue(queue)

        def apply_budget(budget: int) -> int:
            window = queue.receive_window(limit=budget)
            if not window:
                return 0
            payloads = [payload for _id, payload in window]
            graph = analyzer.conflict_graph(payloads)
            integrator.integrate_batched(payloads, graph=graph)
            queue.ack_window(did for did, _payload in window)
            return len(window)

        for index, txns in enumerate(WINDOW_TXNS):
            _window_workload(workload.session, index, txns)
            groups = store.drain()
            enqueued = enqueue_op_deltas(queue, groups)
            applied = apply_budget(APPLY_BUDGET)
            now = source.clock.now
            if sample:
                flight.sample_now(recorder, now)
            staleness = recorder.views["parts_catalog"].staleness_ms(
                recorder.source_high_ms()
            ) if "parts_catalog" in recorder.views else 0.0
            window_findings = engine.evaluate(now) if sample else []
            report.windows.append(
                {
                    "window": index,
                    "at_ms": now,
                    "txns": txns,
                    "spike": index in SPIKE_WINDOWS,
                    "enqueued": enqueued,
                    "applied": applied,
                    "queue_depth": len(queue) + queue.in_flight,
                    "staleness_ms": staleness,
                    "findings": [f.to_dict() for f in window_findings],
                }
            )
        # Post-schedule drain: the consumer keeps its per-window budget
        # until the backlog is gone, evaluating the SLOs each round so a
        # recovery is observed (and the alert clears) at a real instant.
        drain_round = 0
        while len(queue) or queue.in_flight:
            applied = apply_budget(APPLY_BUDGET)
            now = source.clock.now
            if sample:
                flight.sample_now(recorder, now)
            drain_findings = engine.evaluate(now) if sample else []
            staleness = recorder.views["parts_catalog"].staleness_ms(
                recorder.source_high_ms()
            )
            report.windows.append(
                {
                    "window": len(WINDOW_TXNS) + drain_round,
                    "at_ms": now,
                    "txns": 0,
                    "spike": False,
                    "enqueued": 0,
                    "applied": applied,
                    "queue_depth": len(queue) + queue.in_flight,
                    "staleness_ms": staleness,
                    "findings": [f.to_dict() for f in drain_findings],
                }
            )
            drain_round += 1
        # Quiet period: advance virtual time past the short burn window
        # with read-only warehouse queries, then evaluate once more — with
        # no fresh violating samples in the window, every alert must clear.
        reader = warehouse.database.internal_session()
        quiet_until = source.clock.now + SHORT_WINDOW_MS
        while source.clock.now <= quiet_until:
            reader.execute("SELECT * FROM parts WHERE part_id = 0")
        now = source.clock.now
        if sample:
            flight.sample_now(recorder, now)
            quiet_findings = engine.evaluate(now)
            report.windows.append(
                {
                    "window": len(WINDOW_TXNS) + drain_round,
                    "at_ms": now,
                    "txns": 0,
                    "spike": False,
                    "enqueued": 0,
                    "applied": 0,
                    "queue_depth": 0,
                    "staleness_ms": recorder.views[
                        "parts_catalog"
                    ].staleness_ms(recorder.source_high_ms()),
                    "findings": [f.to_dict() for f in quiet_findings],
                }
            )
        capture.detach()

    report.final_virtual_ms = source.clock.now
    report.findings = [finding.to_dict() for finding in engine.history]
    if sample:
        report.slo = engine.to_dict()
        report.store = flight.store.to_dict()
    report.ledger = CostAttributor().attribute(tracer).to_dict()
    return report

"""Experiment results: a uniform structure plus paper-style rendering.

Every experiment module in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult`; the benchmarks print it with :func:`render`,
which reproduces the paper's table layout and appends the paper's own
numbers (scaled to the experiment's size factor where applicable) plus the
shape checks that define "reproduced".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from ..clock import format_duration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .certify import CertifyReport
    from .flight import FlightReport
    from .health import HealthReport
    from .introspect import ForensicsReport
    from .verify import VerifyReport


@dataclass
class ExperimentResult:
    """Structured outcome of one table/figure reproduction."""

    experiment_id: str
    title: str
    parameters: dict[str, Any] = field(default_factory=dict)
    #: Column labels (e.g. delta sizes or txn sizes).
    headers: list[str] = field(default_factory=list)
    #: Measured series: row label -> one value per header (virtual ms
    #: unless ``unit`` says otherwise).
    series: dict[str, list[float]] = field(default_factory=dict)
    #: The paper's numbers for the same rows, if published (same unit).
    paper: dict[str, list[float]] = field(default_factory=dict)
    #: Scale divisor applied to the measured run relative to the paper
    #: (paper values are divided by this when compared).
    paper_scale_divisor: float = 1.0
    unit: str = "ms"
    notes: list[str] = field(default_factory=list)
    #: Shape assertions: name -> bool.  All must hold for "reproduced".
    checks: dict[str, bool] = field(default_factory=dict)
    #: Metrics snapshot (:meth:`repro.obs.MetricsRegistry.snapshot`) taken
    #: after the run, when the harness was invoked with ``--metrics``.
    metrics: dict[str, Any] | None = None

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def check(self, name: str, condition: bool) -> None:
        self.checks[name] = bool(condition)

    def to_dict(self) -> dict[str, Any]:
        out = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "parameters": self.parameters,
            "headers": self.headers,
            "series": self.series,
            "paper": self.paper,
            "paper_scale_divisor": self.paper_scale_divisor,
            "unit": self.unit,
            "checks": self.checks,
            "notes": self.notes,
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        return out


def _format_value(value: float, unit: str) -> str:
    if unit == "ms":
        return format_duration(value)
    if unit == "percent":
        return f"{value * 100:.1f}%"
    if unit == "ratio":
        return f"{value:.2f}x"
    return f"{value:.3g}"


def _render_grid(rows: list[list[str]]) -> str:
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        cells = [cell.ljust(widths[c]) if c == 0 else cell.rjust(widths[c])
                 for c, cell in enumerate(row)]
        lines.append("  ".join(cells))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render(result: ExperimentResult) -> str:
    """Render one experiment in the paper's row/column layout."""
    out = [f"== {result.experiment_id}: {result.title} =="]
    if result.parameters:
        rendered = ", ".join(f"{k}={v}" for k, v in result.parameters.items())
        out.append(f"parameters: {rendered}")
    grid = [["method \\ size"] + [str(h) for h in result.headers]]
    for label, values in result.series.items():
        grid.append([label] + [_format_value(v, result.unit) for v in values])
    out.append(_render_grid(grid))
    if result.paper:
        out.append("")
        divisor = result.paper_scale_divisor
        scale_note = f" (paper / {divisor:g} for the scaled run)" if divisor != 1 else ""
        out.append(f"paper{scale_note}:")
        grid = [["method \\ size"] + [str(h) for h in result.headers]]
        for label, values in result.paper.items():
            grid.append(
                [label] + [_format_value(v / divisor, result.unit) for v in values]
            )
        out.append(_render_grid(grid))
    if result.checks:
        out.append("")
        out.append("shape checks:")
        for name, passed in result.checks.items():
            out.append(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    for note in result.notes:
        out.append(f"note: {note}")
    if result.metrics is not None:
        out.append("")
        out.append(render_cost_breakdown(result.metrics))
    return "\n".join(out)


def _subsystem(qualified_name: str) -> str:
    """`engine.buffer.hit{db=src}` -> `engine`."""
    return qualified_name.split(".", 1)[0]


def _format_count(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.2f}"


def render_cost_breakdown(snapshot: dict[str, Any]) -> str:
    """Render a metrics snapshot grouped by subsystem.

    The breakdown answers the paper's cost questions at a glance: how many
    buffer-pool misses and disk reads an extraction paid, how many rows it
    scanned versus emitted, what the transport and maintenance layers added.
    """
    out = ["cost breakdown:"]
    counters: dict[str, float] = snapshot.get("counters", {})
    gauges: dict[str, dict[str, float]] = snapshot.get("gauges", {})
    histograms: dict[str, dict[str, float]] = snapshot.get("histograms", {})
    subsystems = sorted(
        {_subsystem(name) for name in (*counters, *gauges, *histograms)}
    )
    if not subsystems:
        out.append("  (no metrics recorded)")
        return "\n".join(out)
    for subsystem in subsystems:
        out.append(f"  {subsystem}:")
        for name in sorted(counters):
            if _subsystem(name) == subsystem:
                out.append(f"    {name} = {_format_count(counters[name])}")
        for name in sorted(gauges):
            if _subsystem(name) == subsystem:
                value = gauges[name]
                out.append(
                    f"    {name} = {_format_count(value['value'])} "
                    f"(high water {_format_count(value['high_water'])})"
                )
        for name in sorted(histograms):
            if _subsystem(name) == subsystem:
                h = histograms[name]
                if h["count"]:
                    out.append(
                        f"    {name}: n={_format_count(h['count'])} "
                        f"mean={h['mean']:.3f} p95={h['p95']:.3f} "
                        f"max={h['max']:.3f}"
                    )
                else:
                    out.append(f"    {name}: n=0")
    return "\n".join(out)


def render_analysis(snapshot: dict[str, Any]) -> str:
    """Render the static-analyzer accounting from a metrics snapshot.

    Shown by ``repro-bench --analyze``: how the captured statements were
    classified (safe / pinnable / volatile / idempotent), how many the
    view-relevance pass pruned, and the shape of the conflict graph the
    scheduler exploited.
    """
    counters: dict[str, float] = snapshot.get("counters", {})
    gauges: dict[str, dict[str, float]] = snapshot.get("gauges", {})

    def counter(name: str) -> int:
        return int(counters.get(name, 0))

    def gauge(name: str) -> float:
        return gauges.get(name, {}).get("value", 0.0)

    out = ["static analysis:"]
    total = counter("analysis.statement.total")
    if total == 0:
        out.append("  (no Op-Delta statements analyzed)")
        return "\n".join(out)
    out.append(f"  statements analyzed         {total:>6,}")
    out.append(
        f"    deterministic (safe)      "
        f"{counter('analysis.statement.deterministic'):>6,}"
    )
    out.append(
        f"    time-dependent (pinnable) "
        f"{counter('analysis.statement.time_dependent'):>6,}"
    )
    out.append(
        f"    volatile (fallback)       "
        f"{counter('analysis.statement.volatile'):>6,}"
    )
    out.append(
        f"    idempotent                "
        f"{counter('analysis.statement.idempotent'):>6,}"
    )
    out.append(
        f"    pruned (view-irrelevant)  "
        f"{counter('analysis.statement.pruned'):>6,}"
    )
    components = gauge("analysis.conflict.components")
    if components:
        out.append(
            f"  conflict graph: {int(components)} independent groups, "
            f"{counter('analysis.conflict.edges')} conflict edges, "
            f"largest group {int(gauge('analysis.conflict.largest_component'))}"
        )
    serial = gauge("warehouse.schedule.serial_ms")
    parallel = gauge("warehouse.schedule.parallel_ms")
    if parallel:
        out.append(
            f"  conflict-aware apply: {serial:,.0f} ms serial -> "
            f"{parallel:,.0f} ms on parallel lanes "
            f"({gauge('warehouse.schedule.speedup'):.2f}x)"
        )
    return "\n".join(out)


def render_compaction(snapshot: dict[str, Any]) -> str:
    """Render the compaction/batched-apply accounting from a metrics snapshot.

    Shown by ``repro-bench --compact``: what the window coalescer rewrote
    (per rewrite rule), the bytes it saved before shipping, and how the
    batched group-apply amortised rule lookups and parse work.
    """
    counters: dict[str, float] = snapshot.get("counters", {})

    def counter(name: str) -> int:
        return int(counters.get(name, 0))

    out = ["compaction:"]
    ops_in = counter("compaction.window.ops_in")
    if ops_in == 0:
        out.append("  (no Op-Delta windows compacted)")
        return "\n".join(out)
    ops_out = counter("compaction.window.ops_out")
    bytes_in = counter("compaction.window.bytes_in")
    bytes_out = counter("compaction.window.bytes_out")
    out.append(
        f"  windows compacted           "
        f"{counter('compaction.window.passes'):>6,}"
    )
    out.append(f"  operations in -> out        {ops_in:>6,} -> {ops_out:,}")
    if bytes_in:
        saved = 100.0 * (bytes_in - bytes_out) / bytes_in
        out.append(
            f"  bytes in -> out             {bytes_in:>6,} -> {bytes_out:,} "
            f"({saved:.0f}% saved)"
        )
    out.append(
        f"    updates folded            "
        f"{counter('compaction.rule.updates_folded'):>6,}"
    )
    out.append(
        f"    inserts fused             "
        f"{counter('compaction.rule.inserts_fused'):>6,}"
    )
    out.append(
        f"    pairs annihilated         "
        f"{counter('compaction.rule.pairs_annihilated'):>6,}"
    )
    out.append(
        f"    updates superseded        "
        f"{counter('compaction.rule.updates_superseded'):>6,}"
    )
    components = counter("warehouse.batched.components")
    if components:
        lookups = counter("warehouse.batched.rule_lookups")
        hits = counter("warehouse.batched.rule_cache_hits")
        out.append(
            f"  batched apply: {components} group commits, "
            f"{lookups} rule lookups ({hits} served from the window memo)"
        )
    cache_hits = counter("core.opdelta.parse_cache_hits")
    cache_misses = counter("core.opdelta.parse_cache_misses")
    if cache_hits or cache_misses:
        out.append(
            f"  parse cache: {cache_hits:,} hits / "
            f"{cache_misses:,} misses"
        )
    return "\n".join(out)


def render_health(report: "HealthReport") -> str:
    """Render one audited health pass (``repro-bench --health``).

    Per-pipeline verdict and conservation, then the flagship pipeline in
    detail: view freshness (staleness against the source high watermark),
    the per-stage lag decomposition, source watermarks and any positioned
    audit findings.
    """
    out = ["== pipeline health =="]
    if report.fault is not None:
        status = "DETECTED" if report.fault_detected else "MISSED"
        out.append(f"seeded fault: {report.fault} -> {status}")
    out.append(f"verdict: {report.verdict}")
    for mode, snap in report.modes.items():
        c = snap.conservation
        holds = c.get("captured", 0) == (
            c.get("applied", 0)
            + c.get("pruned", 0)
            + c.get("absorbed", 0)
            + c.get("rejected", 0)
        ) and c.get("in_flight", 0) == 0
        out.append(
            f"  {mode:<10} {snap.verdict:<9} "
            f"captured {c.get('captured', 0):>4} = "
            f"applied {c.get('applied', 0)} + pruned {c.get('pruned', 0)} + "
            f"absorbed {c.get('absorbed', 0)} + rejected {c.get('rejected', 0)} "
            f"(in flight {c.get('in_flight', 0)}) "
            f"[{'conserved' if holds else 'NOT CONSERVED'}]"
        )
    flagship = report.snapshot
    if flagship.views:
        out.append("")
        out.append("view freshness (flagship pipeline):")
        grid = [["view", "ops applied", "applied through", "staleness"]]
        for view in flagship.views:
            applied_through = view["applied_through_ms"]
            grid.append(
                [
                    view["view"],
                    f"{view['ops_applied']:,}",
                    "never" if applied_through is None
                    else format_duration(applied_through),
                    format_duration(view["staleness_ms"]),
                ]
            )
        out.append(_indent(_render_grid(grid)))
    if flagship.stage_lags:
        out.append("")
        out.append("per-stage lag decomposition (virtual ms):")
        grid = [["stage", "n", "mean", "p50", "p95", "max"]]
        for stage, summary in flagship.stage_lags.items():
            grid.append(
                [
                    stage,
                    f"{int(summary['count']):,}",
                    f"{summary['mean']:.2f}",
                    f"{summary['p50']:.2f}",
                    f"{summary['p95']:.2f}",
                    f"{summary['max']:.2f}",
                ]
            )
        out.append(_indent(_render_grid(grid)))
    if flagship.sources:
        out.append("")
        out.append("source watermarks:")
        for source in flagship.sources:
            out.append(
                f"  {source['source']}: low {source['low_seq']} / "
                f"high {source['high_seq']} "
                f"({source['captured']:,} captured, "
                f"{source['settled']:,} settled)"
            )
    if flagship.digest_checks:
        out.append("")
        out.append("state digests:")
        for position, matched in sorted(flagship.digest_checks.items()):
            out.append(
                f"  [{'MATCH' if matched else 'DIVERGED'}] {position}"
            )
    findings = [f for snap in report.modes.values() for f in snap.findings]
    if findings:
        out.append("")
        out.append("findings:")
        for finding in findings:
            position = finding["correlation_id"] or "<pipeline>"
            stage = f" at stage '{finding['stage']}'" if finding["stage"] else ""
            out.append(
                f"  {finding['code']} [{finding['severity']}] "
                f"{position}{stage}: {finding['message']}"
            )
    return "\n".join(out)


def render_flight(report: "FlightReport") -> str:
    """Render one flight recording (``repro-bench --flight``).

    The window timeline (load, backlog, staleness, findings per window),
    then the top-K cost-attribution profile and every SLO state
    transition with its position in virtual time.
    """
    out = ["== flight recorder =="]
    verdict = "CLEAN" if report.exit_code == 0 else "FINDINGS"
    out.append(
        f"verdict: {verdict} (spike detected: {report.spike_detected}, "
        f"all clear: {report.all_clear}, "
        f"ledger conservative: {report.conservative})"
    )
    out.append(f"final virtual time: {format_duration(report.final_virtual_ms)}")
    if report.windows:
        out.append("")
        out.append("window timeline:")
        grid = [
            ["win", "at", "txns", "enq", "applied", "depth", "staleness", ""]
        ]
        for window in report.windows:
            codes = ",".join(f["code"] for f in window["findings"])
            marker = "SPIKE" if window["spike"] else ""
            if codes:
                marker = f"{marker} {codes}".strip()
            grid.append(
                [
                    str(window["window"]),
                    format_duration(window["at_ms"]),
                    str(window["txns"]),
                    str(window["enqueued"]),
                    str(window["applied"]),
                    str(window["queue_depth"]),
                    format_duration(window["staleness_ms"]),
                    marker,
                ]
            )
        out.append(_indent(_render_grid(grid)))
    top = report.top(8)
    if top:
        out.append("")
        total_ms = report.ledger.get("total_traced_ms", 0.0)
        out.append(
            f"where did the time go ({format_duration(total_ms)} traced):"
        )
        grid = [["stage", "entity", "self time", "share", "spans"]]
        for row in top:
            share = row["self_ms"] / total_ms if total_ms else 0.0
            grid.append(
                [
                    row["stage"],
                    row["entity"],
                    format_duration(row["self_ms"]),
                    f"{share * 100:.1f}%",
                    f"{row['spans']:,}",
                ]
            )
        out.append(_indent(_render_grid(grid)))
    if report.findings:
        out.append("")
        out.append("SLO findings:")
        for finding in report.findings:
            out.append(
                f"  {finding['code']} [{finding['severity']}] "
                f"@{format_duration(finding['at_ms'])} "
                f"{finding['objective']}: {finding['message']}"
            )
    return "\n".join(out)


def _render_blame(rows: list[dict]) -> str:
    grid = [["entity", "ops", "check", "ship", "queue", "apply", "critical"]]
    for row in rows:
        segments = row["segments"]
        grid.append(
            [
                row["label"],
                str(row["ops"]),
                format_duration(segments["check"]),
                format_duration(segments["ship"]),
                format_duration(segments["queue"]),
                format_duration(segments["apply"]),
                row["critical_stage"],
            ]
        )
    return _render_grid(grid)


def render_query_result(query: dict) -> str:
    """Render one ad-hoc catalog query result (``repro-bench --sql``)."""
    out = [f"-- {query['sql']}"]
    grid = [[str(column) for column in query["columns"]]]
    for row in query["rows"]:
        grid.append(["NULL" if cell is None else str(cell) for cell in row])
    out.append(_render_grid(grid))
    count = len(query["rows"])
    out.append(f"({count} row{'' if count == 1 else 's'})")
    return "\n".join(out)


def render_forensics(report: "ForensicsReport") -> str:
    """Render one queue-stall drill (``repro-bench --forensics``).

    The drill verdict, the window timeline with the stall marked, the
    ``sys.*`` table census, per-window/per-view stage blame with the p99
    critical path, the SQL-vs-auditor conservation balance sheet and the
    monitoring-view refresh ledger.
    """
    out = ["== system catalog forensics =="]
    verdict = "STALL BLAMED" if report.exit_code == 0 else "FORENSICS FAILED"
    out.append(
        f"verdict: {verdict} (p99 stage: {report.p99_stage or '<none>'}, "
        f"queue share: {report.p99_queue_share * 100:.1f}%, "
        f"conservation: {'match' if report.conservation_matches else 'DIVERGED'}, "
        f"observer cost: {'zero' if report.zero_cost_ok else 'NONZERO'})"
    )
    out.append(f"final virtual time: {format_duration(report.final_virtual_ms)}")
    if report.windows:
        out.append("")
        out.append("window timeline:")
        grid = [["win", "at", "txns", "enq", "applied", "depth", ""]]
        for window in report.windows:
            grid.append(
                [
                    str(window["window"]),
                    format_duration(window["at_ms"]),
                    str(window["txns"]),
                    str(window["enqueued"]),
                    str(window["applied"]),
                    str(window["queue_depth"]),
                    "STALLED" if window["stalled"] else "",
                ]
            )
        out.append(_indent(_render_grid(grid)))
    if report.table_rows:
        out.append("")
        out.append("system catalog:")
        grid = [["table", "rows"]]
        for name, rows in report.table_rows.items():
            grid.append([name, f"{rows:,}"])
        out.append(_indent(_render_grid(grid)))
    p99 = report.forensics.get("p99")
    if p99 is not None:
        out.append("")
        out.append(
            f"p99 critical path: {p99['correlation_id']} "
            f"(window {p99['window_index']}, "
            f"views {','.join(p99['views']) or '<none>'})"
        )
        out.append(
            f"  check {format_duration(p99['check_ms'])}"
            f" | ship {format_duration(p99['ship_ms'])}"
            f" | queue {format_duration(p99['queue_ms'])}"
            f" | apply {format_duration(p99['apply_ms'])}"
            f" -> end-to-end {format_duration(p99['end_to_end_ms'])}"
        )
    if report.forensics.get("windows"):
        out.append("")
        out.append("stage blame by window:")
        out.append(_indent(_render_blame(report.forensics["windows"])))
    if report.forensics.get("views"):
        out.append("")
        out.append("stage blame by view:")
        out.append(_indent(_render_blame(report.forensics["views"])))
    if report.conservation_sql:
        out.append("")
        state = "match" if report.conservation_matches else "DIVERGED"
        out.append(f"conservation ({state}):")
        grid = [["bucket", "sql", "auditor"]]
        for bucket, sql_count in report.conservation_sql.items():
            grid.append(
                [
                    bucket,
                    str(sql_count),
                    str(report.conservation_auditor.get(bucket, 0)),
                ]
            )
        out.append(_indent(_render_grid(grid)))
    if report.meta_refreshes:
        out.append("")
        out.append(
            "monitoring views "
            f"(converged: {report.meta_converged}, "
            f"guard: {report.meta_guard_ok}, "
            f"digests: {report.meta_digests_ok}):"
        )
        for index, refresh in enumerate(report.meta_refreshes):
            deltas = ", ".join(
                f"{delta['table']} +{delta['inserted']}"
                f"/~{delta['updated']}/-{delta['deleted']}"
                for delta in refresh["deltas"]
                if delta["inserted"] or delta["updated"] or delta["deleted"]
            )
            out.append(
                f"  refresh {index}: {refresh['rows_changed']} rows changed"
                + (f" ({deltas})" if deltas else " (empty delta)")
            )
    if report.query is not None:
        out.append("")
        out.append(render_query_result(report.query))
    return "\n".join(out)


def render_certify(report: "CertifyReport") -> str:
    """Render one certification pass (``repro-bench --certify``).

    Per-schedule certificates, the widening delta (what the structural
    commutativity prover buys), the state-parity and sanitizer-overhead
    verdicts, and — for the race drill — every positioned ``RACE*``
    finding with its witness interleaving.
    """
    out = ["== schedule certification =="]
    if report.fault is not None:
        status = "DETECTED" if report.fault_detected else "MISSED"
        out.append(f"seeded fault: {report.fault} -> {status}")
    out.append(
        f"verdict: {report.verdict} "
        f"({report.transactions} txns, {report.operations} ops, "
        f"{report.lanes} lanes)"
    )
    grid = [
        ["schedule", "verdict", "pairs", "conflicting", "commuting", "findings"]
    ]
    for mode, summary in report.modes.items():
        grid.append(
            [
                mode,
                summary["verdict"],
                f"{summary['pairs_checked']:,}",
                f"{summary['conflicting_pairs']:,}",
                f"{summary['commuting_pairs']:,}",
                str(len(summary["findings"])),
            ]
        )
    out.append(_indent(_render_grid(grid)))
    if report.widening:
        conservative = report.widening["conservative"]
        widened = report.widening["widened"]
        out.append("")
        out.append(
            "commutativity widening: "
            f"{conservative['edges']} -> {widened['edges']} conflict edges, "
            f"{conservative['components']} -> {widened['components']} "
            f"components ({report.widening['newly_commuting_pairs']} pairs "
            "newly proven commuting, "
            f"{'sound' if report.widening['sound'] else 'UNSOUND'})"
        )
    if report.parity:
        out.append(
            "state parity: "
            f"{'bit-identical' if report.parity['bit_identical'] else 'DIVERGED'} "
            "across serial / batched / sanitized-batched "
            f"(sanitizer {'clean' if report.parity['sanitizer_clean'] else 'FINDINGS'})"
        )
    if report.overhead:
        out.append(
            "sanitizer overhead: "
            f"{format_duration(report.overhead['sanitizer_off_elapsed_ms'])} off vs "
            f"{format_duration(report.overhead['sanitizer_on_elapsed_ms'])} on "
            f"({'zero virtual-time overhead' if report.overhead['zero_virtual_overhead'] else 'OVERHEAD DETECTED'})"
        )
    if report.drill is not None:
        out.append("")
        out.append("race drill (swap-lane-ops):")
        static = report.drill["static"]
        out.append(
            f"  static certifier: {static['verdict']} "
            f"({len(static['findings'])} finding(s))"
        )
        for finding in static["findings"][:3]:
            lanes = ""
            if finding["lane_a"] is not None or finding["lane_b"] is not None:
                lanes = f" [lane {finding['lane_a']} vs lane {finding['lane_b']}]"
            out.append(
                f"    {finding['code']} {finding['table']}: "
                f"{finding['op_a']} vs {finding['op_b']}{lanes}"
            )
            if finding["witness"]:
                out.append(
                    "      witness interleaving: "
                    + " -> ".join(finding["witness"])
                )
        dynamic = report.drill["dynamic_findings"]
        codes: dict[str, int] = {}
        for finding in dynamic:
            codes[finding["code"]] = codes.get(finding["code"], 0) + 1
        summary = ", ".join(f"{code} x{n}" for code, n in sorted(codes.items()))
        out.append(
            f"  runtime sanitizer: {len(dynamic)} finding(s)"
            + (f" ({summary})" if summary else "")
        )
        out.append(
            "  integrator pre-flight: "
            + (
                "REFUSED to run the planted schedule"
                if report.drill["integrator_rejected"]
                else "RAN IT (fault missed)"
            )
        )
    return "\n".join(out)


def render_verify(report: "VerifyReport") -> str:
    """Render one plan-verification pass (``repro-bench --verify-plans``).

    The per-view verdict grid, the pay-once cache proof, the
    certificate-gated integration's parity verdicts and — for the
    corruption drill — the verifier's concrete counterexample.
    """
    out = ["== delta-rule verification =="]
    if report.fault is not None:
        status = "DETECTED" if report.fault_detected else "MISSED"
        out.append(f"seeded fault: {report.fault} -> {status}")
    out.append(f"verdict: {report.verdict} ({len(report.plans)} plans)")
    grid = [
        ["view", "class", "verdict", "scenarios", "dbs", "warn", "err"]
    ]
    for name, plan in report.plans.items():
        grid.append(
            [
                name,
                plan["classification"],
                plan["verdict"],
                f"{plan['scenarios']:,}",
                str(plan["databases"]),
                str(len(plan["warnings"])),
                str(len(plan["errors"])),
            ]
        )
    out.append(_indent(_render_grid(grid)))
    for name, plan in report.plans.items():
        for finding in [*plan["errors"], *plan["warnings"]]:
            out.append(f"  {finding['code']} [{finding['severity']}] {name}"
                       f" [{finding['kind']}]: {finding['message']}")
    if report.cache:
        cache = report.cache
        out.append(
            "certificate cache: "
            f"first pass {format_duration(cache['first_pass_virtual_ms'])} "
            f"({cache['first_pass_misses']} misses), second pass "
            f"{format_duration(cache['second_pass_virtual_ms'])} "
            f"({cache['second_pass_hits']} hits) -> "
            + ("pay-once" if cache["pay_once"] else "RE-VERIFIED (cache miss)")
        )
    if report.integration:
        integration = report.integration
        out.append(
            "integration pre-flight: "
            f"{integration['preflight_cache_hits']} cached certificates in "
            f"{format_duration(integration['preflight_virtual_ms'])}; "
            f"{integration['transactions']} txns applied with "
            f"{integration['plan_rules_applied']} plan rules in "
            f"{format_duration(integration['apply_virtual_ms'])}"
        )
        out.append(
            "state parity: "
            + (
                "views, aggregate and mirror all match recomputation"
                if integration["parity"]
                else "DIVERGED "
                + str(
                    {
                        k: integration[k]
                        for k in (
                            "view_parity",
                            "aggregate_parity",
                            "mirror_parity",
                        )
                    }
                )
            )
        )
    if report.drill is not None:
        out.append("")
        out.append("corruption drill (corrupt-delta-rule):")
        out.append(
            f"  verifier: {report.drill['verdict']} "
            f"({', '.join(report.drill['error_codes']) or 'no findings'}; "
            "counterexample "
            + (
                "replays divergent"
                if report.drill["counterexample_replays"]
                else "MISSING OR SPURIOUS"
            )
            + ")"
        )
        if report.drill["counterexample"]:
            out.append(_indent(report.drill["counterexample"], "    "))
        out.append(
            "  integrator pre-flight: "
            + (
                "REFUSED to drive the corrupted view"
                if report.drill["integrator_rejected"]
                else "DROVE IT (fault missed)"
            )
        )
        out.append(
            "  control: clean verifier says "
            + report.drill["clean_verifier_verdict"]
        )
    return "\n".join(out)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def series_ratios(numerator: Sequence[float], denominator: Sequence[float]) -> list[float]:
    """Element-wise ratio of two measured series."""
    return [n / d if d else float("inf") for n, d in zip(numerator, denominator)]


def strictly_increasing(values: Sequence[float]) -> bool:
    return all(b > a for a, b in zip(values, values[1:]))


def non_decreasing(values: Sequence[float]) -> bool:
    return all(b >= a for a, b in zip(values, values[1:]))


def roughly_constant(values: Sequence[float], tolerance: float = 0.6) -> bool:
    """Max/min spread within ``1 + tolerance``."""
    if not values:
        return True
    low, high = min(values), max(values)
    if low <= 0:
        return False
    return high / low <= 1.0 + tolerance


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0

"""``repro-bench --verify-plans``: prove the compiled delta rules first.

Compiles the seed view catalog — a full-width mirror view, the selective
``active_parts`` view, a supplier join view and the ``qty_by_supplier``
aggregate — into maintenance plans, then:

* **certifies** every plan with the small-scope delta-rule verifier
  (:class:`~repro.analysis.verify.DeltaRuleVerifier`): each (view ×
  operation kind) is exhaustively model-checked over abstract
  micro-databases and the certificate records the scenario counts;
* proves the certificate cache is **pay-once**: a second certification
  pass over the identical catalog is served entirely from the cache and
  costs exactly zero virtual time on the verifier's metered clock;
* runs a captured seed workload through the plan-driven
  :class:`~repro.warehouse.opdelta_integrator.OpDeltaIntegrator` — whose
  mandatory pre-flight re-uses the same cached certificates — and checks
  **state parity**: every incrementally maintained view lands exactly on
  its oracle recomputation from the final mirror state.

``--fault corrupt-delta-rule`` plants a wrong SUM sign into the aggregate
retraction path (retraction *adds* the retracted quantity).  Success then
inverts — the drill exits 0 only when the verifier refutes the corrupted
plan with a concrete counterexample, the counterexample replays divergent,
*and* the integrator's pre-flight refuses to drive the view.  Everything
runs on the virtual clock, so the :class:`VerifyReport` JSON is
byte-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..analysis.verify import (
    CertificateCache,
    DeltaRuleVerifier,
    PlanCertificate,
)
from ..clock import VirtualClock
from ..core.capture import OpDeltaCapture
from ..core.selfmaint import JoinSpec, ViewDefinition
from ..core.stores import FileLogStore
from ..engine.schema import TableSchema
from ..errors import WarehouseError
from ..semantics import (
    PlanDrivenCapturePolicy,
    SchemaCatalog,
    ViewMaintenancePlanner,
)
from ..warehouse.aggregates import (
    AggregateSpec,
    AggregateViewDefinition,
    MaterializedAggregateView,
)
from ..warehouse.opdelta_integrator import OpDeltaIntegrator
from ..warehouse.warehouse import Warehouse
from ..workloads.records import (
    PartsGenerator,
    parts_schema,
    strip_timestamp,
    suppliers_schema,
)
from .experiments.common import build_workload_database

#: Version of the ``--verify-plans --json`` document layout.  Bump on any
#: structural change to :meth:`VerifyReport.to_dict`.
SCHEMA_VERSION = 1

#: Injectable faults (``repro-bench --verify-plans --fault ...``).
FAULTS = ("corrupt-delta-rule",)

# Smoke-sized seed workload, same shape as the semantics experiment.
TABLE_ROWS = 300
TRANSACTIONS = 6
TXN_ROWS = 20

#: Full-width mirror view: every base column projected, no predicate —
#: the planner's purely SELF_MAINTAINABLE (OP_ONLY everywhere) case.
MIRROR_VIEW = ViewDefinition(
    name="parts_mirror_lite",
    base_table="parts",
    columns=tuple(parts_schema().column_names),
    predicate=None,
    key_column="part_id",
)

#: Selective view: membership transitions under status flips (hybrid).
SPJ_VIEW = ViewDefinition(
    name="active_parts",
    base_table="parts",
    columns=("part_id", "part_no", "status", "quantity", "price"),
    predicate="status = 'active'",
    key_column="part_id",
)

#: Join view projecting a dimension attribute: the paper's "joined tables
#: mirrored at the warehouse" hybrid case.
JOIN_VIEW = ViewDefinition(
    name="parts_with_supplier",
    base_table="parts",
    columns=("part_id", "status", "quantity", "supplier_id"),
    predicate=None,
    key_column="part_id",
    join=JoinSpec(
        "suppliers", "supplier_id", "supplier_id", columns=("supplier_name",)
    ),
)

AGG_VIEW = AggregateViewDefinition(
    "qty_by_supplier",
    "parts",
    group_by=("supplier_id",),
    aggregates=(
        AggregateSpec("COUNT"),
        AggregateSpec("SUM", "quantity"),
        AggregateSpec("AVG", "price"),
    ),
)


@dataclass
class VerifyReport:
    """One verification pass over the seed plan catalog, as plain data."""

    fault: str | None = None
    #: View name -> certificate summary, in catalog order.
    plans: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: First pass vs cached second pass: the pay-once proof.
    cache: dict[str, Any] = field(default_factory=dict)
    #: Plan-driven apply behind the verifier pre-flight, plus parity.
    integration: dict[str, Any] = field(default_factory=dict)
    #: The seeded wrong-sign drill outcome (``--fault`` only).
    drill: dict[str, Any] | None = None

    @property
    def verdict(self) -> str:
        """``VERIFIED`` only when every seed plan certified clean."""
        verdicts = [plan["verdict"] for plan in self.plans.values()]
        verified = bool(verdicts) and all(v == "VERIFIED" for v in verdicts)
        return "VERIFIED" if verified else "REFUTED"

    @property
    def clean(self) -> bool:
        return (
            self.verdict == "VERIFIED"
            and bool(self.cache.get("pay_once"))
            and bool(self.integration.get("accepted"))
            and bool(self.integration.get("parity"))
        )

    @property
    def fault_detected(self) -> bool:
        """Did the verifier — and the integrator — catch the wrong sign?"""
        if self.drill is None:
            return False
        return (
            self.drill["verdict"] == "REFUTED"
            and bool(self.drill["counterexample"])
            and bool(self.drill["counterexample_replays"])
            and bool(self.drill["integrator_rejected"])
        )

    @property
    def exit_code(self) -> int:
        """0 = seed plans verified, or: seeded corruption fully caught."""
        if self.fault is not None:
            return 0 if self.fault_detected else 1
        return 0 if self.clean else 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "fault": self.fault,
            "verdict": self.verdict,
            "fault_detected": self.fault_detected if self.fault else None,
            "plans": self.plans,
            "cache": self.cache,
            "integration": self.integration,
            "drill": self.drill,
        }


def _catalog():
    """The seed plan catalog: (plans, definitions, schemas) mappings."""
    schemas = {"parts": parts_schema(), "suppliers": suppliers_schema()}
    catalog = SchemaCatalog(schemas.values())
    planner = ViewMaintenancePlanner(catalog)
    plans = planner.plan_catalog(
        [MIRROR_VIEW, SPJ_VIEW, JOIN_VIEW], [AGG_VIEW]
    )
    definitions: dict[str, Any] = {
        view.name: view for view in (MIRROR_VIEW, SPJ_VIEW, JOIN_VIEW)
    }
    definitions[AGG_VIEW.name] = AGG_VIEW
    return plans, definitions, schemas


def _plan_summary(plan, certificate: PlanCertificate) -> dict[str, Any]:
    return {
        "classification": plan.classification.value,
        "verdict": certificate.verdict,
        "stamp": certificate.stamp,
        "scenarios": certificate.scenarios,
        "scenarios_by_kind": dict(certificate.scenarios_by_kind),
        "databases": certificate.databases,
        "warnings": [
            finding.to_dict()
            for finding in certificate.findings
            if not finding.refutes
        ],
        "errors": [
            finding.to_dict()
            for finding in certificate.findings
            if finding.refutes
        ],
    }


def _norm_groups(groups: dict[tuple, dict[str, Any]]) -> dict[tuple, dict]:
    """Round float aggregates so running totals compare to recomputation.

    Incremental SUM/AVG maintenance accumulates in a different order than
    a fresh recompute; both are correct to ~1e-12 relative error, so the
    parity check compares at the verifier's 9-decimal precision.
    """
    return {
        key: {
            label: round(value, 9) if isinstance(value, float) else value
            for label, value in labels.items()
        }
        for key, labels in groups.items()
    }


def _build_warehouse(name: str, initial_rows: Sequence[tuple], clock):
    """A warehouse with parts + suppliers mirrors and all four views."""
    wh = Warehouse(name, clock=clock)
    wh.create_mirror(parts_schema())
    wh.create_mirror(suppliers_schema())
    wh.initial_load_rows("parts", initial_rows)
    wh.initial_load_rows("suppliers", PartsGenerator().supplier_rows())
    mirror = wh.define_view(MIRROR_VIEW, parts_schema())
    spj = wh.define_view(SPJ_VIEW, parts_schema())
    join = wh.define_view(JOIN_VIEW, parts_schema())
    agg = MaterializedAggregateView(wh.database, AGG_VIEW, parts_schema())
    txn = wh.database.begin()
    for view in (mirror, spj, join):
        view.initialize(initial_rows, txn)
    agg.initialize(initial_rows, txn)
    wh.database.commit(txn)
    return wh, (mirror, spj, join), agg


def _run_workload(session, workload) -> None:
    """Quantity bumps, membership flips, range deletes, fresh inserts."""
    for i in range(TRANSACTIONS):
        low, high = i * TXN_ROWS, (i + 1) * TXN_ROWS
        if i % 3 == 0:
            session.execute(
                f"UPDATE parts SET quantity = quantity + 5 "
                f"WHERE part_ref >= {low} AND part_ref < {high}"
            )
        elif i % 3 == 1:
            session.execute(
                f"UPDATE parts SET status = 'retired' "
                f"WHERE part_ref >= {low} AND part_ref < {high}"
            )
        else:
            session.execute(
                f"DELETE FROM parts WHERE part_ref >= {low} "
                f"AND part_ref < {high}"
            )
    workload.run_insert(TXN_ROWS)


def _wrong_sum_sign_factory(database, definition, schema: TableSchema):
    """Aggregate factory with the planted fault: retraction *adds* SUMs."""

    class _WrongSumSignView(MaterializedAggregateView):
        _flip = False

        def _remove_row(self, row, txn):
            self._flip = True
            try:
                super()._remove_row(row, txn)
            finally:
                self._flip = False

        def _contribution(self, spec, row):
            value = super()._contribution(spec, row)
            if self._flip and spec.function == "SUM" and value is not None:
                return -value
            return value

    return _WrongSumSignView(database, definition, schema)


def _run_drill(plans, definitions) -> dict[str, Any]:
    """Certify the aggregate plan against the corrupted view runtime."""
    agg_plan = plans[AGG_VIEW.name]
    corrupted = DeltaRuleVerifier(
        cache=CertificateCache(), aggregate_factory=_wrong_sum_sign_factory
    )
    certificate = corrupted.certify_plan(agg_plan, AGG_VIEW, parts_schema())
    errors = [f for f in certificate.findings if f.refutes]
    example = errors[0] if errors and errors[0].counterexample else None
    replays = bool(
        example is not None
        and corrupted.replay(agg_plan, AGG_VIEW, parts_schema(), example)
    )

    # The integrator pre-flight must refuse to drive the corrupted view.
    source, _workload = build_workload_database(
        20, name="verify-drill-source"
    )
    initial_rows = [v for _r, v in source.table("parts").scan()]
    wh = Warehouse("verify-drill-wh", clock=source.clock)
    wh.create_mirror(parts_schema())
    wh.initial_load_rows("parts", initial_rows)
    agg = _wrong_sum_sign_factory(wh.database, AGG_VIEW, parts_schema())
    txn = wh.database.begin()
    agg.initialize(initial_rows, txn)
    wh.database.commit(txn)
    rejected, error = False, ""
    try:
        OpDeltaIntegrator(
            wh.database.internal_session(),
            aggregate_views=[agg],
            plans={AGG_VIEW.name: agg_plan},
            verifier=corrupted,
        )
    except WarehouseError as exc:
        rejected = True
        error = str(exc).splitlines()[0]

    # Control: an uncorrupted verifier still certifies the same plan.
    control = DeltaRuleVerifier(cache=CertificateCache()).certify_plan(
        agg_plan, AGG_VIEW, parts_schema()
    )
    return {
        "planted": "corrupt-delta-rule",
        "view": AGG_VIEW.name,
        "verdict": certificate.verdict,
        "error_codes": sorted({f.code for f in errors}),
        "counterexample": example.render() if example is not None else None,
        "counterexample_replays": replays,
        "integrator_rejected": rejected,
        "integrator_error": error,
        "clean_verifier_verdict": control.verdict,
    }


def run_verify(fault: str | None = None) -> VerifyReport:
    """One full verification pass (optionally with the seeded fault)."""
    if fault is not None and fault not in FAULTS:
        raise ValueError(
            f"unknown fault {fault!r}; --verify-plans supports {FAULTS}"
        )
    report = VerifyReport(fault=fault)
    plans, definitions, schemas = _catalog()

    # Pass 1: certify the whole catalog on a metered private verifier.
    clock = VirtualClock()
    cache = CertificateCache()
    verifier = DeltaRuleVerifier(cache=cache, clock=clock)
    started = clock.now
    certificates = verifier.certify_catalog(plans, definitions, schemas)
    first_ms = clock.now - started
    for name, plan in plans.items():
        report.plans[name] = _plan_summary(plan, certificates[name])

    # Pass 2: identical catalog — every certificate must come from the
    # cache, at exactly zero virtual cost.  That is the pay-once claim.
    hits_before, started = cache.hits, clock.now
    recertified = verifier.certify_catalog(plans, definitions, schemas)
    second_ms = clock.now - started
    second_hits = cache.hits - hits_before
    identical = all(
        recertified[name] is certificates[name] for name in certificates
    )
    report.cache = {
        "plans": len(plans),
        "first_pass_virtual_ms": first_ms,
        "first_pass_misses": cache.misses,
        "second_pass_virtual_ms": second_ms,
        "second_pass_hits": second_hits,
        "identical_certificates": identical,
        "pay_once": (
            identical and second_ms == 0.0 and second_hits == len(plans)
        ),
    }

    # Capture a seed workload and drive it through the plan-driven
    # integrator; its pre-flight re-uses the verifier (and its cache).
    source, workload = build_workload_database(
        TABLE_ROWS, name="verify-source"
    )
    initial_rows = [v for _r, v in source.table("parts").scan()]
    store = FileLogStore(source)
    capture = OpDeltaCapture(
        workload.session,
        store,
        tables={"parts"},
        hybrid_policy=PlanDrivenCapturePolicy(plans),
    )
    capture.attach()
    _run_workload(workload.session, workload)
    capture.detach()
    groups = store.drain()

    wh, spj_views, agg = _build_warehouse(
        "verify-wh", initial_rows, source.clock
    )
    hits_before, preflight_start = cache.hits, clock.now
    integrator = OpDeltaIntegrator(
        wh.database.internal_session(),
        views=list(spj_views),
        aggregate_views=[agg],
        plans=plans,
        verifier=verifier,
    )
    preflight_ms = clock.now - preflight_start
    preflight_hits = cache.hits - hits_before
    apply_report = integrator.integrate(groups)

    mirror_rows = [v for _r, v in wh.database.table("parts").scan()]
    final_rows = [v for _r, v in source.table("parts").scan()]
    view_parity = all(
        view.rows() == view.recompute(mirror_rows) for view in spj_views
    )
    agg_parity = _norm_groups(agg.groups()) == _norm_groups(
        agg.recompute(mirror_rows)
    )
    mirror_parity = strip_timestamp(
        parts_schema(), mirror_rows
    ) == strip_timestamp(parts_schema(), final_rows)
    report.integration = {
        "accepted": True,
        "certificates": dict(apply_report.plan_certificates),
        "preflight_cache_hits": preflight_hits,
        "preflight_virtual_ms": preflight_ms,
        "transactions": apply_report.transactions,
        "plan_rules_applied": apply_report.plan_rules_applied,
        "apply_virtual_ms": apply_report.elapsed_ms,
        "view_parity": view_parity,
        "aggregate_parity": agg_parity,
        "mirror_parity": mirror_parity,
        "parity": view_parity and agg_parity and mirror_parity,
    }

    if fault is not None:
        report.drill = _run_drill(plans, definitions)
    return report

"""``repro-bench --health``: audited end-to-end pipeline health.

Runs the seed compaction workload through three capture-to-warehouse
pipelines, each under its own :class:`~repro.obs.pipeline.PipelineRecorder`:

* **plain** — the captured window shipped verbatim
  (:meth:`~repro.transport.shipper.FileShipper.ship_op_deltas`) and applied
  one warehouse transaction per source commit;
* **batched** — the window through the persistent queue, applied one
  warehouse transaction per conflict component
  (:meth:`~repro.warehouse.OpDeltaIntegrator.integrate_batched`);
* **compacted** — the window rewritten by
  :class:`~repro.compaction.Coalescer` first, then queued and batch-applied
  (the flagship pipeline).

Each pipeline is then audited (:class:`~repro.obs.pipeline.PipelineAuditor`):
conservation — ``captured = applied + pruned + absorbed + rejected`` —
duplicate/reorder checks, and a :class:`~repro.obs.pipeline.StateDigest`
comparison of the warehouse mirror against the source table.  Everything
runs on the virtual clock, so the resulting :class:`HealthReport` is
byte-identical across runs.

``--fault drop-queue-message`` seeds a failure into the flagship pipeline:
the consumer loses one queue message but acks the whole window (an
ack-then-crash consumer).  A healthy auditor must *detect* it — a
positioned AUD001 gap plus an AUD004 digest divergence — so the exit code
inverts: with a fault injected, success means findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..compaction import Coalescer
from ..core.capture import OpDeltaCapture
from ..core.stores import FileLogStore
from ..obs.pipeline import (
    PipelineAuditor,
    PipelineRecorder,
    PipelineSnapshot,
    StateDigest,
    build_snapshot,
    observe_pipeline,
)
from ..transport.network import NetworkModel
from ..transport.queue import PersistentQueue
from ..transport.shipper import FileShipper, enqueue_op_deltas
from ..warehouse.opdelta_integrator import OpDeltaIntegrator
from ..warehouse.warehouse import Warehouse
from ..workloads.records import parts_schema, strip_timestamp
from .experiments.common import build_workload_database
from .experiments.compaction import build_analyzer, _run_workload

#: Version of the ``--health --json`` document layout.  Bump on any
#: structural change to :meth:`HealthReport.to_dict`.
SCHEMA_VERSION = 1

#: Pipelines run by one health pass, in report order.
MODES = ("plain", "batched", "compacted")
#: The pipeline whose snapshot headlines the report (and takes the fault).
FLAGSHIP = "compacted"
#: Injectable faults (``repro-bench --health --fault ...``).
FAULTS = ("drop-queue-message",)

# Smaller than the compaction experiment's defaults: the health pass runs
# three whole pipelines and is part of the smoke path.
TABLE_ROWS = 400
FOLD_TXNS = 3
CHURN_TXNS = 2
SCRATCH_TXNS = 2
INSERTS_PER_TXN = 4
TXN_ROWS = 10


@dataclass
class HealthReport:
    """One audited health pass over all pipelines, as plain data."""

    fault: str | None = None
    #: Mode name -> audited snapshot, in :data:`MODES` order.
    modes: dict[str, PipelineSnapshot] = field(default_factory=dict)

    @property
    def snapshot(self) -> PipelineSnapshot:
        """The flagship pipeline's snapshot."""
        return self.modes[FLAGSHIP]

    @property
    def verdict(self) -> str:
        """``CLEAN`` only when every pipeline audited clean."""
        verdicts = [s.verdict for s in self.modes.values()]
        return "CLEAN" if all(v == "CLEAN" for v in verdicts) else "FINDINGS"

    @property
    def fault_detected(self) -> bool:
        """Did the auditor flag the seeded fault (flagship errors)?"""
        return any(
            finding["severity"] == "error" for finding in self.snapshot.findings
        )

    @property
    def exit_code(self) -> int:
        """0 = healthy pipeline, or: seeded fault correctly detected."""
        if self.fault is not None:
            return 0 if self.fault_detected else 1
        return 0 if self.verdict == "CLEAN" else 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "fault": self.fault,
            "verdict": self.verdict,
            "fault_detected": self.fault_detected if self.fault else None,
            "modes": {name: snap.to_dict() for name, snap in self.modes.items()},
        }


def run_health(fault: str | None = None) -> HealthReport:
    """Run and audit every pipeline; seed ``fault`` into the flagship."""
    if fault is not None and fault not in FAULTS:
        raise ValueError(f"unknown fault {fault!r}; available: {', '.join(FAULTS)}")
    report = HealthReport(fault=fault)
    for mode in MODES:
        report.modes[mode] = _run_mode(
            mode, fault=fault if mode == FLAGSHIP else None
        )
    return report


def _run_mode(mode: str, fault: str | None = None) -> PipelineSnapshot:
    """One capture-to-warehouse pipeline under its own recorder, audited."""
    source, workload = build_workload_database(
        TABLE_ROWS, name=f"health-{mode}"
    )
    initial_rows = [values for _rid, values in source.table("parts").scan()]
    schema = parts_schema()
    analyzer = build_analyzer()
    store = FileLogStore(source)
    recorder = PipelineRecorder(clock=source.clock)
    components = None
    with observe_pipeline(recorder):
        capture = OpDeltaCapture(
            workload.session,
            store,
            tables={"parts"},
            analyzer=analyzer,
            source=f"health-{mode}",
        )
        capture.attach()
        _run_workload(
            workload.session,
            FOLD_TXNS,
            CHURN_TXNS,
            SCRATCH_TXNS,
            INSERTS_PER_TXN,
            TXN_ROWS,
        )
        capture.detach()
        groups = store.drain()

        warehouse = Warehouse(f"health-wh-{mode}", clock=source.clock)
        warehouse.create_mirror(schema)
        warehouse.initial_load_rows("parts", initial_rows)
        view = warehouse.define_view(analyzer.views[0], schema)
        txn = warehouse.database.begin()
        view.initialize(initial_rows, txn)
        warehouse.database.commit(txn)
        integrator = OpDeltaIntegrator(
            warehouse.database.internal_session(),
            views=[view],
            analyzer=analyzer,
        )

        if mode == "plain":
            shipper = FileShipper(NetworkModel(source.clock))
            shipper.ship_op_deltas(groups)
            integrator.integrate(groups)
        else:
            window_groups = groups
            if mode == "compacted":
                coalescer = Coalescer(analyzer=analyzer, clock=source.clock)
                window_groups, _compaction = coalescer.compact_window(groups)
            queue: PersistentQueue = PersistentQueue(
                source.clock, name=f"health-{mode}"
            )
            enqueue_op_deltas(queue, window_groups)
            window = queue.receive_window(limit=len(window_groups) + 1)
            payloads = [payload for _id, payload in window]
            if fault == "drop-queue-message":
                # The consumer loses the first message but still acks the
                # whole window: an ack-then-crash bug the audit must catch.
                payloads = payloads[1:]
            graph = analyzer.conflict_graph(payloads)
            integrator.integrate_batched(payloads, graph=graph)
            queue.ack_window(delivery_id for delivery_id, _payload in window)
            components = graph.components

    audit = PipelineAuditor(recorder).audit(conflict_components=components)
    expected = StateDigest.from_rows(
        strip_timestamp(
            schema, [v for _rid, v in source.table("parts").scan()]
        )
    )
    actual = StateDigest.from_rows(
        strip_timestamp(
            schema, [v for _rid, v in warehouse.database.table("parts").scan()]
        )
    )
    PipelineAuditor(recorder).check_digest(
        audit, f"{mode}:parts-mirror", expected, actual
    )
    snapshot = build_snapshot(recorder, audit, now_ms=source.clock.now)
    snapshot.extras["mode"] = mode
    snapshot.extras["fault"] = fault
    return snapshot

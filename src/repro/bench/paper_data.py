"""The paper's published numbers, transcribed for comparison.

Times are converted to milliseconds.  "Reproduction targets" are the shape
properties EXPERIMENTS.md tracks — we reproduce relative behaviour (who
wins, by what factor, where curves bend), not the absolute times of the
authors' 300 MHz NT testbed.
"""

from __future__ import annotations

MINUTE_MS = 60_000.0

#: Delta sizes of Tables 1-3 (megabytes; 100-byte records → 10,000 rows/MB).
TABLE123_SIZES_MB = (100, 200, 400, 600, 800, 1000)

#: Rows per megabyte at the paper's 100-byte record size.
ROWS_PER_MB = 10_000

#: Transaction sizes of Figures 2-3 and Table 4.
TXN_SIZES = (10, 100, 1_000, 10_000)

#: Source-table size for the transaction-sized experiments.
FIG2_TABLE_ROWS = 100_000

# --------------------------------------------------------------------- Table 1
#: "Database deltas dump and load techniques" (minutes → ms).
TABLE1_MS = {
    "export": [3, 13, 23, 37, 56, 92],
    "import": [28, 67, 191, 321, 371, 599],
    "loader": [20, 34, 68, 100, 148, 178],
}
TABLE1_MS = {k: [m * MINUTE_MS for m in v] for k, v in TABLE1_MS.items()}

# --------------------------------------------------------------------- Table 2
#: "Time stamp based delta extraction" from a 1G table of 10M 100-byte rows.
TABLE2_MS = {
    "file_output": [17, 26, 43, 59, 79, 96],
    "table_output": [29, 55, 105, 160, 209, 264],
    "table_output_export": [32, 68, 128, 197, 265, 356],
}
TABLE2_MS = {k: [m * MINUTE_MS for m in v] for k, v in TABLE2_MS.items()}

# --------------------------------------------------------------------- Table 3
#: "Total time taken to extract and load deltas".
TABLE3_MS = {
    "ts_file_plus_loader": [37, 60, 111, 159, 227, 274],
    "ts_table_export_import": [60, 135, 319, 518, 636, 955],
}
TABLE3_MS = {k: [m * MINUTE_MS for m in v] for k, v in TABLE3_MS.items()}

# --------------------------------------------------------------------- Table 4
#: "Response time (ms) - DB log vs file log" for Op-Delta capture.
TABLE4_MS = {
    "insert_dblog": [117, 862, 8_081, 81_840],
    "insert_filelog": [75, 519, 5_379, 55_364],
    "delete_dblog": [80, 428, 4_046, 43_962],
    "delete_filelog": [74, 427, 4_004, 41_416],
    "update_dblog": [69, 272, 2_672, 27_233],
    "update_filelog": [68, 271, 2_638, 26_571],
}

# -------------------------------------------------------------------- Figure 2
#: Trigger overhead: "the overhead of the trigger is a constant (80-100%)"
#: for inserts; update/delete overheads rise with txn size; the overall
#: reported range is 9-344%.
FIG2_INSERT_OVERHEAD_RANGE = (0.80, 1.00)
FIG2_OVERALL_OVERHEAD_RANGE = (0.09, 3.44)

# -------------------------------------------------------------------- Figure 3
#: Op-Delta capture overhead (DB-table store), averaged over txn sizes.
FIG3_AVG_OVERHEAD = {
    "insert": 0.6647,
    "delete": 0.0248,
    "update": 0.0368,
}

# ------------------------------------------------------------ §4.1 maintenance
#: Warehouse maintenance-window reduction of Op-Delta vs value delta,
#: averaged over txn sizes 10..10,000.
MAINTENANCE_WINDOW_REDUCTION = {
    "insert": 0.0,     # "the response time ... is the same"
    "delete": 0.318,
    "update": 0.697,
}

# ------------------------------------------------------- §3.1.3 remote capture
#: "capturing the changes directly to an external system ... is in the
#: order of ten to hundred times more expensive"; "one order [of] magnitude
#: higher even if the staging area is located in a different database at
#: the same machine".
REMOTE_CAPTURE_FACTOR_RANGE = (10.0, 100.0)
SAME_MACHINE_CAPTURE_FACTOR_MIN = 10.0
